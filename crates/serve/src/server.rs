//! The replica TCP server (`smgcn serve`).
//!
//! Std-only: a nonblocking `TcpListener` driven by the readiness
//! [`Reactor`](crate::reactor) — one event-loop thread owns every
//! socket, a fixed worker pool runs the handlers. The wire protocol is
//! newline-delimited JSON — one request object per line, one response
//! object per line:
//!
//! ```text
//! -> {"symptoms": ["s12", "s3"], "k": 10}
//! -> {"symptom_ids": [12, 3], "k": 5}
//! <- {"herb_ids":[...], "herbs":[...], "scores":[...], "cached":false,
//!     "generation":0, "micros":184}
//! -> {"op": "stats"}
//! <- {"generation":2, "uptime_s":12.5, "requests":840, "cache_hits":…}
//! <- {"error":{"code":"unknown_symptom","message":"unknown symptom \"xyz\""}}
//! ```
//!
//! Request flow per line: pin the current model [`Generation`] → resolve
//! names against its vocabulary → validate (duplicate / out-of-range ids
//! are structured errors, they never reach the scorer) → canonical
//! [`QueryKey`] → generation-tagged LRU lookup → on miss, score through
//! the shared [`Batcher`] (packing concurrent queries into one GEMM) →
//! insert into the cache tagged with the generation that scored. The
//! cache is keyed by the *sorted* symptom-id set, so permutations of the
//! same clinic presentation share an entry; a hot model swap invalidates
//! entries lazily through the tag rather than flushing under the lock.

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use smgcn_obs::{
    mint_trace_id, Counter, EventJournal, LatencyHistogram, ProfileHandle, Profiler, Registry,
    Sample, SampleValue, Sampler, SpanRecord, TraceBuilder, TraceJournal, TraceRecord,
};

use smgcn_experiment::CONTROL;

use crate::batcher::{Batcher, BatcherConfig, ScoreTimings};
use crate::cache::{GenerationalCache, QueryKey};
use crate::errors::codes;
use crate::frozen::{FrozenError, FrozenModel};
use crate::json::{self, Json};
use crate::ops::{AdminOp, ApiError, OpHandler};
use crate::reactor::{Reactor, ReactorConfig, Service};
use crate::slot::{Generation, ModelSlot};
use crate::topk::partial_top_k;
use crate::variants::{DuelSample, VariantEntry, VariantObs, VariantTable};

/// Name/id mappings for the serving protocol. Decoupled from
/// `smgcn-data`'s corpus vocabulary so the serve crate stays free of
/// training-side dependencies; the CLI builds one from the corpus.
#[derive(Clone, Debug, Default)]
pub struct ServingVocab {
    symptom_names: Vec<String>,
    herb_names: Vec<String>,
    symptom_index: HashMap<String, u32>,
}

impl ServingVocab {
    /// Builds the vocab from parallel name lists (index = id).
    pub fn new(symptom_names: Vec<String>, herb_names: Vec<String>) -> Self {
        let symptom_index = symptom_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        Self {
            symptom_names,
            herb_names,
            symptom_index,
        }
    }

    /// Resolves a symptom name to its id.
    pub fn symptom_id(&self, name: &str) -> Option<u32> {
        self.symptom_index.get(name).copied()
    }

    /// The display name of a herb id, or the numeric id when unnamed.
    pub fn herb_name(&self, id: u32) -> String {
        self.herb_names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// True when no names were provided (ids-only protocol).
    pub fn is_empty(&self) -> bool {
        self.symptom_names.is_empty() && self.herb_names.is_empty()
    }

    /// All symptom names, index = id (used by the publish artifact).
    pub fn symptom_names(&self) -> &[String] {
        &self.symptom_names
    }

    /// All herb names, index = id (used by the publish artifact).
    pub fn herb_names(&self) -> &[String] {
        &self.herb_names
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrent connections (connections beyond the cap get
    /// a one-line JSON error and are closed). The reactor bounds this
    /// by file descriptors, not threads, so tens of thousands of
    /// persistent connections are fine; the worker pool — not this
    /// cap — bounds the largest possible micro-batch.
    pub max_connections: usize,
    /// Default ranking depth when a request omits `k`.
    pub default_k: usize,
    /// Upper bound on requested `k` (guards allocation per request).
    pub max_k: usize,
    /// LRU entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Micro-batching configuration.
    pub batcher: BatcherConfig,
    /// Background trace sampling: record a full span trace for one
    /// request in every `trace_sample_every` into the in-memory trace
    /// journal even when the client did not send `"trace": true`
    /// (0 disables sampling; responses are never affected).
    pub trace_sample_every: u64,
    /// Continuous profiling: fold per-request phase timings into the
    /// always-on [`Profiler`] behind `{"op":"profile"}`. The record path
    /// is one relaxed atomic add per phase, cheap enough to default on;
    /// turn off only to measure its own overhead.
    pub profile: bool,
    /// Experiment duel sampling: for one in every `duel_sample_every`
    /// requests served by a *candidate* variant, score the same query
    /// under control too and journal both top-k lists (with scores) for
    /// the router's interleaving comparison. 0 disables duels.
    pub duel_sample_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            default_k: 10,
            max_k: 100,
            cache_capacity: 4096,
            batcher: BatcherConfig::default(),
            trace_sample_every: 0,
            profile: true,
            duel_sample_every: 8,
        }
    }
}

/// The serving side of the telemetry plane: the registry plus
/// pre-registered hot-path handles, the event journal, and the trace
/// journal with its background sampler.
pub(crate) struct ServeObs {
    pub(crate) registry: Arc<Registry>,
    pub(crate) events: Arc<EventJournal>,
    pub(crate) traces: Arc<TraceJournal>,
    pub(crate) sampler: Sampler,
    pub(crate) cache_hits: Counter,
    pub(crate) cache_misses: Counter,
    pub(crate) publishes: Counter,
    /// Publish artifacts rejected before touching the live generation
    /// (bad base64, bad magic/version, checksum mismatch, bad payload).
    pub(crate) publish_rejected: Counter,
    /// Requests shed because their `deadline_ms` budget expired before
    /// scoring.
    pub(crate) deadline_sheds: Counter,
    pub(crate) traced: Counter,
    /// Trace records evicted from the bounded journal ring to admit a
    /// newer one (tail-sampling visibility: a non-zero rate here means
    /// the journal is cycling and old traces are gone).
    pub(crate) traces_dropped: Counter,
    pub(crate) batch_size: Arc<LatencyHistogram>,
    pub(crate) queue_wait_us: Arc<LatencyHistogram>,
    pub(crate) gemm_us: Arc<LatencyHistogram>,
    pub(crate) topk_us: Arc<LatencyHistogram>,
    /// The continuous profiler behind `{"op":"profile"}`; pre-resolved
    /// handles below keep the hot path at one relaxed add per phase.
    pub(crate) profiler: Arc<Profiler>,
    pub(crate) profile_enabled: bool,
    pub(crate) prof_parse: ProfileHandle,
    pub(crate) prof_resolve: ProfileHandle,
    pub(crate) prof_cache_hit: ProfileHandle,
    pub(crate) prof_cache_miss: ProfileHandle,
    pub(crate) prof_queue: ProfileHandle,
    pub(crate) prof_batch: ProfileHandle,
    pub(crate) prof_gemm: ProfileHandle,
    pub(crate) prof_topk: ProfileHandle,
    pub(crate) prof_respond: ProfileHandle,
    /// Admin verbs and error paths: wall time that is measured by the
    /// latency histogram but has no ranking-phase breakdown.
    pub(crate) prof_other: ProfileHandle,
    /// Cached p90 of the since-start latency distribution, refreshed
    /// every [`SLOW_REFRESH_EVERY`] requests; requests slower than this
    /// are force-retained in the trace journal (tail-based sampling).
    pub(crate) slow_threshold_us: AtomicU64,
}

/// How often (in requests) the slow-trace retention threshold is
/// recomputed from the latency histogram.
const SLOW_REFRESH_EVERY: u64 = 256;

/// Minimum since-start observations before slow-trace retention kicks
/// in — a p90 computed over a handful of warmup requests is noise.
const SLOW_MIN_SAMPLES: u64 = 64;

impl ServeObs {
    fn new(config: &ServerConfig) -> (Self, Counter, Counter, Counter, Arc<LatencyHistogram>) {
        let registry = Arc::new(Registry::new());
        let requests = registry.counter("serve_requests_total");
        let sheds = registry.counter("serve_sheds_total");
        let queue_rejections = registry.counter("serve_queue_rejections_total");
        let latency = registry.histogram("serve_latency_us");
        // Register the gauges eagerly so fleet snapshots always carry
        // the full name set, even before the first request.
        registry.gauge("serve_generation");
        registry.gauge("serve_cache_stale");
        let profiler = Arc::new(Profiler::new());
        let obs = Self {
            cache_hits: registry.counter("serve_cache_hits_total"),
            cache_misses: registry.counter("serve_cache_misses_total"),
            publishes: registry.counter("serve_publishes_total"),
            publish_rejected: registry.counter("serve_publish_rejected_total"),
            deadline_sheds: registry.counter("serve_deadline_sheds_total"),
            traced: registry.counter("serve_traced_total"),
            traces_dropped: registry.counter("serve_traces_dropped_total"),
            batch_size: registry.histogram("serve_batch_size"),
            queue_wait_us: registry.histogram("serve_batch_queue_wait_us"),
            gemm_us: registry.histogram("serve_gemm_us"),
            topk_us: registry.histogram("serve_topk_us"),
            prof_parse: profiler.node(&["serve", "request", "parse"]),
            prof_resolve: profiler.node(&["serve", "request", "resolve"]),
            prof_cache_hit: profiler.node(&["serve", "request", "cache_hit"]),
            prof_cache_miss: profiler.node(&["serve", "request", "cache_miss"]),
            prof_queue: profiler.node(&["serve", "request", "score", "queue"]),
            prof_batch: profiler.node(&["serve", "request", "score", "batch"]),
            prof_gemm: profiler.node(&["serve", "request", "score", "gemm"]),
            prof_topk: profiler.node(&["serve", "request", "score", "topk"]),
            prof_respond: profiler.node(&["serve", "request", "respond"]),
            prof_other: profiler.node(&["serve", "request", "other"]),
            profiler,
            profile_enabled: config.profile,
            slow_threshold_us: AtomicU64::new(0),
            events: Arc::new(EventJournal::new(256)),
            traces: Arc::new(TraceJournal::new(256)),
            sampler: Sampler::new(config.trace_sample_every),
            registry,
        };
        (obs, requests, sheds, queue_rejections, latency)
    }
}

/// In-flight trace state for one request: the span builder anchored at
/// line arrival, whether the client asked for the trace back, and the
/// client-supplied id (minted later when absent).
struct TraceWork {
    builder: TraceBuilder,
    requested: bool,
    trace_id: Option<String>,
}

/// The replica's request-handling core: model slot, batcher, cache,
/// experiment plane and telemetry. Shared across the reactor's worker
/// threads; the admin-verb bodies live in [`crate::ops`].
pub(crate) struct Engine {
    pub(crate) slot: Arc<ModelSlot>,
    pub(crate) batcher: Batcher,
    pub(crate) cache: Option<Mutex<GenerationalCache<QueryKey, Vec<u32>>>>,
    /// The experiment plane: named candidate slots next to the control
    /// slot above, the active split plan, and the duel-sample journal.
    pub(crate) variants: VariantTable,
    pub(crate) config: ServerConfig,
    pub(crate) started: Instant,
    pub(crate) requests: Counter,
    /// Connections refused at the accept loop (`overloaded`).
    pub(crate) sheds: Counter,
    /// Requests shed by the bounded scoring queue (`queue_full`).
    pub(crate) queue_rejections: Counter,
    /// Per-request wall time, request line in to response object out.
    pub(crate) latency: Arc<LatencyHistogram>,
    pub(crate) obs: ServeObs,
}

impl Engine {
    /// Answers one canonical query, consulting the cache first. Returns
    /// `(ranking, generation that produced it, was_cache_hit, timings)`
    /// — the single-generation invariant: ranking, reported generation
    /// and (in the caller) herb names all come from the same
    /// [`Generation`]. Timings carry the cache-lookup duration plus, on
    /// a miss, the batcher stage breakdown.
    fn rank(
        &self,
        pinned: &Arc<Generation>,
        key: QueryKey,
        deadline: Option<Instant>,
        cache: Option<&Mutex<GenerationalCache<QueryKey, Vec<u32>>>>,
        vobs: Option<&VariantObs>,
    ) -> Result<(Vec<u32>, Arc<Generation>, bool, RankTiming), ApiError> {
        let k = key.k;
        let cache_start = Instant::now();
        if let Some(cache) = cache {
            let hit = cache
                .lock()
                .expect("cache lock")
                .get(&key, pinned.number)
                .cloned();
            if let Some(hit) = hit {
                self.obs.cache_hits.inc();
                if let Some(v) = vobs {
                    v.cache_hits.inc();
                }
                let timing = RankTiming {
                    cache_us: cache_start.elapsed().as_micros() as u64,
                    score: None,
                };
                return Ok((hit, Arc::clone(pinned), true, timing));
            }
        }
        self.obs.cache_misses.inc();
        if let Some(v) = vobs {
            v.cache_misses.inc();
        }
        let cache_us = cache_start.elapsed().as_micros() as u64;
        // Scoring keeps the request's pin: the batcher scores with
        // exactly this generation's weights (grouping per generation at
        // drain), so ids resolved/validated above can never be scored
        // against a different vocabulary published mid-request.
        let (ranking, generation, timings) = self
            .batcher
            .recommend_pinned_deadline(&key.symptoms, k, Arc::clone(pinned), deadline)
            .map_err(|e| match e {
                FrozenError::Overloaded(m) => {
                    self.queue_rejections.inc();
                    self.obs.events.record("shed", "scoring queue full");
                    ApiError::retryable(codes::QUEUE_FULL, m)
                }
                FrozenError::DeadlineExceeded(m) => {
                    self.obs.deadline_sheds.inc();
                    self.obs
                        .events
                        .record("deadline_shed", "deadline_ms expired before scoring");
                    ApiError::new(codes::DEADLINE_EXCEEDED, m)
                }
                other => ApiError::new(codes::SCORING_FAILED, other.to_string()),
            })?;
        self.obs.queue_wait_us.record(timings.queue_us);
        self.obs.gemm_us.record(timings.gemm_us);
        self.obs.topk_us.record(timings.topk_us);
        self.obs.batch_size.record(timings.batch_size as u64);
        if let Some(cache) = cache {
            cache
                .lock()
                .expect("cache lock")
                .insert(key, generation.number, ranking.clone());
        }
        let timing = RankTiming {
            cache_us,
            score: Some(timings),
        };
        Ok((ranking, generation, false, timing))
    }

    fn handle_line(&self, line: &str, conn_key: &str) -> Json {
        let started = Instant::now();
        self.requests.inc();
        let mut trace: Option<TraceWork> = None;
        let mut prof_acc: u64 = 0;
        let (mut response, record) =
            self.answer_timed(line, conn_key, started, &mut trace, &mut prof_acc);
        let wall_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        // Admin publishes (base64 decode + full model deserialize) are
        // orders of magnitude above any serving op; recording them would
        // spike the p99 the router's slow-replica ejection reads,
        // getting a replica ejected for the crime of taking a rollout.
        if record {
            self.latency.record(wall_us);
            if self.obs.profile_enabled {
                // The remainder past the attributed ranking phases is
                // response assembly; requests with no phase breakdown
                // (admin verbs, error paths) fold wholesale into `other`,
                // so the folded stacks always partition the measured wall
                // time instead of silently under-counting it.
                if prof_acc > 0 {
                    self.obs.prof_respond.add(wall_us.saturating_sub(prof_acc));
                } else {
                    self.obs.prof_other.add(wall_us);
                }
            }
        }
        if let Some(work) = trace {
            let mut builder = work.builder;
            // Close the partition: the final span runs to right now, so
            // the span durations sum to the observed wall time.
            builder.cover_to_now("respond");
            let trace_id = work.trace_id.unwrap_or_else(mint_trace_id);
            let spans = builder.into_spans();
            let wall_us: u64 = spans.iter().map(|s| s.dur_us).sum();
            self.obs.traced.inc();
            if self.obs.traces.record(TraceRecord {
                trace_id: trace_id.clone(),
                unix_ms: unix_ms_now(),
                wall_us,
                spans: spans.clone(),
            }) {
                self.obs.traces_dropped.inc();
            }
            if work.requested {
                if let Json::Obj(map) = &mut response {
                    map.insert("trace".to_string(), trace_json(&trace_id, &spans));
                }
            }
        } else if record && self.slow_tail(wall_us) {
            // Tail-based retention: no trace was armed for this request
            // but it landed in the slowest decile, so keep a single-span
            // record anyway — the journal always holds the outliers worth
            // debugging, not just the sampling lottery's winners.
            self.obs.traced.inc();
            if self.obs.traces.record(TraceRecord {
                trace_id: mint_trace_id(),
                unix_ms: unix_ms_now(),
                wall_us,
                spans: vec![SpanRecord {
                    name: "slow".to_string(),
                    start_us: 0,
                    dur_us: wall_us,
                }],
            }) {
                self.obs.traces_dropped.inc();
            }
        }
        response
    }

    /// True when this wall time lands in the slowest decile. The p90
    /// threshold is cached and refreshed every [`SLOW_REFRESH_EVERY`]
    /// requests from the undecayed since-start distribution, so the
    /// per-request cost is one relaxed load.
    fn slow_tail(&self, wall_us: u64) -> bool {
        if self.requests.get().is_multiple_of(SLOW_REFRESH_EVERY) {
            let snap = self.latency.snapshot();
            if snap.total_count >= SLOW_MIN_SAMPLES {
                self.obs
                    .slow_threshold_us
                    .store(snap.total_quantile_us(0.90) as u64, Ordering::Relaxed);
            }
        }
        let threshold = self.obs.slow_threshold_us.load(Ordering::Relaxed);
        threshold > 0 && wall_us > threshold
    }

    /// Answers one line; the flag is false for operations whose wall
    /// time must not enter the serving-latency histogram.
    fn answer_timed(
        &self,
        line: &str,
        conn_key: &str,
        started: Instant,
        trace: &mut Option<TraceWork>,
        prof_acc: &mut u64,
    ) -> (Json, bool) {
        match self.answer(line, conn_key, started, trace, prof_acc) {
            Ok(Answer::Ranking {
                ids,
                scores,
                cached,
                generation,
                variant,
            }) => {
                let mut fields = vec![
                    ("herb_ids", json::id_array(&ids)),
                    ("cached", Json::Bool(cached)),
                    ("generation", Json::Num(generation.number as f64)),
                    ("micros", Json::Num(started.elapsed().as_micros() as f64)),
                ];
                if let Some(variant) = variant {
                    fields.push(("variant", Json::Str(variant)));
                }
                if !generation.vocab.is_empty() {
                    fields.push((
                        "herbs",
                        Json::Arr(
                            ids.iter()
                                .map(|&h| Json::Str(generation.vocab.herb_name(h)))
                                .collect(),
                        ),
                    ));
                }
                if let Some(scores) = scores {
                    fields.push(("scores", json::score_array(&scores)));
                }
                (json::obj(fields), true)
            }
            Ok(Answer::Stats(stats)) => (stats, true),
            Ok(Answer::Publish(ack)) => (ack, false),
            Err(e) => {
                self.obs
                    .registry
                    .counter_labeled("serve_errors_total", &[("code", e.code)])
                    .inc();
                // Tail-based retention: failed requests always reach the
                // trace journal, even when neither the client nor the
                // sampler asked for a trace — errors are precisely the
                // requests worth replaying later. The closing span names
                // the error code so the journal reads as a story.
                if trace.is_none() {
                    *trace = Some(TraceWork {
                        builder: TraceBuilder::new(started),
                        requested: false,
                        trace_id: None,
                    });
                }
                if let Some(work) = trace.as_mut() {
                    work.builder.cover_to_now(&format!("error:{}", e.code));
                }
                (e.to_json(), true)
            }
        }
    }

    /// Parses and answers one request line.
    fn answer(
        &self,
        line: &str,
        conn_key: &str,
        started: Instant,
        trace: &mut Option<TraceWork>,
        prof_acc: &mut u64,
    ) -> Result<Answer, ApiError> {
        let req = json::parse(line)
            .map_err(|e| ApiError::new(codes::BAD_JSON, format!("bad request JSON: {e}")))?;
        let parse_us = started.elapsed().as_micros() as u64;
        // Tracing is decided right after parse: explicitly requested
        // traces come back in the response; sampled ones only land in
        // the journal, so untraced responses stay byte-identical.
        let requested = matches!(req.get("trace"), Some(Json::Bool(true)));
        if requested || self.obs.sampler.fire() {
            let mut builder = TraceBuilder::new(started);
            builder.cover_to_now("parse");
            *trace = Some(TraceWork {
                builder,
                requested,
                trace_id: req
                    .get("trace_id")
                    .and_then(Json::as_str)
                    .map(str::to_string),
            });
        }
        match AdminOp::parse(&req) {
            Ok(None) => {} // a ranking request — the path below
            Ok(Some(op)) => {
                let body = self.dispatch(op, &req);
                // Both publish outcomes route through Answer::Publish: a
                // *failed* publish can still pay base64 decode + model
                // deserialize before rejecting, and that wall time must
                // stay out of the serving-latency histogram just like a
                // success. Experiment admin shares the exemption: a
                // candidate publish deserializes a whole model, and even
                // install/halt are control-plane, not serving, time.
                return Ok(if op.latency_exempt() {
                    Answer::Publish(body)
                } else {
                    Answer::Stats(body)
                });
            }
            Err(other) => {
                return Err(ApiError::new(
                    codes::UNKNOWN_OP,
                    format!("unknown op {other:?}"),
                ))
            }
        }
        let k = match req.get("k") {
            None => self.config.default_k,
            Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 => *n as usize,
            Some(other) => return Err(ApiError::new(codes::BAD_K, format!("bad k: {other}"))),
        };
        if k > self.config.max_k {
            return Err(ApiError::new(
                codes::BAD_K,
                format!("k {k} exceeds maximum {}", self.config.max_k),
            ));
        }
        // The end-to-end latency budget, anchored at line arrival: the
        // remaining milliseconds the client (or the router upstream,
        // which decrements per hop) is still willing to wait. Zero means
        // the budget arrived already spent — shed immediately rather
        // than queueing a request nobody is waiting for.
        let deadline = match req.get("deadline_ms") {
            None => None,
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => {
                if *n == 0.0 {
                    self.obs.deadline_sheds.inc();
                    self.obs
                        .events
                        .record("deadline_shed", "deadline_ms arrived exhausted");
                    return Err(ApiError::new(
                        codes::DEADLINE_EXCEEDED,
                        "deadline_ms budget arrived already exhausted",
                    ));
                }
                Some(started + Duration::from_millis(*n as u64))
            }
            Some(other) => {
                return Err(ApiError::new(
                    codes::BAD_REQUEST,
                    format!("bad deadline_ms: {other} (want a non-negative integer)"),
                ))
            }
        };
        // Variant resolution: an explicit `"variant"` override wins;
        // otherwise the active split plan assigns deterministically by
        // sticky key — the client id when supplied, else the connection
        // id — so one client sees one variant for a plan's lifetime.
        let explicit = match req.get("variant") {
            None => None,
            Some(Json::Str(name)) => Some(name.clone()),
            Some(other) => {
                return Err(ApiError::new(
                    codes::BAD_REQUEST,
                    format!("bad variant: {other} (want a string)"),
                ))
            }
        };
        let plan = self.variants.plan();
        let assigned = match &explicit {
            Some(name) => Some(name.clone()),
            None => plan.as_ref().map(|p| {
                let sticky = req.get("client").and_then(Json::as_str).unwrap_or(conn_key);
                p.assign(sticky).to_string()
            }),
        };
        let entry: Option<Arc<VariantEntry>> = match assigned.as_deref() {
            None | Some(CONTROL) => None,
            Some(name) => Some(self.variants.get(name).ok_or_else(|| {
                ApiError::new(
                    codes::UNKNOWN_VARIANT,
                    format!("variant {name:?} is not served by this replica"),
                )
            })?),
        };
        // Per-variant labeled metrics only tick when an experiment is
        // in play (explicit override or installed plan); a plain
        // single-model deployment pays nothing.
        let vobs = assigned.as_ref().map(|_| match &entry {
            Some(e) => &e.obs,
            None => self.variants.control_obs(),
        });
        if let Some(v) = vobs {
            v.requests.inc();
        }
        // Pin one generation for the whole request: name resolution and
        // validation below, cache lookup and herb naming in the caller.
        let pinned = match &entry {
            Some(e) => e.slot.load(),
            None => self.slot.load(),
        };
        let ids = self.request_ids(&req, &pinned)?;
        validate_ids(&ids, pinned.model.n_symptoms())?;
        let key = QueryKey::new(&ids, k);
        let want_scores = matches!(req.get("scores"), Some(Json::Bool(true)));
        let score_ids = want_scores.then(|| key.symptoms.clone());
        // Candidate-served requests sampled for a duel keep their
        // canonical symptom set so both models can re-score it below.
        let duel_ids = (entry.is_some() && self.variants.duel_fire()).then(|| key.symptoms.clone());
        if let Some(work) = trace.as_mut() {
            // Name resolution, validation and canonicalisation since the
            // parse span closed.
            work.builder.cover_to_now("resolve");
        }
        let pre_rank_us = started.elapsed().as_micros() as u64;
        let cache_ref = match &entry {
            Some(e) => e.cache.as_ref(),
            None => self.cache.as_ref(),
        };
        let ranked = self.rank(&pinned, key, deadline, cache_ref, vobs);
        if ranked.is_err() {
            if let Some(v) = vobs {
                v.errors.inc();
            }
        }
        let (ranking, generation, cached, timing) = ranked?;
        if self.obs.profile_enabled {
            // Fold this request's phases into the continuous profiler.
            // `prof_acc` totals the attributed microseconds so the caller
            // can book the un-attributed remainder as `respond`.
            self.obs.prof_parse.add(parse_us);
            self.obs
                .prof_resolve
                .add(pre_rank_us.saturating_sub(parse_us));
            let cache_node = if cached {
                &self.obs.prof_cache_hit
            } else {
                &self.obs.prof_cache_miss
            };
            cache_node.add(timing.cache_us);
            *prof_acc = pre_rank_us + timing.cache_us;
            if let Some(s) = &timing.score {
                self.obs.prof_queue.add(s.queue_us);
                self.obs.prof_batch.add(s.batch_us);
                self.obs.prof_gemm.add(s.gemm_us);
                self.obs.prof_topk.add(s.topk_us);
                *prof_acc += s.queue_us + s.batch_us + s.gemm_us + s.topk_us;
            }
        }
        if let Some(work) = trace.as_mut() {
            let b = &mut work.builder;
            // Cache outcome is encoded in the span name; on a miss the
            // batcher's stage timings follow, chained back-to-back so
            // the partition stays monotonic.
            b.push(
                if cached { "cache_hit" } else { "cache_miss" },
                timing.cache_us,
            );
            if let Some(s) = &timing.score {
                b.push("queue", s.queue_us);
                b.push("batch", s.batch_us);
                b.push("gemm", s.gemm_us);
                b.push("topk", s.topk_us);
            }
        }
        let scores = match score_ids {
            Some(ids) => {
                // Score path bypasses the cache: it is diagnostic traffic.
                // Scored by the same generation that produced the ranking.
                let all = generation
                    .model
                    .score_one(&ids)
                    .map_err(|e| ApiError::new(codes::SCORING_FAILED, e.to_string()))?;
                Some(ranking.iter().map(|&h| all[h as usize]).collect())
            }
            None => None,
        };
        if let (Some(duel_ids), Some(entry)) = (duel_ids, &entry) {
            self.record_duel(&entry.name, &duel_ids, k, &ranking, &generation);
        }
        if let Some(v) = vobs {
            v.latency.record(started.elapsed().as_micros() as u64);
        }
        Ok(Answer::Ranking {
            ids: ranking,
            scores,
            cached,
            generation,
            variant: assigned,
        })
    }

    /// Journal one control-vs-candidate duel: re-score the sampled
    /// query under both models and keep the two `(id, score)` top-k
    /// lists for the router's interleaving comparison. Best-effort — a
    /// query outside the control model's vocabulary simply cannot duel.
    fn record_duel(
        &self,
        variant: &str,
        ids: &[u32],
        k: usize,
        candidate_ranking: &[u32],
        candidate_generation: &Generation,
    ) {
        let control = self.slot.load();
        let (Ok(cand_scores), Ok(ctrl_scores)) = (
            candidate_generation.model.score_one(ids),
            control.model.score_one(ids),
        ) else {
            return;
        };
        let candidate_top: Vec<(u32, f32)> = candidate_ranking
            .iter()
            .filter(|&&h| (h as usize) < cand_scores.len())
            .map(|&h| (h, cand_scores[h as usize]))
            .collect();
        let control_top: Vec<(u32, f32)> = partial_top_k(&ctrl_scores, k)
            .into_iter()
            .map(|h| (h, ctrl_scores[h as usize]))
            .collect();
        self.variants.record_duel(DuelSample {
            variant: variant.to_string(),
            symptom_ids: ids.to_vec(),
            k,
            candidate_top,
            control_top,
        });
    }

    fn request_ids(&self, req: &Json, generation: &Generation) -> Result<Vec<u32>, ApiError> {
        if let Some(raw) = req.get("symptom_ids") {
            let arr = raw
                .as_arr()
                .ok_or_else(|| ApiError::new(codes::BAD_REQUEST, "symptom_ids must be an array"))?;
            return arr
                .iter()
                .map(|v| match v.as_num() {
                    Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u32),
                    _ => Err(ApiError::new(
                        codes::BAD_REQUEST,
                        format!("bad symptom id {v}"),
                    )),
                })
                .collect();
        }
        if let Some(raw) = req.get("symptoms") {
            let arr = raw.as_arr().ok_or_else(|| {
                ApiError::new(codes::BAD_REQUEST, "symptoms must be an array of names")
            })?;
            return arr
                .iter()
                .map(|v| {
                    let name = v.as_str().ok_or_else(|| {
                        ApiError::new(codes::BAD_REQUEST, format!("bad symptom {v}"))
                    })?;
                    generation.vocab.symptom_id(name).ok_or_else(|| {
                        ApiError::new(codes::UNKNOWN_SYMPTOM, format!("unknown symptom {name:?}"))
                    })
                })
                .collect();
        }
        Err(ApiError::new(
            codes::BAD_REQUEST,
            "request needs \"symptoms\" (names) or \"symptom_ids\"",
        ))
    }
}

/// Where one ranking's time went: the cache lookup, plus the batcher
/// stage breakdown when the query was actually scored.
struct RankTiming {
    cache_us: u64,
    score: Option<ScoreTimings>,
}

fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Renders a span list as the wire `trace` object.
fn trace_json(trace_id: &str, spans: &[SpanRecord]) -> Json {
    json::obj([
        ("trace_id", Json::Str(trace_id.to_string())),
        (
            "spans",
            Json::Arr(
                spans
                    .iter()
                    .map(|s| {
                        json::obj([
                            ("name", Json::Str(s.name.clone())),
                            ("start_us", Json::Num(s.start_us as f64)),
                            ("us", Json::Num(s.dur_us as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Converts registry samples to the wire JSON shape: counters and
/// gauges become numbers, histograms become stat objects. Public so the
/// cluster router can render its own registry in the same shape.
pub fn samples_to_json(samples: &[Sample]) -> Json {
    Json::Obj(
        samples
            .iter()
            .map(|s| {
                let value = match &s.value {
                    SampleValue::Counter(v) | SampleValue::Gauge(v) => Json::Num(*v as f64),
                    SampleValue::Histogram(h) => json::obj([
                        ("count", Json::Num(h.count as f64)),
                        ("p50_us", Json::Num(h.p50_us)),
                        ("p99_us", Json::Num(h.p99_us)),
                        ("mean_us", Json::Num(h.mean_us)),
                        ("total_count", Json::Num(h.total_count as f64)),
                        ("total_sum_us", Json::Num(h.total_sum_us as f64)),
                        ("total_p50_us", Json::Num(h.total_p50_us)),
                        ("total_p99_us", Json::Num(h.total_p99_us)),
                    ]),
                };
                (s.key.clone(), value)
            })
            .collect(),
    )
}

/// Flattens the `"metrics"` object of an `{"op":"metrics"}` response
/// into scalar time-series samples: counters and gauges keep their key,
/// histogram stat objects become one `key.field` series per numeric
/// field. This is the wire-side inverse the tsdb [`Scraper`] feeds on —
/// the flattened names match what `smgcn_obs::tsdb` queries expect.
///
/// [`Scraper`]: smgcn_obs::Scraper
pub fn flatten_metrics_json(metrics: &Json) -> Vec<(String, f64)> {
    let mut flat = Vec::new();
    if let Json::Obj(map) = metrics {
        for (key, value) in map {
            match value {
                Json::Num(n) => flat.push((key.clone(), *n)),
                Json::Obj(fields) => {
                    for (field, fv) in fields {
                        if let Json::Num(n) = fv {
                            flat.push((format!("{key}.{field}"), *n));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    flat
}

/// A successful answer: a ranking, a `/stats` report, or a publish
/// acknowledgement (kept distinct so its wall time — dominated by model
/// deserialization — stays out of the serving-latency histogram).
enum Answer {
    Ranking {
        ids: Vec<u32>,
        scores: Option<Vec<f32>>,
        cached: bool,
        generation: Arc<Generation>,
        /// The variant that served the request, when an experiment was
        /// in play (explicit override or installed split plan).
        variant: Option<String>,
    },
    Stats(Json),
    Publish(Json),
}

/// Rejects duplicate and out-of-range symptom ids up front with
/// structured errors. Historically duplicates were silently deduplicated
/// and range errors surfaced as opaque scorer failures mid-batch; both
/// are client bugs worth a precise signal.
fn validate_ids(ids: &[u32], n_symptoms: usize) -> Result<(), ApiError> {
    if ids.is_empty() {
        return Err(ApiError::new(codes::EMPTY_SYMPTOMS, "symptom set is empty"));
    }
    for &s in ids {
        if s as usize >= n_symptoms {
            return Err(ApiError::new(
                codes::SYMPTOM_OUT_OF_RANGE,
                format!("symptom id {s} out of range (vocabulary size {n_symptoms})"),
            ));
        }
    }
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
        return Err(ApiError::new(
            codes::DUPLICATE_SYMPTOM,
            format!("symptom id {} appears more than once", w[0]),
        ));
    }
    Ok(())
}

/// A running (or ready-to-run) recommendation server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, port 0 for ephemeral) and
    /// prepares the scoring engine. Call [`Server::run`] to serve. The
    /// model becomes generation 0 of an internal [`ModelSlot`]; use
    /// [`Server::slot`] to hot-swap later.
    pub fn bind(
        addr: impl ToSocketAddrs,
        model: FrozenModel,
        vocab: ServingVocab,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_slot(addr, Arc::new(ModelSlot::new(model, vocab)), config)
    }

    /// Binds over an externally-owned [`ModelSlot`], the live-refresh
    /// deployment shape: the online pipeline keeps the slot and publishes
    /// new generations while the server runs.
    pub fn bind_slot(
        addr: impl ToSocketAddrs,
        slot: Arc<ModelSlot>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let (obs, requests, sheds, queue_rejections, latency) = ServeObs::new(&config);
        let variants = VariantTable::new(
            Arc::clone(&obs.registry),
            config.cache_capacity,
            config.duel_sample_every,
        );
        let engine = Arc::new(Engine {
            batcher: Batcher::start_slot(Arc::clone(&slot), config.batcher.clone()),
            cache: (config.cache_capacity > 0)
                .then(|| Mutex::new(GenerationalCache::new(config.cache_capacity))),
            variants,
            slot,
            config,
            started: Instant::now(),
            requests,
            sheds,
            queue_rejections,
            latency,
            obs,
        });
        Ok(Self {
            listener,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The model slot serving this server (publish to hot-swap).
    pub fn slot(&self) -> Arc<ModelSlot> {
        Arc::clone(&self.engine.slot)
    }

    /// The metrics registry behind `{"op":"metrics"}`. Co-located
    /// subsystems (an online pipeline refreshing this server's slot)
    /// attach here so one snapshot covers the whole replica.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.engine.obs.registry)
    }

    /// The event journal behind `{"op":"events"}` (shareable like
    /// [`Server::registry`]).
    pub fn events(&self) -> Arc<EventJournal> {
        Arc::clone(&self.engine.obs.events)
    }

    /// The continuous profiler behind `{"op":"profile"}`. Co-located
    /// subsystems (the online pipeline fine-tuning this server's slot)
    /// attach their own stacks here so one folded report covers both
    /// the serving and the training side of the replica.
    pub fn profiler(&self) -> Arc<Profiler> {
        Arc::clone(&self.engine.obs.profiler)
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] return.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            stop: Arc::clone(&self.stop),
            addr: self.listener.local_addr().ok(),
        }
    }

    /// Serves until the stop handle fires, on the readiness
    /// [`Reactor`](crate::reactor::Reactor): one event-loop thread
    /// owns all sockets, a fixed worker pool runs the handlers, and
    /// concurrent connections are bounded by `config.max_connections`
    /// file descriptors rather than threads. A connection over the cap
    /// still receives the same one-line retryable refusal at accept
    /// time, and a graceful stop still answers in-flight requests
    /// before closing — idle keep-alives now close promptly and the
    /// drain is journaled as a `drain` event.
    pub fn run(self) -> std::io::Result<()> {
        let config = ReactorConfig {
            max_connections: self.engine.config.max_connections.max(1),
            ..ReactorConfig::default()
        };
        let registry = Arc::clone(&self.engine.obs.registry);
        Reactor::new(self.listener, self.engine, self.stop, config, &registry).run()
    }
}

/// The reactor serves the replica engine directly: request lines go
/// through [`Engine::handle_line`] on worker threads, refusals and
/// drains keep their historical counters, events, and wire bytes.
impl Service for Engine {
    fn handle(&self, line: &str, conn_key: &str) -> String {
        self.handle_line(line, conn_key).to_string()
    }

    fn shed(&self) -> String {
        // Shed instead of queueing: the client gets a structured,
        // retryable refusal in one write and the reactor moves
        // straight on to the next connection — saturation never
        // stalls accepts (or the cluster router's health probes).
        self.sheds.inc();
        self.obs
            .events
            .record("shed", "connection refused at capacity");
        ApiError::retryable(codes::OVERLOADED, "server at connection capacity")
            .to_json()
            .to_string()
    }

    fn on_drain(&self) {
        self.obs
            .events
            .record("drain", "graceful drain: idle connections closed");
    }
}

/// Makes a running server's accept loop exit.
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    addr: Option<std::net::SocketAddr>,
}

impl StopHandle {
    /// Signals shutdown and unblocks the accept loop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(addr) = self.addr {
            // Nudge the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smgcn_tensor::Matrix;
    use std::io::{BufRead, BufReader, BufWriter, Write};

    fn test_server() -> (
        std::net::SocketAddr,
        StopHandle,
        std::thread::JoinHandle<()>,
    ) {
        let symptoms = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) % 4) as f32 - 1.5);
        let herbs = Matrix::from_fn(7, 3, |r, c| ((r * 2 + c * 5) % 6) as f32 - 2.5);
        let model = FrozenModel::from_parts(symptoms, herbs, None).unwrap();
        let vocab = ServingVocab::new(
            (0..5).map(|i| format!("s{i}")).collect(),
            (0..7).map(|i| format!("h{i}")).collect(),
        );
        let server = Server::bind(
            "127.0.0.1:0",
            model,
            vocab,
            ServerConfig {
                max_connections: 16,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, stop, handle)
    }

    fn roundtrip(addr: std::net::SocketAddr, request: &str) -> Json {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writeln!(writer, "{request}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        json::parse(line.trim()).unwrap()
    }

    #[test]
    fn shutdown_under_load_drains_and_journals() {
        let symptoms = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) % 4) as f32 - 1.5);
        let herbs = Matrix::from_fn(7, 3, |r, c| ((r * 2 + c * 5) % 6) as f32 - 2.5);
        let model = FrozenModel::from_parts(symptoms, herbs, None).unwrap();
        let vocab = ServingVocab::new(
            (0..5).map(|i| format!("s{i}")).collect(),
            (0..7).map(|i| format!("h{i}")).collect(),
        );
        let server = Server::bind(
            "127.0.0.1:0",
            model,
            vocab,
            ServerConfig {
                max_connections: 16,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let events = server.events();
        let stop = server.stop_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());
        // An idle keep-alive opened before the stop: the drain must
        // close it promptly instead of waiting it out.
        let idle = TcpStream::connect(addr).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Pipelining clients that stay busy across the stop. Every
        // response the server delivers must be a complete line, and
        // the connection must end in a clean EOF, never a torn write.
        let mut clients = Vec::new();
        for t in 0..4usize {
            clients.push(std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                let mut served = 0u32;
                loop {
                    let req = format!(r#"{{"symptom_ids": [{}, {}], "k": 3}}"#, t % 5, (t + 1) % 5);
                    if writeln!(writer, "{req}")
                        .and_then(|_| writer.flush())
                        .is_err()
                    {
                        break; // server closed after draining: fine
                    }
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break, // clean EOF, never mid-line
                        Ok(_) => {
                            json::parse(line.trim()).expect("complete, well-formed response");
                            served += 1;
                        }
                    }
                }
                served
            }));
        }
        std::thread::sleep(Duration::from_millis(100)); // load in flight
        stop.stop();
        handle.join().unwrap(); // run() returns once the drain completes
        let total: u32 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert!(total > 0, "clients should have been served across the stop");
        let mut idle_reader = BufReader::new(idle);
        let mut line = String::new();
        assert_eq!(
            idle_reader.read_line(&mut line).unwrap(),
            0,
            "idle keep-alive must see EOF promptly, not a request timeout"
        );
        assert!(
            events.recent(64).iter().any(|e| e.kind == "drain"),
            "graceful drain must be journaled"
        );
    }

    #[test]
    fn serves_concurrent_clients_with_names_and_ids() {
        let (addr, stop, handle) = test_server();
        let mut clients = Vec::new();
        for t in 0..8 {
            clients.push(std::thread::spawn(move || {
                let req = if t % 2 == 0 {
                    format!(
                        r#"{{"symptoms": ["s{}", "s{}"], "k": 3}}"#,
                        t % 5,
                        (t + 1) % 5
                    )
                } else {
                    format!(r#"{{"symptom_ids": [{}, {}], "k": 3}}"#, t % 5, (t + 1) % 5)
                };
                let resp = roundtrip(addr, &req);
                assert!(resp.get("error").is_none(), "unexpected error: {resp}");
                assert_eq!(resp.get("herb_ids").unwrap().as_arr().unwrap().len(), 3);
                assert_eq!(resp.get("herbs").unwrap().as_arr().unwrap().len(), 3);
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn name_and_id_requests_agree_and_cache_hits() {
        let (addr, stop, handle) = test_server();
        let by_name = roundtrip(addr, r#"{"symptoms": ["s1", "s2"], "k": 4}"#);
        let by_ids = roundtrip(addr, r#"{"symptom_ids": [2, 1], "k": 4}"#);
        assert_eq!(
            by_name.get("herb_ids").unwrap(),
            by_ids.get("herb_ids").unwrap(),
            "same canonical query must rank identically"
        );
        assert_eq!(by_name.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(
            by_ids.get("cached"),
            Some(&Json::Bool(true)),
            "permuted ids are the same cache key"
        );
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn multiple_requests_per_connection_and_errors() {
        let (addr, stop, handle) = test_server();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        for (req, expect_code) in [
            (r#"{"symptoms": ["s0"]}"#, None),
            (r#"{"symptoms": ["nope"]}"#, Some("unknown_symptom")),
            (r#"not json"#, Some("bad_json")),
            (r#"{"symptom_ids": [0], "k": 2, "scores": true}"#, None),
            (r#"{"k": 2}"#, Some("bad_request")),
            (r#"{"symptom_ids": [], "k": 2}"#, Some("empty_symptoms")),
            (r#"{"symptom_ids": [0], "k": 0}"#, Some("bad_k")),
            (r#"{"symptom_ids": [0], "k": 100000}"#, Some("bad_k")),
            (
                r#"{"symptom_ids": [0, 0], "k": 2}"#,
                Some("duplicate_symptom"),
            ),
            (
                r#"{"symptom_ids": [99], "k": 2}"#,
                Some("symptom_out_of_range"),
            ),
            (r#"{"op": "nope"}"#, Some("unknown_op")),
        ] {
            writeln!(writer, "{req}").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let resp = json::parse(line.trim()).unwrap();
            let code = resp
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str);
            assert_eq!(code, expect_code, "req {req}: {resp}");
        }
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn stats_op_reports_generation_cache_and_uptime() {
        let (addr, stop, handle) = test_server();
        // Two identical queries: one miss, one hit.
        let _ = roundtrip(addr, r#"{"symptom_ids": [0, 1], "k": 3}"#);
        let warm = roundtrip(addr, r#"{"symptom_ids": [0, 1], "k": 3}"#);
        assert_eq!(warm.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(warm.get("generation").and_then(Json::as_num), Some(0.0));
        let stats = roundtrip(addr, r#"{"op": "stats"}"#);
        assert_eq!(stats.get("generation").and_then(Json::as_num), Some(0.0));
        assert!(stats.get("uptime_s").and_then(Json::as_num).unwrap() >= 0.0);
        assert!(stats.get("requests").and_then(Json::as_num).unwrap() >= 2.0);
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_num), Some(1.0));
        assert_eq!(cache.get("misses").and_then(Json::as_num), Some(1.0));
        assert_eq!(cache.get("stale").and_then(Json::as_num), Some(0.0));
        assert!((cache.get("hit_rate").and_then(Json::as_num).unwrap() - 0.5).abs() < 1e-12);
        let model = stats.get("model").unwrap();
        assert_eq!(model.get("symptoms").and_then(Json::as_num), Some(5.0));
        assert_eq!(model.get("herbs").and_then(Json::as_num), Some(7.0));
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn publish_op_swaps_generation_over_the_wire() {
        let (addr, stop, handle) = test_server();
        let before = roundtrip(addr, r#"{"symptom_ids": [0, 1], "k": 3}"#);
        assert_eq!(before.get("generation").and_then(Json::as_num), Some(0.0));

        // Ship a distinguishable model (8 herbs, generation-tagged names).
        let symptoms = Matrix::from_fn(5, 3, |r, c| ((r + 2 * c) % 3) as f32 - 1.0);
        let herbs = Matrix::from_fn(8, 3, |r, c| ((r * 7 + c) % 5) as f32 - 2.0);
        let new_model = FrozenModel::from_parts(symptoms, herbs, None).unwrap();
        let new_vocab = ServingVocab::new(
            (0..5).map(|i| format!("s{i}")).collect(),
            (0..8).map(|i| format!("g1-h{i}")).collect(),
        );
        let expected = new_model.recommend(&[0, 1], 3).unwrap();
        let artifact = crate::artifact::to_base64(&crate::artifact::encode(&new_model, &new_vocab));

        let ack = roundtrip(
            addr,
            &format!(r#"{{"op":"publish","artifact":"{artifact}"}}"#),
        );
        assert_eq!(ack.get("published"), Some(&Json::Bool(true)), "{ack}");
        assert_eq!(ack.get("generation").and_then(Json::as_num), Some(1.0));
        assert_eq!(ack.get("herbs").and_then(Json::as_num), Some(8.0));

        let after = roundtrip(addr, r#"{"symptom_ids": [0, 1], "k": 3}"#);
        assert_eq!(after.get("generation").and_then(Json::as_num), Some(1.0));
        let ids: Vec<u32> = after
            .get("herb_ids")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|v| v.as_num().unwrap() as u32)
            .collect();
        assert_eq!(
            ids, expected,
            "post-publish rankings come from the new model"
        );
        let names: Vec<&str> = after
            .get("herbs")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        assert!(names.iter().all(|n| n.starts_with("g1-")), "{names:?}");

        // A corrupt artifact is rejected and the generation stays put.
        let bad = roundtrip(addr, r#"{"op":"publish","artifact":"not base64!"}"#);
        assert_eq!(
            bad.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("bad_artifact")
        );
        let stats = roundtrip(addr, r#"{"op": "stats"}"#);
        assert_eq!(stats.get("generation").and_then(Json::as_num), Some(1.0));

        // The rejection is counted and journaled for the fleet to see.
        let snap = roundtrip(addr, r#"{"op": "metrics"}"#);
        assert_eq!(
            snap.get("metrics")
                .and_then(|m| m.get("serve_publish_rejected_total"))
                .and_then(Json::as_num),
            Some(1.0)
        );
        let report = roundtrip(addr, r#"{"op": "events"}"#);
        let events = report.get("events").and_then(Json::as_arr).unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.get("kind").and_then(Json::as_str) == Some("publish_rejected")),
            "publish_rejected event missing: {report}"
        );
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn deadline_budget_is_enforced_end_to_end() {
        let (addr, stop, handle) = test_server();
        // A generous budget scores normally.
        let ok = roundtrip(
            addr,
            r#"{"symptom_ids": [0, 1], "k": 3, "deadline_ms": 5000}"#,
        );
        assert!(ok.get("error").is_none(), "{ok}");
        // A pre-spent budget is shed with the structured, terminal code
        // before it costs a queue slot.
        let shed = roundtrip(addr, r#"{"symptom_ids": [0, 1], "k": 3, "deadline_ms": 0}"#);
        let err = shed.get("error").expect("zero budget must be shed");
        assert_eq!(
            err.get("code").and_then(Json::as_str),
            Some(codes::DEADLINE_EXCEEDED)
        );
        assert!(
            err.get("retryable").is_none(),
            "deadline sheds are terminal"
        );
        // Malformed budgets are a client bug, not a shed.
        let bad = roundtrip(addr, r#"{"symptom_ids": [0], "k": 2, "deadline_ms": 1.5}"#);
        assert_eq!(
            bad.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(codes::BAD_REQUEST)
        );
        // The shed is visible in the metrics snapshot.
        let snap = roundtrip(addr, r#"{"op": "metrics"}"#);
        assert_eq!(
            snap.get("metrics")
                .and_then(|m| m.get("serve_deadline_sheds_total"))
                .and_then(Json::as_num),
            Some(1.0)
        );
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn connection_overload_sheds_with_structured_error() {
        let symptoms = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) % 4) as f32 - 1.5);
        let herbs = Matrix::from_fn(7, 3, |r, c| ((r * 2 + c * 5) % 6) as f32 - 2.5);
        let model = FrozenModel::from_parts(symptoms, herbs, None).unwrap();
        let server = Server::bind(
            "127.0.0.1:0",
            model,
            ServingVocab::default(),
            ServerConfig {
                max_connections: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());

        // Occupy the only slot (a roundtrip proves the handler is live).
        let held = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(held.try_clone().unwrap());
        let mut writer = BufWriter::new(held);
        writeln!(writer, r#"{{"symptom_ids": [0], "k": 2}}"#).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(json::parse(line.trim()).unwrap().get("error").is_none());

        // The next connection is shed with a retryable structured error.
        let extra = TcpStream::connect(addr).unwrap();
        let mut extra_reader = BufReader::new(extra);
        let mut refusal = String::new();
        extra_reader.read_line(&mut refusal).unwrap();
        let refusal = json::parse(refusal.trim()).unwrap();
        let err = refusal.get("error").expect("shed response is an error");
        assert_eq!(err.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(err.get("retryable"), Some(&Json::Bool(true)));

        // The shed is counted and latency percentiles are reported.
        writeln!(writer, r#"{{"op": "stats"}}"#).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let stats = json::parse(line.trim()).unwrap();
        assert_eq!(stats.get("sheds").and_then(Json::as_num), Some(1.0));
        assert_eq!(
            stats.get("queue_rejections").and_then(Json::as_num),
            Some(0.0)
        );
        let latency = stats.get("latency").expect("latency histogram in stats");
        assert!(latency.get("count").and_then(Json::as_num).unwrap() >= 1.0);
        assert!(latency.get("p99_us").and_then(Json::as_num).unwrap() > 0.0);
        assert!(
            latency.get("p99_us").and_then(Json::as_num).unwrap()
                >= latency.get("p50_us").and_then(Json::as_num).unwrap()
        );
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn traced_request_returns_partitioned_monotonic_spans() {
        let (addr, stop, handle) = test_server();
        let resp = roundtrip(
            addr,
            r#"{"symptom_ids": [0, 2], "k": 3, "trace": true, "trace_id": "cafe0123"}"#,
        );
        assert!(resp.get("error").is_none(), "{resp}");
        let trace = resp.get("trace").expect("trace section when requested");
        assert_eq!(
            trace.get("trace_id").and_then(Json::as_str),
            Some("cafe0123"),
            "client-supplied trace_id must be echoed"
        );
        let spans = trace.get("spans").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = spans
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str))
            .collect();
        for expected in [
            "parse",
            "resolve",
            "cache_miss",
            "queue",
            "gemm",
            "topk",
            "respond",
        ] {
            assert!(
                names.contains(&expected),
                "missing span {expected}: {names:?}"
            );
        }
        let starts: Vec<f64> = spans
            .iter()
            .map(|s| s.get("start_us").and_then(Json::as_num).unwrap())
            .collect();
        assert!(
            starts.windows(2).all(|w| w[1] >= w[0]),
            "span starts must be monotonic: {starts:?}"
        );
        let span_sum: f64 = spans
            .iter()
            .map(|s| s.get("us").and_then(Json::as_num).unwrap())
            .sum();
        let micros = resp.get("micros").and_then(Json::as_num).unwrap();
        assert!(
            (span_sum - micros).abs() <= (micros * 0.10).max(200.0),
            "span durations ({span_sum}) must sum to ~observed wall latency ({micros})"
        );

        // A cache hit traces too, with the outcome in the span name.
        let warm = roundtrip(addr, r#"{"symptom_ids": [0, 2], "k": 3, "trace": true}"#);
        assert_eq!(warm.get("cached"), Some(&Json::Bool(true)));
        let warm_names: Vec<String> = warm
            .get("trace")
            .and_then(|t| t.get("spans"))
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str).map(String::from))
            .collect();
        assert!(
            warm_names.iter().any(|n| n == "cache_hit"),
            "{warm_names:?}"
        );
        // Minted id when the client didn't supply one.
        assert!(!warm
            .get("trace")
            .and_then(|t| t.get("trace_id"))
            .and_then(Json::as_str)
            .unwrap()
            .is_empty());
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn untraced_responses_carry_no_trace_section() {
        let (addr, stop, handle) = test_server();
        let resp = roundtrip(addr, r#"{"symptom_ids": [1, 3], "k": 3}"#);
        assert!(resp.get("trace").is_none(), "{resp}");
        // A trace_id alone (no "trace": true) does not opt in.
        let resp = roundtrip(addr, r#"{"symptom_ids": [1, 3], "k": 3, "trace_id": "x"}"#);
        assert!(resp.get("trace").is_none(), "{resp}");
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn metrics_op_snapshots_registry_in_both_formats() {
        let (addr, stop, handle) = test_server();
        let _ = roundtrip(addr, r#"{"symptom_ids": [0, 1], "k": 3}"#);
        let _ = roundtrip(addr, r#"{"symptom_ids": [0, 1], "k": 3}"#);
        let _ = roundtrip(addr, r#"{"symptoms": ["nope"]}"#);
        let snap = roundtrip(addr, r#"{"op": "metrics"}"#);
        assert_eq!(snap.get("generation").and_then(Json::as_num), Some(0.0));
        let metrics = snap.get("metrics").expect("metrics object");
        assert!(
            metrics
                .get("serve_requests_total")
                .and_then(Json::as_num)
                .unwrap()
                >= 3.0
        );
        assert_eq!(
            metrics.get("serve_cache_hits_total").and_then(Json::as_num),
            Some(1.0)
        );
        assert_eq!(
            metrics
                .get("serve_errors_total{code=\"unknown_symptom\"}")
                .and_then(Json::as_num),
            Some(1.0)
        );
        let latency = metrics.get("serve_latency_us").expect("latency histogram");
        assert!(latency.get("count").and_then(Json::as_num).unwrap() >= 2.0);
        assert!(latency.get("total_p99_us").and_then(Json::as_num).unwrap() > 0.0);
        let gemm = metrics.get("serve_gemm_us").expect("gemm histogram");
        assert!(gemm.get("count").and_then(Json::as_num).unwrap() >= 1.0);

        let prom = roundtrip(addr, r#"{"op": "metrics", "format": "prometheus"}"#);
        let text = prom.get("prometheus").and_then(Json::as_str).unwrap();
        assert!(
            text.contains("# TYPE serve_requests_total counter"),
            "{text}"
        );
        assert!(text.contains("# TYPE serve_latency_us summary"), "{text}");
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn events_op_reports_publishes_and_sheds() {
        let (addr, stop, handle) = test_server();
        let symptoms = Matrix::from_fn(5, 3, |r, c| ((r + 2 * c) % 3) as f32 - 1.0);
        let herbs = Matrix::from_fn(7, 3, |r, c| ((r * 7 + c) % 5) as f32 - 2.0);
        let model = FrozenModel::from_parts(symptoms, herbs, None).unwrap();
        let artifact =
            crate::artifact::to_base64(&crate::artifact::encode(&model, &ServingVocab::default()));
        let ack = roundtrip(
            addr,
            &format!(r#"{{"op":"publish","artifact":"{artifact}"}}"#),
        );
        assert_eq!(ack.get("published"), Some(&Json::Bool(true)), "{ack}");
        let report = roundtrip(addr, r#"{"op": "events"}"#);
        let events = report.get("events").and_then(Json::as_arr).unwrap();
        assert!(
            events.iter().any(|e| {
                e.get("kind").and_then(Json::as_str) == Some("publish")
                    && e.get("unix_ms").and_then(Json::as_num).unwrap_or(0.0) > 0.0
            }),
            "publish event missing: {report}"
        );
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn background_sampling_fills_journal_without_touching_responses() {
        let symptoms = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) % 4) as f32 - 1.5);
        let herbs = Matrix::from_fn(7, 3, |r, c| ((r * 2 + c * 5) % 6) as f32 - 2.5);
        let model = FrozenModel::from_parts(symptoms, herbs, None).unwrap();
        let server = Server::bind(
            "127.0.0.1:0",
            model,
            ServingVocab::default(),
            ServerConfig {
                max_connections: 16,
                trace_sample_every: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());
        for i in 0..6 {
            let resp = roundtrip(addr, &format!(r#"{{"symptom_ids": [{}], "k": 2}}"#, i % 5));
            assert!(
                resp.get("trace").is_none(),
                "sampling must not leak: {resp}"
            );
        }
        let snap = roundtrip(addr, r#"{"op": "metrics"}"#);
        assert!(
            snap.get("traces_recorded").and_then(Json::as_num).unwrap() >= 3.0,
            "1-in-2 sampling over 6 requests: {snap}"
        );
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn profile_op_folds_phase_stacks_covering_wall_time() {
        let (addr, stop, handle) = test_server();
        for i in 0..12 {
            let resp = roundtrip(addr, &format!(r#"{{"symptom_ids": [{}], "k": 3}}"#, i % 5));
            assert!(resp.get("error").is_none(), "{resp}");
        }
        let report = roundtrip(addr, r#"{"op": "profile"}"#);
        assert_eq!(report.get("enabled"), Some(&Json::Bool(true)));
        let folded = report.get("folded").and_then(Json::as_str).unwrap();
        // Sub-microsecond phases (cache lookups, sometimes parse) are
        // zero-suppressed from the fold, so only assert the stacks that
        // always accumulate real time: the respond remainder and the
        // scoring GEMM.
        assert!(
            folded.contains("serve;request;respond "),
            "missing respond stack in:\n{folded}"
        );
        assert!(
            folded.contains("serve;request;score;"),
            "missing scoring stacks in:\n{folded}"
        );
        // The folded stacks must account for (nearly) all the wall time
        // the latency histogram measured: phases + respond remainder
        // partition each recorded request by construction.
        let profiled = report
            .get("profile_total_us")
            .and_then(Json::as_num)
            .unwrap();
        let measured = report
            .get("latency_total_us")
            .and_then(Json::as_num)
            .unwrap();
        assert!(measured > 0.0, "{report}");
        assert!(
            profiled >= 0.9 * measured,
            "folded stacks cover {profiled}µs of {measured}µs measured"
        );
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn profiling_disabled_leaves_stacks_empty() {
        let symptoms = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) % 4) as f32 - 1.5);
        let herbs = Matrix::from_fn(7, 3, |r, c| ((r * 2 + c * 5) % 6) as f32 - 2.5);
        let model = FrozenModel::from_parts(symptoms, herbs, None).unwrap();
        let server = Server::bind(
            "127.0.0.1:0",
            model,
            ServingVocab::default(),
            ServerConfig {
                profile: false,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let _ = roundtrip(addr, r#"{"symptom_ids": [0], "k": 2}"#);
        let report = roundtrip(addr, r#"{"op": "profile"}"#);
        assert_eq!(report.get("enabled"), Some(&Json::Bool(false)));
        assert_eq!(
            report.get("profile_total_us").and_then(Json::as_num),
            Some(0.0),
            "{report}"
        );
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn error_requests_are_always_trace_retained() {
        // No client-requested traces and no background sampling: only
        // the tail-retention path can put records in the journal.
        let (addr, stop, handle) = test_server();
        let _ = roundtrip(addr, r#"{"symptom_ids": [0, 0], "k": 2}"#); // duplicate_symptom
        let _ = roundtrip(addr, r#"{"symptom_ids": [99], "k": 2}"#); // symptom_out_of_range
        let snap = roundtrip(addr, r#"{"op": "metrics"}"#);
        assert!(
            snap.get("traces_recorded").and_then(Json::as_num).unwrap() >= 2.0,
            "errors must be force-retained in the trace journal: {snap}"
        );
        let metrics = snap.get("metrics").expect("metrics object");
        assert_eq!(
            metrics
                .get("serve_traces_dropped_total")
                .and_then(Json::as_num),
            Some(0.0),
            "journal far from capacity, nothing may drop: {snap}"
        );
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn flatten_metrics_json_splits_histograms_into_series() {
        let (addr, stop, handle) = test_server();
        let _ = roundtrip(addr, r#"{"symptom_ids": [1], "k": 2}"#);
        let snap = roundtrip(addr, r#"{"op": "metrics"}"#);
        let flat = flatten_metrics_json(snap.get("metrics").unwrap());
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"serve_requests_total"), "{names:?}");
        assert!(names.contains(&"serve_latency_us.total_count"), "{names:?}");
        assert!(
            names.contains(&"serve_latency_us.total_p99_us"),
            "{names:?}"
        );
        assert!(
            names.contains(&"serve_latency_us.total_sum_us"),
            "{names:?}"
        );
        let requests = flat
            .iter()
            .find(|(n, _)| n == "serve_requests_total")
            .unwrap()
            .1;
        assert!(requests >= 1.0);
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn scores_align_with_ranking() {
        let (addr, stop, handle) = test_server();
        let resp = roundtrip(addr, r#"{"symptom_ids": [0, 3], "k": 5, "scores": true}"#);
        let scores: Vec<f64> = resp
            .get("scores")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_num().unwrap())
            .collect();
        assert_eq!(scores.len(), 5);
        assert!(
            scores.windows(2).all(|w| w[0] >= w[1]),
            "scores must be descending: {scores:?}"
        );
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn experiment_verbs_split_and_promote_over_the_wire() {
        let (addr, stop, handle) = test_server();
        // A distinguishable candidate model with the same shape.
        let symptoms = Matrix::from_fn(5, 3, |r, c| ((r * 7 + c * 3) % 5) as f32 - 2.0);
        let herbs = Matrix::from_fn(7, 3, |r, c| ((r + c * 4) % 5) as f32 - 1.0);
        let cand = FrozenModel::from_parts(symptoms, herbs, None).unwrap();
        let vocab = ServingVocab::new(
            (0..5).map(|i| format!("s{i}")).collect(),
            (0..7).map(|i| format!("cand-h{i}")).collect(),
        );
        let artifact = crate::artifact::to_base64(&crate::artifact::encode(&cand, &vocab));

        // Install before publish must fail atomically.
        let premature = roundtrip(
            addr,
            r#"{"op":"experiment","action":"install","plan":"not-a-plan"}"#,
        );
        assert_eq!(
            premature
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(codes::BAD_PLAN)
        );
        let plan = smgcn_experiment::SplitPlan::new(
            7,
            1,
            &[("control".to_string(), 0), ("cand".to_string(), 100)],
        )
        .unwrap();
        let missing = roundtrip(
            addr,
            &format!(
                r#"{{"op":"experiment","action":"install","plan":"{}"}}"#,
                plan.to_canonical()
            ),
        );
        assert_eq!(
            missing
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(codes::UNKNOWN_VARIANT),
            "{missing}"
        );

        // Publish the candidate, then install a 0/100 split: every
        // request (sticky key or not) must land on the candidate.
        let published = roundtrip(
            addr,
            &format!(
                r#"{{"op":"experiment","action":"publish","variant":"cand","artifact":"{artifact}"}}"#
            ),
        );
        assert_eq!(
            published.get("published"),
            Some(&Json::Bool(true)),
            "{published}"
        );
        let installed = roundtrip(
            addr,
            &format!(
                r#"{{"op":"experiment","action":"install","plan":"{}"}}"#,
                plan.to_canonical()
            ),
        );
        assert_eq!(
            installed.get("installed"),
            Some(&Json::Bool(true)),
            "{installed}"
        );

        let resp = roundtrip(addr, r#"{"symptom_ids":[0,1],"k":3,"client":"alice"}"#);
        assert_eq!(
            resp.get("variant").and_then(Json::as_str),
            Some("cand"),
            "{resp}"
        );
        let herbs = resp.get("herbs").unwrap().as_arr().unwrap();
        assert!(
            herbs
                .iter()
                .all(|h| h.as_str().unwrap().starts_with("cand-")),
            "candidate vocabulary must label the response: {resp}"
        );
        // Explicit override pins control regardless of the plan.
        let ctrl = roundtrip(
            addr,
            r#"{"symptom_ids":[0,1],"k":3,"variant":"control","client":"alice"}"#,
        );
        assert_eq!(ctrl.get("variant").and_then(Json::as_str), Some("control"));
        assert!(ctrl
            .get("herbs")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .all(|h| h.as_str().unwrap().starts_with('h')));

        // Duel samples journaled for candidate traffic (sample-every
        // defaults to 8; drive enough requests with distinct keys).
        for i in 0..32 {
            let _ = roundtrip(
                addr,
                &format!(
                    r#"{{"symptom_ids":[{},{}],"k":3,"client":"c{i}"}}"#,
                    i % 4,
                    4
                ),
            );
        }
        let samples = roundtrip(addr, r#"{"op":"experiment","action":"samples"}"#);
        assert!(
            samples.get("duels_total").and_then(Json::as_num).unwrap() >= 1.0,
            "{samples}"
        );

        // Promote: control slot now serves the candidate's model+vocab
        // as a new generation; halt drops the plan.
        let promoted = roundtrip(
            addr,
            r#"{"op":"experiment","action":"promote-local","variant":"cand"}"#,
        );
        assert_eq!(
            promoted.get("promoted"),
            Some(&Json::Bool(true)),
            "{promoted}"
        );
        assert_eq!(promoted.get("generation").and_then(Json::as_num), Some(1.0));
        let halted = roundtrip(addr, r#"{"op":"experiment","action":"halt"}"#);
        assert_eq!(halted.get("halted"), Some(&Json::Bool(true)));
        let after = roundtrip(addr, r#"{"symptom_ids":[0,1],"k":3,"client":"alice"}"#);
        assert!(
            after.get("variant").is_none(),
            "no experiment context: {after}"
        );
        assert_eq!(after.get("generation").and_then(Json::as_num), Some(1.0));
        assert!(after
            .get("herbs")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .all(|h| h.as_str().unwrap().starts_with("cand-")));

        let status = roundtrip(addr, r#"{"op":"experiment","action":"status"}"#);
        assert_eq!(status.get("plan"), Some(&Json::Null));
        let variants = status.get("variants").unwrap().as_arr().unwrap();
        assert_eq!(variants.len(), 2, "{status}");
        stop.stop();
        handle.join().unwrap();
    }
}
