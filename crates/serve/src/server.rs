//! Multi-threaded TCP serving loop (`smgcn serve`).
//!
//! Std-only: a `TcpListener` accept loop hands connections to a
//! fixed-size thread pool. The wire protocol is newline-delimited JSON —
//! one request object per line, one response object per line:
//!
//! ```text
//! -> {"symptoms": ["s12", "s3"], "k": 10}
//! -> {"symptom_ids": [12, 3], "k": 5}
//! <- {"herb_ids":[...], "herbs":[...], "scores":[...], "cached":false, "micros":184}
//! <- {"error":"unknown symptom \"xyz\""}
//! ```
//!
//! Request flow per line: resolve names → canonical [`QueryKey`] →
//! LRU lookup → on miss, score through the shared [`Batcher`] (packing
//! concurrent queries into one GEMM) → insert into the cache. The cache
//! is keyed by the *sorted* symptom-id set, so permutations of the same
//! clinic presentation share an entry.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::batcher::{Batcher, BatcherConfig};
use crate::cache::{LruCache, QueryKey};
use crate::frozen::FrozenModel;
use crate::json::{self, Json};

/// Name/id mappings for the serving protocol. Decoupled from
/// `smgcn-data`'s corpus vocabulary so the serve crate stays free of
/// training-side dependencies; the CLI builds one from the corpus.
#[derive(Clone, Debug, Default)]
pub struct ServingVocab {
    symptom_names: Vec<String>,
    herb_names: Vec<String>,
    symptom_index: HashMap<String, u32>,
}

impl ServingVocab {
    /// Builds the vocab from parallel name lists (index = id).
    pub fn new(symptom_names: Vec<String>, herb_names: Vec<String>) -> Self {
        let symptom_index = symptom_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        Self {
            symptom_names,
            herb_names,
            symptom_index,
        }
    }

    /// Resolves a symptom name to its id.
    pub fn symptom_id(&self, name: &str) -> Option<u32> {
        self.symptom_index.get(name).copied()
    }

    /// The display name of a herb id, or the numeric id when unnamed.
    pub fn herb_name(&self, id: u32) -> String {
        self.herb_names
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// True when no names were provided (ids-only protocol).
    pub fn is_empty(&self) -> bool {
        self.symptom_names.is_empty() && self.herb_names.is_empty()
    }
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrent connections, each served by its own handler
    /// thread (connections beyond the cap get a one-line JSON error and
    /// are closed). Micro-batching packs the in-flight requests of all
    /// open connections, so this also bounds the largest possible batch.
    pub max_connections: usize,
    /// Default ranking depth when a request omits `k`.
    pub default_k: usize,
    /// Upper bound on requested `k` (guards allocation per request).
    pub max_k: usize,
    /// LRU entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Micro-batching configuration.
    pub batcher: BatcherConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            default_k: 10,
            max_k: 100,
            cache_capacity: 4096,
            batcher: BatcherConfig::default(),
        }
    }
}

struct Engine {
    model: Arc<FrozenModel>,
    batcher: Batcher,
    cache: Option<Mutex<LruCache<QueryKey, Vec<u32>>>>,
    vocab: ServingVocab,
    config: ServerConfig,
}

impl Engine {
    /// Answers one canonical query, consulting the cache first.
    /// Returns `(ranking, was_cache_hit)`.
    fn rank(&self, key: QueryKey) -> Result<(Vec<u32>, bool), String> {
        let k = key.k;
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.lock().expect("cache lock").get(&key).cloned() {
                return Ok((hit, true));
            }
        }
        let ranking = self
            .batcher
            .recommend(&key.symptoms, k)
            .map_err(|e| e.to_string())?;
        if let Some(cache) = &self.cache {
            cache
                .lock()
                .expect("cache lock")
                .insert(key, ranking.clone());
        }
        Ok((ranking, false))
    }

    fn handle_line(&self, line: &str) -> Json {
        let started = Instant::now();
        match self.answer(line) {
            Ok((ids, scores_requested, cached)) => {
                let mut fields = vec![
                    ("herb_ids", json::id_array(&ids)),
                    ("cached", Json::Bool(cached)),
                    ("micros", Json::Num(started.elapsed().as_micros() as f64)),
                ];
                if !self.vocab.is_empty() {
                    fields.push((
                        "herbs",
                        Json::Arr(
                            ids.iter()
                                .map(|&h| Json::Str(self.vocab.herb_name(h)))
                                .collect(),
                        ),
                    ));
                }
                if let Some(scores) = scores_requested {
                    fields.push(("scores", json::score_array(&scores)));
                }
                json::obj(fields)
            }
            Err(msg) => json::obj([("error", Json::Str(msg))]),
        }
    }

    /// Parses and answers; returns `(herb ids, optional scores, cached)`.
    #[allow(clippy::type_complexity)]
    fn answer(&self, line: &str) -> Result<(Vec<u32>, Option<Vec<f32>>, bool), String> {
        let req = json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
        let k = match req.get("k") {
            None => self.config.default_k,
            Some(Json::Num(n)) if *n >= 1.0 && n.fract() == 0.0 => *n as usize,
            Some(other) => return Err(format!("bad k: {other}")),
        };
        if k > self.config.max_k {
            return Err(format!("k {k} exceeds maximum {}", self.config.max_k));
        }
        // Canonicalize once (sorted, deduplicated) so the ranking, the
        // cache key and the diagnostic scores all describe the same query —
        // duplicated ids would otherwise skew the mean pooling.
        let key = QueryKey::new(&self.request_ids(&req)?, k);
        let want_scores = matches!(req.get("scores"), Some(Json::Bool(true)));
        let ids = want_scores.then(|| key.symptoms.clone());
        let (ranking, cached) = self.rank(key)?;
        let scores = match ids {
            Some(ids) => {
                // Score path bypasses the cache: it is diagnostic traffic.
                let all = self.model.score_one(&ids).map_err(|e| e.to_string())?;
                Some(ranking.iter().map(|&h| all[h as usize]).collect())
            }
            None => None,
        };
        Ok((ranking, scores, cached))
    }

    fn request_ids(&self, req: &Json) -> Result<Vec<u32>, String> {
        if let Some(raw) = req.get("symptom_ids") {
            let arr = raw.as_arr().ok_or("symptom_ids must be an array")?;
            return arr
                .iter()
                .map(|v| match v.as_num() {
                    Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u32),
                    _ => Err(format!("bad symptom id {v}")),
                })
                .collect();
        }
        if let Some(raw) = req.get("symptoms") {
            let arr = raw.as_arr().ok_or("symptoms must be an array of names")?;
            return arr
                .iter()
                .map(|v| {
                    let name = v.as_str().ok_or_else(|| format!("bad symptom {v}"))?;
                    self.vocab
                        .symptom_id(name)
                        .ok_or_else(|| format!("unknown symptom {name:?}"))
                })
                .collect();
        }
        Err("request needs \"symptoms\" (names) or \"symptom_ids\"".into())
    }
}

/// A running (or ready-to-run) recommendation server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, port 0 for ephemeral) and
    /// prepares the scoring engine. Call [`Server::run`] to serve.
    pub fn bind(
        addr: impl ToSocketAddrs,
        model: FrozenModel,
        vocab: ServingVocab,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let model = Arc::new(model);
        let engine = Arc::new(Engine {
            batcher: Batcher::start(Arc::clone(&model), config.batcher.clone()),
            cache: (config.cache_capacity > 0)
                .then(|| Mutex::new(LruCache::new(config.cache_capacity))),
            model,
            vocab,
            config,
        });
        Ok(Self {
            listener,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`Server::run`] return.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            stop: Arc::clone(&self.stop),
            addr: self.listener.local_addr().ok(),
        }
    }

    /// Serves until the stop handle fires. Each connection gets its own
    /// handler thread, up to `config.max_connections` concurrently; a
    /// connection over the cap receives a one-line JSON error and is
    /// closed rather than silently queued (a fixed worker pool would
    /// starve extra persistent connections and cap micro-batch size at
    /// the pool width).
    pub fn run(self) -> std::io::Result<()> {
        let max_connections = self.engine.config.max_connections.max(1);
        let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for (conn_id, stream) in self.listener.incoming().enumerate() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let mut stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    eprintln!("accept error: {e}");
                    continue;
                }
            };
            handles.retain(|h| !h.is_finished());
            if active.load(Ordering::SeqCst) >= max_connections {
                let refusal =
                    json::obj([("error", Json::Str("server at connection capacity".into()))]);
                let _ = writeln!(stream, "{refusal}");
                continue; // stream drops: connection closed
            }
            active.fetch_add(1, Ordering::SeqCst);
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            let active = Arc::clone(&active);
            let handle = std::thread::Builder::new()
                .name(format!("smgcn-conn-{conn_id}"))
                .spawn(move || {
                    handle_connection(&engine, stream, &stop);
                    active.fetch_sub(1, Ordering::SeqCst);
                })
                .expect("spawn connection handler");
            handles.push(handle);
        }
        // Handlers notice the stop flag within their read timeout.
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Makes a running server's accept loop exit.
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    addr: Option<std::net::SocketAddr>,
}

impl StopHandle {
    /// Signals shutdown and unblocks the accept loop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(addr) = self.addr {
            // Nudge the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(addr);
        }
    }
}

fn handle_connection(engine: &Engine, stream: TcpStream, stop: &AtomicBool) {
    let peer = stream.peer_addr().ok();
    // A finite read timeout lets the worker notice shutdown even while a
    // client keeps an idle connection open — otherwise a graceful stop
    // would block on the last chatty client forever. The write timeout
    // bounds the symmetric hazard: a client that pipelines requests but
    // never drains responses would otherwise park the handler in flush()
    // once the send buffer fills, and the shutdown join would hang.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(2)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connection clone failed for {peer:?}: {e}");
            return;
        }
    });
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // `read_line` appends, so a timeout mid-line resumes where the
        // partial read stopped on the next iteration.
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return, // peer closed
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return, // peer went away
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = engine.handle_line(line.trim_end());
        if writeln!(writer, "{response}")
            .and_then(|_| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smgcn_tensor::Matrix;

    fn test_server() -> (
        std::net::SocketAddr,
        StopHandle,
        std::thread::JoinHandle<()>,
    ) {
        let symptoms = Matrix::from_fn(5, 3, |r, c| ((r * 3 + c) % 4) as f32 - 1.5);
        let herbs = Matrix::from_fn(7, 3, |r, c| ((r * 2 + c * 5) % 6) as f32 - 2.5);
        let model = FrozenModel::from_parts(symptoms, herbs, None).unwrap();
        let vocab = ServingVocab::new(
            (0..5).map(|i| format!("s{i}")).collect(),
            (0..7).map(|i| format!("h{i}")).collect(),
        );
        let server = Server::bind(
            "127.0.0.1:0",
            model,
            vocab,
            ServerConfig {
                max_connections: 16,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, stop, handle)
    }

    fn roundtrip(addr: std::net::SocketAddr, request: &str) -> Json {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writeln!(writer, "{request}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        json::parse(line.trim()).unwrap()
    }

    #[test]
    fn serves_concurrent_clients_with_names_and_ids() {
        let (addr, stop, handle) = test_server();
        let mut clients = Vec::new();
        for t in 0..8 {
            clients.push(std::thread::spawn(move || {
                let req = if t % 2 == 0 {
                    format!(
                        r#"{{"symptoms": ["s{}", "s{}"], "k": 3}}"#,
                        t % 5,
                        (t + 1) % 5
                    )
                } else {
                    format!(r#"{{"symptom_ids": [{}, {}], "k": 3}}"#, t % 5, (t + 1) % 5)
                };
                let resp = roundtrip(addr, &req);
                assert!(resp.get("error").is_none(), "unexpected error: {resp}");
                assert_eq!(resp.get("herb_ids").unwrap().as_arr().unwrap().len(), 3);
                assert_eq!(resp.get("herbs").unwrap().as_arr().unwrap().len(), 3);
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn name_and_id_requests_agree_and_cache_hits() {
        let (addr, stop, handle) = test_server();
        let by_name = roundtrip(addr, r#"{"symptoms": ["s1", "s2"], "k": 4}"#);
        let by_ids = roundtrip(addr, r#"{"symptom_ids": [2, 1], "k": 4}"#);
        assert_eq!(
            by_name.get("herb_ids").unwrap(),
            by_ids.get("herb_ids").unwrap(),
            "same canonical query must rank identically"
        );
        assert_eq!(by_name.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(
            by_ids.get("cached"),
            Some(&Json::Bool(true)),
            "permuted ids are the same cache key"
        );
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn multiple_requests_per_connection_and_errors() {
        let (addr, stop, handle) = test_server();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        for (req, expect_err) in [
            (r#"{"symptoms": ["s0"]}"#, false),
            (r#"{"symptoms": ["nope"]}"#, true),
            (r#"not json"#, true),
            (r#"{"symptom_ids": [0], "k": 2, "scores": true}"#, false),
            (r#"{"k": 2}"#, true),
            (r#"{"symptom_ids": [], "k": 2}"#, true),
            (r#"{"symptom_ids": [0], "k": 0}"#, true),
            (r#"{"symptom_ids": [0], "k": 100000}"#, true),
        ] {
            writeln!(writer, "{req}").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let resp = json::parse(line.trim()).unwrap();
            assert_eq!(resp.get("error").is_some(), expect_err, "req {req}: {resp}");
        }
        stop.stop();
        handle.join().unwrap();
    }

    #[test]
    fn scores_align_with_ranking() {
        let (addr, stop, handle) = test_server();
        let resp = roundtrip(addr, r#"{"symptom_ids": [0, 3], "k": 5, "scores": true}"#);
        let scores: Vec<f64> = resp
            .get("scores")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_num().unwrap())
            .collect();
        assert_eq!(scores.len(), 5);
        assert!(
            scores.windows(2).all(|w| w[0] >= w[1]),
            "scores must be descending: {scores:?}"
        );
        stop.stop();
        handle.join().unwrap();
    }
}
