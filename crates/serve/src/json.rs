//! Minimal JSON reader/writer for the serving protocol.
//!
//! The wire format is newline-delimited JSON objects with a tiny, flat
//! schema (string arrays, number arrays, a few scalar fields), so a
//! ~200-line recursive-descent parser covers it without pulling in a
//! serialisation framework. Numbers parse as `f64`; escapes support the
//! JSON standard set including `\uXXXX` (surrogate pairs excluded —
//! symptom names in this corpus are ASCII identifiers).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted (BTreeMap) so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a finite f64, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Serialises to compact JSON text (via `.to_string()`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: an object from key/value pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: a number array from u32 ids.
pub fn id_array(ids: &[u32]) -> Json {
    Json::Arr(ids.iter().map(|&i| Json::Num(i as f64)).collect())
}

/// Convenience: a number array from f32 scores.
pub fn score_array(scores: &[f32]) -> Json {
    Json::Arr(scores.iter().map(|&s| Json::Num(s as f64)).collect())
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(
                            char::from_u32(code).ok_or("surrogate \\u escapes are unsupported")?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid by construction).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_request_shapes() {
        let text = r#"{"symptoms": ["cough", "fever"], "k": 5}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_num), Some(5.0));
        let names: Vec<&str> = v
            .get("symptoms")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        assert_eq!(names, vec!["cough", "fever"]);
        // Reserialise and reparse: stable.
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        let nested = parse(r#"{"a": [1, [2, {"b": null}]]}"#).unwrap();
        assert!(nested.get("a").is_some());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("line\none \"quoted\" \\ tab\there \u{1}".to_string());
        let text = original.to_string();
        assert_eq!(parse(&text).unwrap(), original);
        assert_eq!(parse(r#""A\n""#).unwrap(), Json::Str("A\n".to_string()));
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"发热 咳嗽\"").unwrap();
        assert_eq!(v.as_str(), Some("发热 咳嗽"));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "nul", "1 2", "\"abc", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_serialise_without_fraction() {
        assert_eq!(Json::Num(5.0).to_string(), "5");
        assert_eq!(Json::Num(5.25).to_string(), "5.25");
        assert_eq!(id_array(&[1, 2, 3]).to_string(), "[1,2,3]");
    }

    #[test]
    fn helper_builders() {
        let o = obj([("ok", Json::Bool(true)), ("ids", id_array(&[7]))]);
        assert_eq!(o.to_string(), r#"{"ids":[7],"ok":true}"#);
        assert_eq!(score_array(&[0.5]).to_string(), "[0.5]");
    }
}
