//! The frozen model: materialized embeddings + the syndrome-induction head.
//!
//! Everything upstream of Eq. 12 in SMGCN — Bipar-GCN message passing and
//! the synergy-graph encoding — operates on the *static* training graphs,
//! so the fused node embeddings `e*_s` and `e*_h` are the same for every
//! query. [`FrozenModel`] runs that expensive forward pass exactly once
//! (at freeze time) and keeps only what per-request inference needs:
//!
//! - the final symptom embedding matrix (`S x d`),
//! - the final herb embedding matrix (`H x d`),
//! - the SI-MLP weights (`W_mlp`, `b_mlp`) when the head is nonlinear.
//!
//! A request then costs one mean-pool over `|sc|` rows, one `d x d`
//! multiply (when the MLP is present) and one `d x H` scoring product —
//! independent of graph size, layer count and corpus size. Batched
//! scoring packs `B` concurrent queries into a single `B x d` GEMM.
//!
//! Persistence reuses the `smgcn-tensor` checkpoint container (magic
//! `SMGT`), with reserved `frozen.*` tensor names, so the same tooling
//! reads training checkpoints and frozen models.

use smgcn_core::Recommender;
use smgcn_tensor::checkpoint::{self, CheckpointError};
use smgcn_tensor::{Matrix, ParamStore};

use crate::topk::partial_top_k;

/// Checkpoint tensor names used by the frozen format.
const NAME_SYMPTOMS: &str = "frozen.symptoms";
const NAME_HERBS: &str = "frozen.herbs";
const NAME_SI_W: &str = "frozen.si.w_mlp";
const NAME_SI_B: &str = "frozen.si.b_mlp";

/// Errors from freezing, persistence or querying.
#[derive(Debug)]
pub enum FrozenError {
    /// Underlying checkpoint IO/format failure.
    Checkpoint(CheckpointError),
    /// A readable checkpoint that is simply not a frozen model (no
    /// `frozen.*` tensors) — e.g. a training checkpoint. Callers can
    /// treat this one as "try the full-model path instead".
    NotFrozen(String),
    /// A frozen model whose tensors are damaged or inconsistent
    /// (missing halves, mismatched shapes).
    Format(String),
    /// A query referenced unknown symptom ids or was empty.
    Query(String),
    /// The serving layer is saturated (scoring queue full); the request
    /// was shed without being scored and is safe to retry elsewhere.
    Overloaded(String),
    /// The request's `deadline_ms` budget expired before it was scored;
    /// it was shed at the batcher drain without paying for a GEMM.
    DeadlineExceeded(String),
}

impl std::fmt::Display for FrozenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrozenError::Checkpoint(e) => write!(f, "frozen model checkpoint error: {e}"),
            FrozenError::NotFrozen(m) => write!(f, "not a frozen model: {m}"),
            FrozenError::Format(m) => write!(f, "frozen model format error: {m}"),
            FrozenError::Query(m) => write!(f, "bad query: {m}"),
            FrozenError::Overloaded(m) => write!(f, "overloaded: {m}"),
            FrozenError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
        }
    }
}

impl std::error::Error for FrozenError {}

impl From<CheckpointError> for FrozenError {
    fn from(e: CheckpointError) -> Self {
        FrozenError::Checkpoint(e)
    }
}

/// A trained SMGCN collapsed to its serving-time essentials.
#[derive(Clone)]
pub struct FrozenModel {
    symptoms: Matrix,
    herbs: Matrix,
    si_mlp: Option<(Matrix, Matrix)>,
}

impl std::fmt::Debug for FrozenModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenModel")
            .field("n_symptoms", &self.n_symptoms())
            .field("n_herbs", &self.n_herbs())
            .field("dim", &self.dim())
            .field("si_mlp", &self.has_si_mlp())
            .finish()
    }
}

impl FrozenModel {
    /// Builds a frozen model from raw parts.
    ///
    /// # Errors
    /// Rejects dimension mismatches between the matrices.
    pub fn from_parts(
        symptoms: Matrix,
        herbs: Matrix,
        si_mlp: Option<(Matrix, Matrix)>,
    ) -> Result<Self, FrozenError> {
        let d = symptoms.cols();
        if herbs.cols() != d {
            return Err(FrozenError::Format(format!(
                "embedding dim mismatch: symptoms {d}, herbs {}",
                herbs.cols()
            )));
        }
        if symptoms.rows() == 0 || herbs.rows() == 0 || d == 0 {
            return Err(FrozenError::Format("empty embedding matrices".into()));
        }
        if let Some((w, b)) = &si_mlp {
            if w.shape() != (d, d) || b.shape() != (1, d) {
                return Err(FrozenError::Format(format!(
                    "SI head shapes {:?}/{:?} do not match dim {d}",
                    w.shape(),
                    b.shape()
                )));
            }
        }
        Ok(Self {
            symptoms,
            herbs,
            si_mlp,
        })
    }

    /// Freezes a (trained) recommender: runs the graph convolutions once
    /// and captures the final embeddings plus the SI head.
    pub fn from_recommender(model: &Recommender) -> Self {
        let (symptoms, herbs) = model.final_embeddings();
        Self::from_parts(symptoms, herbs, model.syndrome_head())
            .expect("recommender produced consistent shapes")
    }

    /// Symptom vocabulary size.
    pub fn n_symptoms(&self) -> usize {
        self.symptoms.rows()
    }

    /// Herb vocabulary size.
    pub fn n_herbs(&self) -> usize {
        self.herbs.rows()
    }

    /// Final embedding dimension.
    pub fn dim(&self) -> usize {
        self.symptoms.cols()
    }

    /// Whether the nonlinear SI head is present.
    pub fn has_si_mlp(&self) -> bool {
        self.si_mlp.is_some()
    }

    fn to_store(&self) -> ParamStore {
        let mut store = ParamStore::new();
        store.add(NAME_SYMPTOMS, self.symptoms.clone());
        store.add(NAME_HERBS, self.herbs.clone());
        if let Some((w, b)) = &self.si_mlp {
            store.add(NAME_SI_W, w.clone());
            store.add(NAME_SI_B, b.clone());
        }
        store
    }

    fn from_store(store: &ParamStore) -> Result<Self, FrozenError> {
        let find = |name: &str| {
            store
                .iter()
                .find(|(_, n, _)| *n == name)
                .map(|(_, _, value)| value.clone())
        };
        let symptoms = find(NAME_SYMPTOMS).ok_or_else(|| {
            FrozenError::NotFrozen(format!(
                "missing {NAME_SYMPTOMS:?} (is this a training checkpoint?)"
            ))
        })?;
        let herbs = find(NAME_HERBS)
            .ok_or_else(|| FrozenError::Format(format!("missing {NAME_HERBS:?}")))?;
        let si_mlp = match (find(NAME_SI_W), find(NAME_SI_B)) {
            (Some(w), Some(b)) => Some((w, b)),
            (None, None) => None,
            _ => {
                return Err(FrozenError::Format(
                    "half an SI head: exactly one of w_mlp/b_mlp present".into(),
                ))
            }
        };
        Self::from_parts(symptoms, herbs, si_mlp)
    }

    /// Serialises to a writer in the `smgcn-tensor` checkpoint format.
    pub fn write_to(&self, w: impl std::io::Write) -> Result<(), FrozenError> {
        checkpoint::write_store(&self.to_store(), w)?;
        Ok(())
    }

    /// Reads a frozen model from a reader.
    pub fn read_from(r: impl std::io::Read) -> Result<Self, FrozenError> {
        Self::from_store(&checkpoint::read_store(r)?)
    }

    /// Saves to a file path.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), FrozenError> {
        checkpoint::save_store(&self.to_store(), path)?;
        Ok(())
    }

    /// Loads from a file path.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, FrozenError> {
        Self::from_store(&checkpoint::load_store(path)?)
    }

    fn validate(&self, sets: &[&[u32]]) -> Result<(), FrozenError> {
        if sets.is_empty() {
            return Err(FrozenError::Query("no symptom sets given".into()));
        }
        for (i, set) in sets.iter().enumerate() {
            if set.is_empty() {
                return Err(FrozenError::Query(format!("symptom set {i} is empty")));
            }
            for &s in *set {
                if s as usize >= self.n_symptoms() {
                    return Err(FrozenError::Query(format!(
                        "symptom id {s} out of range (vocabulary size {})",
                        self.n_symptoms()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Validates one query set (non-empty, ids in range) without scoring.
    pub fn validate_query(&self, set: &[u32]) -> Result<(), FrozenError> {
        self.validate(&[set])
    }

    /// Eq. 12 for a batch: mean-pools each set's final symptom embeddings
    /// into a `B x d` matrix and applies the SI MLP when present.
    ///
    /// Mirrors the training-side computation (`set_pool` SpMM followed by
    /// the MLP on the tape) with plain dense ops; ids are accumulated in
    /// ascending order to match the CSR traversal bit-for-bit.
    pub fn induce_batch(&self, sets: &[&[u32]]) -> Result<Matrix, FrozenError> {
        self.validate(sets)?;
        let d = self.dim();
        let mut pooled = Matrix::zeros(sets.len(), d);
        let mut sorted: Vec<u32> = Vec::new();
        for (b, set) in sets.iter().enumerate() {
            sorted.clear();
            sorted.extend_from_slice(set);
            sorted.sort_unstable();
            let w = 1.0 / set.len() as f32;
            let row = pooled.row_mut(b);
            for &s in &sorted {
                let emb = self.symptoms.row(s as usize);
                for (acc, &v) in row.iter_mut().zip(emb) {
                    *acc += w * v;
                }
            }
        }
        Ok(match &self.si_mlp {
            Some((w, bias)) => {
                // One tiled GEMM, then bias + ReLU fused in place — no
                // extra full-matrix allocation per scoring batch.
                let mut lin = pooled.matmul(w);
                let b_row = bias.row(0);
                for r in 0..lin.rows() {
                    for (v, &bv) in lin.row_mut(r).iter_mut().zip(b_row) {
                        *v = (*v + bv).max(0.0);
                    }
                }
                lin
            }
            None => pooled,
        })
    }

    /// Herb scores for a batch of symptom sets (`B x H`): Eq. 13's
    /// `g(sc, H) = e_syndrome(sc) · e*_H^T` as one GEMM for the whole
    /// batch — this is the micro-batching fast path.
    pub fn score_batch(&self, sets: &[&[u32]]) -> Result<Matrix, FrozenError> {
        Ok(self.induce_batch(sets)?.matmul_transb(&self.herbs))
    }

    /// Herb scores for a single symptom set.
    pub fn score_one(&self, set: &[u32]) -> Result<Vec<f32>, FrozenError> {
        Ok(self.score_batch(&[set])?.row(0).to_vec())
    }

    /// Top-`k` herb ids for one symptom set, by descending score (ties to
    /// the lower id), via heap-based partial selection.
    pub fn recommend(&self, set: &[u32], k: usize) -> Result<Vec<u32>, FrozenError> {
        Ok(partial_top_k(&self.score_one(set)?, k))
    }

    /// Top-`k` rankings for a batch, sharing one scoring GEMM.
    pub fn recommend_batch(&self, sets: &[&[u32]], k: usize) -> Result<Vec<Vec<u32>>, FrozenError> {
        let scores = self.score_batch(sets)?;
        Ok((0..scores.rows())
            .map(|r| partial_top_k(scores.row(r), k))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_frozen(with_mlp: bool) -> FrozenModel {
        // 3 symptoms, 4 herbs, d = 2, hand-picked values.
        let symptoms = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let herbs = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, -1.0, -1.0]);
        let si = with_mlp.then(|| {
            (
                Matrix::identity(2).scale(2.0),
                Matrix::from_vec(1, 2, vec![0.5, -10.0]),
            )
        });
        FrozenModel::from_parts(symptoms, herbs, si).unwrap()
    }

    #[test]
    fn mean_pooling_without_mlp() {
        let fm = tiny_frozen(false);
        let pooled = fm.induce_batch(&[&[0, 1], &[2]]).unwrap();
        assert_eq!(pooled.row(0), &[0.5, 0.5]);
        assert_eq!(pooled.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn mlp_applies_affine_and_relu() {
        let fm = tiny_frozen(true);
        // Pool of {0,1} = [0.5, 0.5]; W = 2I, b = [0.5, -10] -> [1.5, -9] -> relu.
        let induced = fm.induce_batch(&[&[0, 1]]).unwrap();
        assert_eq!(induced.row(0), &[1.5, 0.0]);
    }

    #[test]
    fn scores_are_dot_products() {
        let fm = tiny_frozen(false);
        let scores = fm.score_batch(&[&[2]]).unwrap(); // syndrome [1, 1]
        assert_eq!(scores.row(0), &[1.0, 1.0, 2.0, -2.0]);
        assert_eq!(fm.recommend(&[2], 2).unwrap(), vec![2, 0], "ties break low");
    }

    #[test]
    fn batch_matches_single() {
        let fm = tiny_frozen(true);
        let sets: Vec<&[u32]> = vec![&[0], &[0, 1], &[1, 2], &[2]];
        let batched = fm.score_batch(&sets).unwrap();
        for (i, set) in sets.iter().enumerate() {
            assert_eq!(
                batched.row(i),
                fm.score_one(set).unwrap().as_slice(),
                "row {i}"
            );
        }
    }

    #[test]
    fn pooling_is_order_insensitive() {
        let fm = tiny_frozen(true);
        let a = fm.score_one(&[0, 1, 2]).unwrap();
        let b = fm.score_one(&[2, 0, 1]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn save_load_round_trip() {
        for with_mlp in [false, true] {
            let fm = tiny_frozen(with_mlp);
            let mut buf = Vec::new();
            fm.write_to(&mut buf).unwrap();
            let loaded = FrozenModel::read_from(buf.as_slice()).unwrap();
            assert_eq!(loaded.has_si_mlp(), with_mlp);
            assert_eq!(
                loaded.score_one(&[0, 2]).unwrap(),
                fm.score_one(&[0, 2]).unwrap(),
                "with_mlp={with_mlp}"
            );
        }
    }

    #[test]
    fn rejects_non_frozen_checkpoints() {
        let mut store = ParamStore::new();
        store.add("si.w_mlp", Matrix::zeros(2, 2));
        let mut buf = Vec::new();
        checkpoint::write_store(&store, &mut buf).unwrap();
        let err = FrozenModel::read_from(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("not a frozen model"), "{err}");
    }

    #[test]
    fn rejects_bad_queries() {
        let fm = tiny_frozen(false);
        assert!(matches!(fm.score_batch(&[]), Err(FrozenError::Query(_))));
        assert!(matches!(fm.score_one(&[]), Err(FrozenError::Query(_))));
        assert!(matches!(fm.score_one(&[99]), Err(FrozenError::Query(_))));
    }

    #[test]
    fn rejects_mismatched_parts() {
        let s = Matrix::zeros(3, 2);
        let h = Matrix::zeros(4, 3);
        assert!(FrozenModel::from_parts(s, h, None).is_err());
        let s = Matrix::filled(3, 2, 0.1);
        let h = Matrix::filled(4, 2, 0.1);
        let bad_si = Some((Matrix::zeros(3, 3), Matrix::zeros(1, 2)));
        assert!(FrozenModel::from_parts(s, h, bad_si).is_err());
    }
}
