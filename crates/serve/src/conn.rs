//! Per-connection state machine for the readiness reactor.
//!
//! A [`Connection`] owns one nonblocking client socket plus the two
//! buffers the reactor drives it through: a read buffer that NDJSON
//! request lines are sliced out of without re-copying the tail more
//! than once, and a write buffer holding at most **one** pending
//! response. That one-response bound is the write-backpressure rule
//! that makes slow readers harmless: a client that pipelines requests
//! but never drains responses can pin at most one response worth of
//! memory, and the reactor's write deadline closes it if the buffered
//! response does not drain in time.
//!
//! Wire parity notes (the reactor must be byte-identical to the old
//! thread-per-connection loop):
//! - blank lines are skipped, not answered;
//! - request lines are handed to the engine with trailing whitespace
//!   (including `\r`) trimmed, exactly as `trim_end` did before;
//! - a final unterminated line at EOF is still served (the old
//!   `read_line` returned the partial line before reporting EOF);
//! - invalid UTF-8 closes the connection (the old `BufRead::read_line`
//!   errored the stream).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on buffered, not-yet-answered request bytes for one
/// connection. Publish artifacts arrive as a single base64 line, so
/// the cap is deliberately generous; a connection that manages to
/// exceed it without ever completing a line is not speaking the
/// protocol and is closed.
pub const MAX_READ_BUF: usize = 64 * 1024 * 1024;

/// One client connection owned by the reactor: socket, buffers, and
/// the in-flight flag that serializes request dispatch.
pub struct Connection {
    stream: TcpStream,
    /// The variant split plan's sticky-key fallback for requests
    /// without a `"client"` id: stable for the connection's lifetime.
    conn_key: String,
    /// Guards stale worker completions after this slab slot is reused.
    epoch: u64,
    read_buf: Vec<u8>,
    /// Prefix of `read_buf` already scanned for a newline.
    scanned: usize,
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written to the socket.
    written: usize,
    /// True between dispatching a request to a worker and queueing its
    /// response; at most one request per connection is in flight.
    in_flight: bool,
    eof: bool,
    /// When the current response first failed to flush completely; the
    /// reactor closes the connection once this exceeds its write
    /// deadline.
    stalled_since: Option<Instant>,
    /// The readiness interest currently registered with the poller
    /// (bitmask of the reactor's `EVENT_READ` / `EVENT_WRITE`).
    interest: u32,
}

impl Connection {
    /// Wraps an accepted (already nonblocking) stream.
    pub fn new(stream: TcpStream, conn_key: String, epoch: u64) -> Self {
        Self {
            stream,
            conn_key,
            epoch,
            read_buf: Vec::new(),
            scanned: 0,
            write_buf: Vec::new(),
            written: 0,
            in_flight: false,
            eof: false,
            stalled_since: None,
            interest: 0,
        }
    }

    /// The sticky per-connection key (`conn-{id}`).
    pub fn conn_key(&self) -> &str {
        &self.conn_key
    }

    /// The slab-reuse guard attached to this connection's jobs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The raw fd for poller registration.
    #[cfg(unix)]
    pub fn raw_fd(&self) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd;
        self.stream.as_raw_fd()
    }

    /// The currently registered poller interest bitmask.
    pub fn interest(&self) -> u32 {
        self.interest
    }

    /// Records the poller interest bitmask after a successful modify.
    pub fn set_interest(&mut self, interest: u32) {
        self.interest = interest;
    }

    /// Drains the socket into the read buffer until it would block,
    /// hits EOF, or the buffer reaches [`MAX_READ_BUF`]. Errors mean
    /// the peer is gone and the connection should be closed.
    pub fn on_readable(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.read_buf.len() >= MAX_READ_BUF {
                return Ok(()); // paused; `next_line` decides if this is fatal
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Extracts the next non-blank complete request line, trimmed of
    /// trailing whitespace. Returns `Ok(None)` when no complete line
    /// is buffered yet, and an error when the connection is no longer
    /// speaking the protocol (invalid UTF-8, or a single line that
    /// exceeded [`MAX_READ_BUF`]).
    pub fn next_line(&mut self) -> io::Result<Option<String>> {
        loop {
            match self.read_buf[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
            {
                Some(off) => {
                    let end = self.scanned + off;
                    let line = match std::str::from_utf8(&self.read_buf[..end]) {
                        Ok(s) => s.trim_end().to_string(),
                        Err(_) => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "request line is not valid UTF-8",
                            ))
                        }
                    };
                    self.read_buf.drain(..=end);
                    self.scanned = 0;
                    if line.trim().is_empty() {
                        continue; // blank lines are skipped, same as before
                    }
                    return Ok(Some(line));
                }
                None => {
                    self.scanned = self.read_buf.len();
                    if self.read_buf.len() >= MAX_READ_BUF {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "request line exceeds the per-connection buffer cap",
                        ));
                    }
                    // Old-loop parity: `read_line` returned a final
                    // unterminated line before reporting EOF.
                    if self.eof && !self.read_buf.is_empty() {
                        let line = match std::str::from_utf8(&self.read_buf) {
                            Ok(s) => s.trim_end().to_string(),
                            Err(_) => {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    "request line is not valid UTF-8",
                                ))
                            }
                        };
                        self.read_buf.clear();
                        self.scanned = 0;
                        if !line.trim().is_empty() {
                            return Ok(Some(line));
                        }
                    }
                    return Ok(None);
                }
            }
        }
    }

    /// Marks a request as dispatched to a worker; no further lines are
    /// handed out until [`Connection::queue_response`] clears it.
    pub fn begin_request(&mut self) {
        self.in_flight = true;
    }

    /// Whether a request is currently out with a worker.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// Buffers a response line (newline appended) and clears the
    /// in-flight flag. The reactor's dispatch gating guarantees the
    /// write buffer is empty when this is called.
    pub fn queue_response(&mut self, response: &str) {
        debug_assert!(self.write_buf.is_empty());
        self.write_buf.extend_from_slice(response.as_bytes());
        self.write_buf.push(b'\n');
        self.written = 0;
        self.in_flight = false;
    }

    /// Writes buffered response bytes until done or the socket would
    /// block. Returns `Ok(true)` when the buffer fully drained. A
    /// partial flush starts (or keeps) the stall clock that backs the
    /// reactor's write deadline.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket closed mid-response",
                    ))
                }
                Ok(n) => self.written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
            self.stalled_since = None;
            Ok(true)
        } else {
            if self.stalled_since.is_none() {
                self.stalled_since = Some(Instant::now());
            }
            Ok(false)
        }
    }

    /// Whether response bytes are waiting on the socket to accept them.
    pub fn wants_write(&self) -> bool {
        self.written < self.write_buf.len()
    }

    /// Whether the read side is paused at the buffer cap.
    pub fn read_saturated(&self) -> bool {
        self.read_buf.len() >= MAX_READ_BUF
    }

    /// Whether the peer half-closed (no more request bytes coming).
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Idle means safe to close immediately during a drain: no request
    /// out with a worker and no response bytes left to deliver.
    pub fn is_idle(&self) -> bool {
        !self.in_flight && self.write_buf.is_empty()
    }

    /// How long the current response has been stuck behind a
    /// non-reading peer (zero when writes are flowing).
    pub fn stalled_for(&self, now: Instant) -> Duration {
        self.stalled_since
            .map(|t| now.saturating_duration_since(t))
            .unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn slices_lines_and_skips_blanks() {
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, "conn-0".into(), 1);
        client
            .write_all(b"{\"a\":1}\r\n\n  \n{\"b\":2}\n{\"part")
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        conn.on_readable().unwrap();
        assert_eq!(conn.next_line().unwrap().as_deref(), Some("{\"a\":1}"));
        assert_eq!(conn.next_line().unwrap().as_deref(), Some("{\"b\":2}"));
        assert_eq!(conn.next_line().unwrap(), None, "partial line held back");
        // EOF flushes the unterminated tail, like read_line did.
        client.write_all(b"ial\"}").unwrap();
        drop(client);
        std::thread::sleep(Duration::from_millis(50));
        conn.on_readable().unwrap();
        assert!(conn.is_eof());
        assert_eq!(conn.next_line().unwrap().as_deref(), Some("{\"partial\"}"));
        assert_eq!(conn.next_line().unwrap(), None);
    }

    #[test]
    fn invalid_utf8_is_fatal() {
        let (mut client, server) = pair();
        let mut conn = Connection::new(server, "conn-0".into(), 1);
        client.write_all(&[0xFF, 0xFE, b'\n']).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        conn.on_readable().unwrap();
        assert!(conn.next_line().is_err());
    }

    #[test]
    fn one_response_backpressure_and_stall_clock() {
        let (_client, server) = pair();
        let mut conn = Connection::new(server, "conn-0".into(), 1);
        conn.begin_request();
        assert!(conn.in_flight());
        conn.queue_response("{\"ok\":true}");
        assert!(!conn.in_flight());
        assert!(conn.wants_write());
        // A tiny response flushes straight into the socket buffer.
        assert!(conn.flush().unwrap());
        assert!(conn.is_idle());
        assert_eq!(conn.stalled_for(Instant::now()), Duration::ZERO);
    }
}
