//! Data-integrity primitives shared across the stack.
//!
//! Both durable formats grown in PR 7 — the ingest WAL's per-record
//! framing (`smgcn-online`) and the publish artifact's trailer
//! ([`crate::artifact`]) — checksum their payloads with the same CRC32
//! so a bit flip anywhere between "accepted" and "served" is detected
//! instead of decoded into garbage embeddings. The implementation now
//! lives in `smgcn-obs` (one level lower in the dependency graph, so
//! the metrics history store can share it); this module re-exports it
//! under the path the WAL and artifact formats grew up against.

pub use smgcn_obs::integrity::{crc32, crc32_update};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_check_value() {
        // The canonical CRC-32/ISO-HDLC check: crc32("123456789").
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = 0;
        for chunk in data.chunks(7) {
            c = crc32_update(c, chunk);
        }
        assert_eq!(c, crc32(data));
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data: Vec<u8> = (0..64u8).collect();
        let good = crc32(&data);
        for i in 0..data.len() {
            let mut bad = data.clone();
            bad[i] ^= 0x01;
            assert_ne!(crc32(&bad), good, "flip at byte {i} must change the crc");
        }
    }
}
