//! Data-integrity primitives shared across the stack.
//!
//! Both durable formats grown in PR 7 — the ingest WAL's per-record
//! framing (`smgcn-online`) and the publish artifact's trailer
//! ([`crate::artifact`]) — checksum their payloads with the same CRC32
//! so a bit flip anywhere between "accepted" and "served" is detected
//! instead of decoded into garbage embeddings. One implementation lives
//! here, at the bottom of the dependency graph, so the two formats can
//! never disagree on the polynomial.

/// CRC-32/ISO-HDLC (the IEEE 802.3 polynomial, reflected form
/// `0xEDB88320`) — the same parameters as zlib/PNG/Ethernet, checkable
/// with any external tool.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0, bytes)
}

/// Streaming form: feed chunks through repeated calls, starting from 0.
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_check_value() {
        // The canonical CRC-32/ISO-HDLC check: crc32("123456789").
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = 0;
        for chunk in data.chunks(7) {
            c = crc32_update(c, chunk);
        }
        assert_eq!(c, crc32(data));
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data: Vec<u8> = (0..64u8).collect();
        let good = crc32(&data);
        for i in 0..data.len() {
            let mut bad = data.clone();
            bad[i] ^= 0x01;
            assert_ne!(crc32(&bad), good, "flip at byte {i} must change the crc");
        }
    }
}
