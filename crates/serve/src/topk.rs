//! Partial top-k selection.
//!
//! The paper's greedy inference (§IV-E) ranks all `H` herbs by score; the
//! training-side helper `smgcn_core::top_k_indices` does a full
//! `O(H log H)` sort. On the serving path `k << H`, so this module keeps
//! a `k`-element min-heap instead: `O(H log k)` with no allocation
//! proportional to `H`. The ordering contract matches `top_k_indices`
//! exactly — descending score, ties broken by the lower index — so the
//! frozen path returns bit-identical rankings.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A candidate herb during selection. The `Ord` implementation is
/// inverted ("worse is greater") so a max-[`BinaryHeap`] keeps the worst
/// retained candidate at the top, ready to be displaced.
#[derive(Clone, Copy, Debug)]
struct Worst {
    score: f32,
    idx: u32,
}

impl Worst {
    /// True when `self` ranks strictly ahead of `other` in the final
    /// ordering (higher score, ties to the lower index).
    fn beats(&self, other: &Worst) -> bool {
        match self
            .score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
        {
            Ordering::Greater => true,
            Ordering::Less => false,
            Ordering::Equal => self.idx < other.idx,
        }
    }
}

impl PartialEq for Worst {
    fn eq(&self, other: &Self) -> bool {
        !self.beats(other) && !other.beats(self)
    }
}

impl Eq for Worst {}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: the heap's maximum is the worst-ranked candidate.
        if self.beats(other) {
            Ordering::Less
        } else if other.beats(self) {
            Ordering::Greater
        } else {
            Ordering::Equal
        }
    }
}

/// Indices of the `k` largest values, descending (ties by lower index),
/// via heap-based partial selection rather than a full sort.
///
/// Returns the same ranking as `smgcn_core::top_k_indices` for every
/// input, including `k >= len` and NaN scores (NaN compares equal, as in
/// the full-sort version).
pub fn partial_top_k(scores: &[f32], k: usize) -> Vec<u32> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
    for (i, &score) in scores.iter().enumerate() {
        let cand = Worst {
            score,
            idx: i as u32,
        };
        if heap.len() < k {
            heap.push(cand);
        } else if cand.beats(heap.peek().expect("heap is non-empty at capacity")) {
            heap.pop();
            heap.push(cand);
        }
    }
    let mut kept = heap.into_vec();
    kept.sort_unstable(); // "less" = better, so ascending = best-first
    kept.into_iter().map(|c| c.idx).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference ordering (mirror of `smgcn_core::top_k_indices`).
    fn full_sort_top_k(scores: &[f32], k: usize) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
        idx.sort_unstable_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap_or(Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }

    #[test]
    fn basic_ordering() {
        assert_eq!(partial_top_k(&[0.1, 0.9, 0.5], 2), vec![1, 2]);
        assert_eq!(
            partial_top_k(&[1.0, 1.0], 2),
            vec![0, 1],
            "ties break by index"
        );
        assert_eq!(
            partial_top_k(&[0.3], 5),
            vec![0],
            "k beyond length truncates"
        );
        assert!(partial_top_k(&[], 3).is_empty());
        assert!(partial_top_k(&[1.0, 2.0], 0).is_empty());
    }

    #[test]
    fn matches_full_sort_on_random_inputs() {
        // Deterministic pseudo-random scores without an RNG dependency.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        for n in [1usize, 2, 7, 50, 753] {
            let scores: Vec<f32> = (0..n).map(|_| next() * 10.0 - 5.0).collect();
            for k in [1usize, 2, 5, 20, n, n + 3] {
                assert_eq!(
                    partial_top_k(&scores, k),
                    full_sort_top_k(&scores, k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn matches_full_sort_with_heavy_ties() {
        let scores = [1.0f32, 0.5, 1.0, 0.5, 1.0, 0.5, 0.25, 1.0];
        for k in 1..=scores.len() {
            assert_eq!(
                partial_top_k(&scores, k),
                full_sort_top_k(&scores, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn nan_scores_do_not_panic() {
        // NaN breaks the total order, so the exact ranking is unspecified
        // (as in the full-sort helper) — but selection must stay a
        // well-formed permutation of the requested size.
        let scores = [f32::NAN, 1.0, 0.5, f32::NAN];
        let mut got = partial_top_k(&scores, 4);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
