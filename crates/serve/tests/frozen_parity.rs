//! Frozen-path parity: the serving-side scorer must reproduce the full
//! `Recommender` forward pass, because freezing only *reorders* the
//! computation (materialize embeddings once, then score) — it never
//! approximates it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smgcn_core::prelude::*;
use smgcn_data::{GeneratorConfig, SyndromeModel};
use smgcn_graph::{GraphOperators, SynergyThresholds};
use smgcn_serve::cache::QueryKey;
use smgcn_serve::{FrozenModel, LruCache};

/// Smoke-scale-ish corpus, graphs and a (briefly) trained model.
fn trained_model() -> (smgcn_data::Corpus, Recommender) {
    let corpus = SyndromeModel::new(GeneratorConfig::tiny_scale()).generate();
    let ops = GraphOperators::from_records(
        corpus.records(),
        corpus.n_symptoms(),
        corpus.n_herbs(),
        SynergyThresholds { x_s: 1, x_h: 1 },
    );
    let config = ModelConfig {
        embedding_dim: 16,
        layer_dims: vec![16, 24],
        ..ModelConfig::smgcn()
    };
    let mut model = Recommender::smgcn(&ops, &config, 42);
    // A couple of epochs so the parameters are not just their init values.
    let train_cfg = TrainConfig {
        epochs: 2,
        batch_size: 64,
        ..TrainConfig::smoke()
    };
    train(&mut model, &corpus, &train_cfg);
    (corpus, model)
}

fn query_sets(corpus: &smgcn_data::Corpus, n: usize) -> Vec<Vec<u32>> {
    corpus
        .prescriptions()
        .iter()
        .take(n)
        .map(|p| p.symptoms().to_vec())
        .collect()
}

#[test]
fn frozen_scores_match_full_forward_within_1e6() {
    let (corpus, model) = trained_model();
    let frozen = FrozenModel::from_recommender(&model);
    assert_eq!(frozen.n_symptoms(), model.n_symptoms());
    assert_eq!(frozen.n_herbs(), model.n_herbs());
    assert!(frozen.has_si_mlp(), "full SMGCN freezes with its SI head");

    let sets = query_sets(&corpus, 64);
    let refs: Vec<&[u32]> = sets.iter().map(Vec::as_slice).collect();
    let full = model.predict(&refs);
    let fast = frozen.score_batch(&refs).expect("valid query sets");
    assert_eq!(full.shape(), fast.shape());
    let max_diff = full.max_abs_diff(&fast);
    assert!(
        max_diff <= 1e-6,
        "frozen path drifted from full forward: {max_diff:e}"
    );
}

#[test]
fn frozen_rankings_match_full_model_rankings() {
    let (corpus, model) = trained_model();
    let frozen = FrozenModel::from_recommender(&model);
    for set in query_sets(&corpus, 32) {
        for k in [1usize, 5, 10] {
            assert_eq!(
                frozen.recommend(&set, k).expect("valid set"),
                model.recommend(&set, k),
                "set {set:?} k {k}"
            );
        }
    }
}

#[test]
fn parity_survives_save_load_round_trip() {
    let (corpus, model) = trained_model();
    let frozen = FrozenModel::from_recommender(&model);
    let mut buf = Vec::new();
    frozen.write_to(&mut buf).unwrap();
    let loaded = FrozenModel::read_from(buf.as_slice()).unwrap();
    let sets = query_sets(&corpus, 16);
    let refs: Vec<&[u32]> = sets.iter().map(Vec::as_slice).collect();
    let full = model.predict(&refs);
    let reloaded = loaded.score_batch(&refs).unwrap();
    assert!(full.max_abs_diff(&reloaded) <= 1e-6);
}

#[test]
fn ablated_model_without_mlp_freezes_and_matches() {
    let corpus = SyndromeModel::new(GeneratorConfig::tiny_scale()).generate();
    let ops = GraphOperators::from_records(
        corpus.records(),
        corpus.n_symptoms(),
        corpus.n_herbs(),
        SynergyThresholds { x_s: 1, x_h: 1 },
    );
    let config = ModelConfig {
        embedding_dim: 8,
        layer_dims: vec![8],
        use_si_mlp: false,
        use_sge: false,
        ..ModelConfig::smgcn()
    };
    let model = Recommender::smgcn(&ops, &config, 7);
    let frozen = FrozenModel::from_recommender(&model);
    assert!(
        !frozen.has_si_mlp(),
        "average pooling freezes without a head"
    );
    let sets = query_sets(&corpus, 8);
    let refs: Vec<&[u32]> = sets.iter().map(Vec::as_slice).collect();
    assert!(
        model
            .predict(&refs)
            .max_abs_diff(&frozen.score_batch(&refs).unwrap())
            <= 1e-6
    );
}

/// LRU property: a cache hit returns the identical ranking, and the cache
/// never exceeds its capacity however many distinct queries stream by.
#[test]
fn lru_cached_rankings_are_identical_and_bounded() {
    let (corpus, model) = trained_model();
    let frozen = FrozenModel::from_recommender(&model);
    let capacity = 8;
    let mut cache: LruCache<QueryKey, Vec<u32>> = LruCache::new(capacity);
    let mut rng = StdRng::seed_from_u64(99);
    let sets = query_sets(&corpus, 40);
    for step in 0..400 {
        // Zipf-ish revisiting: favor a few hot sets, occasionally permute
        // the symptom order (must hit the same entry).
        let idx = if rng.gen_bool(0.7) {
            rng.gen_range(0..5)
        } else {
            rng.gen_range(0..sets.len())
        };
        let mut query = sets[idx].clone();
        if rng.gen_bool(0.5) {
            query.reverse();
        }
        let k = 5;
        let key = QueryKey::new(&query, k);
        let fresh = frozen.recommend(&query, k).unwrap();
        match cache.get(&key) {
            Some(hit) => {
                assert_eq!(
                    hit, &fresh,
                    "step {step}: cache hit diverged from recompute"
                );
            }
            None => {
                cache.insert(key, fresh);
            }
        }
        assert!(
            cache.len() <= capacity,
            "step {step}: eviction failed to bound size"
        );
    }
    let (hits, misses) = cache.stats();
    assert!(
        hits > 0 && misses > 0,
        "workload should exercise both paths"
    );
}
