//! Hot model swap under live traffic.
//!
//! Hammers `recommend` from concurrent clients while the main thread
//! publishes two new model generations into the server's [`ModelSlot`],
//! and asserts the two invariants the online pipeline depends on:
//!
//! 1. **zero dropped/failed requests** across the swaps, and
//! 2. **no generation mixing**: every response's ranking (and its herb
//!    names) matches exactly the generation the response claims, and
//! 3. post-swap behaviour equals a fresh server started on the final
//!    model.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use smgcn_serve::json::{self, Json};
use smgcn_serve::{FrozenModel, ModelSlot, Server, ServerConfig, ServingVocab};
use smgcn_tensor::Matrix;

const N_SYMPTOMS: usize = 5;
const K: usize = 3;

/// Deterministic model per generation; generation 2 also grows the herb
/// vocabulary (7 -> 8), as a refresh over an appended corpus would.
fn model_for(generation: u64) -> FrozenModel {
    let n_herbs = if generation >= 2 { 8 } else { 7 };
    let g = generation as usize + 1;
    let symptoms = Matrix::from_fn(N_SYMPTOMS, 3, |r, c| ((r * 3 + c * g + g) % 5) as f32 - 1.7);
    let herbs = Matrix::from_fn(n_herbs, 3, |r, c| ((r * (2 + g) + c * 5) % 6) as f32 - 2.3);
    FrozenModel::from_parts(symptoms, herbs, None).unwrap()
}

/// Herb names carry the generation so a mixed response is detectable by
/// name alone.
fn vocab_for(generation: u64) -> ServingVocab {
    let n_herbs = if generation >= 2 { 8 } else { 7 };
    ServingVocab::new(
        (0..N_SYMPTOMS).map(|i| format!("s{i}")).collect(),
        (0..n_herbs)
            .map(|i| format!("g{generation}-h{i}"))
            .collect(),
    )
}

/// All 1- and 2-element query sets over the symptom vocabulary.
fn query_space() -> Vec<Vec<u32>> {
    let mut sets = Vec::new();
    for a in 0..N_SYMPTOMS as u32 {
        sets.push(vec![a]);
        for b in (a + 1)..N_SYMPTOMS as u32 {
            sets.push(vec![a, b]);
        }
    }
    sets
}

fn expected_rankings(generations: u64) -> HashMap<(u64, Vec<u32>), Vec<u32>> {
    let mut expected = HashMap::new();
    for g in 0..generations {
        let model = model_for(g);
        for set in query_space() {
            expected.insert((g, set.clone()), model.recommend(&set, K).unwrap());
        }
    }
    expected
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream),
        }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        json::parse(response.trim()).unwrap()
    }

    fn recommend(&mut self, set: &[u32]) -> Json {
        let ids: Vec<String> = set.iter().map(u32::to_string).collect();
        self.request(&format!(
            r#"{{"symptom_ids": [{}], "k": {K}}}"#,
            ids.join(", ")
        ))
    }
}

/// Asserts one response is internally consistent with exactly one
/// generation, returning that generation.
fn check_response(resp: &Json, set: &[u32], expected: &HashMap<(u64, Vec<u32>), Vec<u32>>) -> u64 {
    assert!(
        resp.get("error").is_none(),
        "request {set:?} failed: {resp}"
    );
    let generation = resp.get("generation").and_then(Json::as_num).unwrap() as u64;
    let ids: Vec<u32> = resp
        .get("herb_ids")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|v| v.as_num().unwrap() as u32)
        .collect();
    let want = expected
        .get(&(generation, set.to_vec()))
        .unwrap_or_else(|| panic!("unknown generation {generation}"));
    assert_eq!(
        &ids, want,
        "set {set:?}: ranking does not match generation {generation}"
    );
    // Herb names must come from the same generation's vocabulary.
    let names: Vec<&str> = resp
        .get("herbs")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap())
        .collect();
    for (name, &id) in names.iter().zip(&ids) {
        assert_eq!(
            *name,
            format!("g{generation}-h{id}"),
            "set {set:?}: herb name from a different generation"
        );
    }
    generation
}

#[test]
fn hammer_recommend_across_two_hot_swaps() {
    let expected = Arc::new(expected_rankings(3));
    let slot = Arc::new(ModelSlot::new(model_for(0), vocab_for(0)));
    let server = Server::bind_slot(
        "127.0.0.1:0",
        Arc::clone(&slot),
        ServerConfig {
            max_connections: 32,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let stop = server.stop_handle();
    let server_handle = std::thread::spawn(move || server.run().unwrap());

    let total = Arc::new(AtomicU64::new(0));
    let gen2_live = Arc::new(AtomicBool::new(false));
    let space = query_space();
    let mut clients = Vec::new();
    for t in 0..6u64 {
        let expected = Arc::clone(&expected);
        let total = Arc::clone(&total);
        let gen2_live = Arc::clone(&gen2_live);
        let space = space.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr);
            let mut seen = [0u64; 3];
            let mut last = 0u64;
            for i in 0..400u64 {
                // Client 0 holds its last ten requests until generation
                // 2 is published, so the final generation provably
                // serves live hammer traffic no matter how the
                // scheduler staggers the other clients against the
                // publishing thread. Everyone else races freely.
                if t == 0 && i == 390 {
                    while !gen2_live.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }
                let set = &space[((t * 131 + i * 7) % space.len() as u64) as usize];
                let resp = client.recommend(set);
                let generation = check_response(&resp, set, &expected);
                assert!(
                    generation >= last,
                    "client {t}: generation went backwards {last} -> {generation}"
                );
                last = generation;
                seen[generation as usize] += 1;
                total.fetch_add(1, Ordering::Relaxed);
            }
            seen
        }));
    }

    // Publish generation 1 and 2 while the clients hammer away, gated
    // on observed traffic: at least 300 requests land before the first
    // swap (pinning generation 0), the second swap happens mid-run, and
    // client 0's held-back tail starts only after generation 2 is live
    // (and therefore pins it).
    let wait_for = |n: u64| {
        while total.load(Ordering::Relaxed) < n {
            std::thread::yield_now();
        }
    };
    wait_for(300);
    assert_eq!(slot.publish(model_for(1), vocab_for(1)), 1);
    wait_for(1200);
    assert_eq!(slot.publish(model_for(2), vocab_for(2)), 2);
    gen2_live.store(true, Ordering::Release);

    let mut seen = [0u64; 3];
    for c in clients {
        let s = c.join().unwrap();
        for (acc, v) in seen.iter_mut().zip(s) {
            *acc += v;
        }
    }
    assert_eq!(
        total.load(Ordering::Relaxed),
        6 * 400,
        "every request must be answered"
    );
    assert_eq!(seen.iter().sum::<u64>(), 6 * 400);
    assert!(seen[0] > 0, "some requests must land before the first swap");
    assert!(seen[2] > 0, "the final generation must serve live traffic");

    // Whatever the thread timing, the server has now fully cut over:
    // fresh queries come from generation 2 and match a fresh server
    // started directly on the final model.
    let fresh_server = Server::bind(
        "127.0.0.1:0",
        model_for(2),
        vocab_for(2),
        ServerConfig::default(),
    )
    .unwrap();
    let fresh_addr = fresh_server.local_addr().unwrap();
    let fresh_stop = fresh_server.stop_handle();
    let fresh_handle = std::thread::spawn(move || fresh_server.run().unwrap());

    let mut swapped = Client::connect(addr);
    let mut fresh = Client::connect(fresh_addr);
    for set in &space {
        let a = swapped.recommend(set);
        assert_eq!(check_response(&a, set, &expected), 2);
        let b = fresh.recommend(set);
        assert_eq!(
            a.get("herb_ids"),
            b.get("herb_ids"),
            "set {set:?}: swapped server must match a fresh server on the new model"
        );
        assert_eq!(a.get("herbs"), b.get("herbs"));
    }

    // The swapped server's stats reflect the final generation and the
    // lazily-invalidated cache (stale lookups happened across the swaps).
    let stats = swapped.request(r#"{"op": "stats"}"#);
    assert_eq!(stats.get("generation").and_then(Json::as_num), Some(2.0));
    assert_eq!(
        stats
            .get("model")
            .and_then(|m| m.get("herbs"))
            .and_then(Json::as_num),
        Some(8.0),
        "generation 2 grew the herb vocabulary"
    );

    stop.stop();
    server_handle.join().unwrap();
    fresh_stop.stop();
    fresh_handle.join().unwrap();
}
