//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use smgcn_tensor::{CsrMatrix, Matrix};

/// Strategy: a dense matrix with bounded shape and entries.
fn matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: a pair (dense, conformable dense) for products.
fn matmul_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0f32..5.0, m * k)
            .prop_map(move |d| Matrix::from_vec(m, k, d));
        let b = proptest::collection::vec(-5.0f32..5.0, k * n)
            .prop_map(move |d| Matrix::from_vec(k, n, d));
        (a, b)
    })
}

/// Strategy: sparse triplets within a shape.
fn csr(max_dim: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..=max_dim, 2..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r as u32, 0..c as u32, -4.0f32..4.0), 0..(r * c).min(24))
            .prop_map(move |t| CsrMatrix::from_triplets(r, c, &t))
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(a in matrix(8)) {
        prop_assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn transpose_swaps_entries(a in matrix(8)) {
        let t = a.transpose();
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                prop_assert_eq!(a.get(r, c), t.get(c, r));
            }
        }
    }

    #[test]
    fn add_commutes(a in matrix(8), seed in 0u64..1000) {
        // Build b with the same shape as a.
        let mut rng = smgcn_tensor::init::seeded_rng(seed);
        use rand::Rng;
        let b = Matrix::from_fn(a.rows(), a.cols(), |_, _| rng.gen_range(-10.0..10.0));
        prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-5));
    }

    #[test]
    fn matmul_distributes_over_add((a, b) in matmul_pair(6), seed in 0u64..1000) {
        let mut rng = smgcn_tensor::init::seeded_rng(seed);
        use rand::Rng;
        let c = Matrix::from_fn(b.rows(), b.cols(), |_, _| rng.gen_range(-5.0..5.0));
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-2), "max diff {}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn matmul_transpose_identity((a, b) in matmul_pair(6)) {
        // (A B)^T = B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_transb_consistent((a, b) in matmul_pair(6)) {
        // a @ b == a @ (b^T)^T via the transb kernel.
        let bt = b.transpose();
        prop_assert!(a.matmul_transb(&bt).approx_eq(&a.matmul(&b), 1e-3));
    }

    #[test]
    fn scale_is_linear(a in matrix(8), alpha in -4.0f32..4.0, beta in -4.0f32..4.0) {
        let lhs = a.scale(alpha + beta);
        let rhs = a.scale(alpha).add(&a.scale(beta));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn concat_split_roundtrip(a in matrix(6), seed in 0u64..1000) {
        let mut rng = smgcn_tensor::init::seeded_rng(seed);
        use rand::Rng;
        let b = Matrix::from_fn(a.rows(), 1 + (seed as usize % 5), |_, _| rng.gen_range(-1.0..1.0));
        let cat = a.concat_cols(&b);
        let (l, r) = cat.split_cols(a.cols());
        prop_assert!(l.approx_eq(&a, 0.0));
        prop_assert!(r.approx_eq(&b, 0.0));
    }

    #[test]
    fn spmm_matches_dense(s in csr(8), seed in 0u64..1000) {
        let mut rng = smgcn_tensor::init::seeded_rng(seed);
        use rand::Rng;
        let d = Matrix::from_fn(s.cols(), 3, |_, _| rng.gen_range(-2.0..2.0));
        let sparse = s.spmm(&d);
        let dense = s.to_dense().matmul(&d);
        prop_assert!(sparse.approx_eq(&dense, 1e-3));
    }

    #[test]
    fn csr_transpose_involution(s in csr(8)) {
        prop_assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn csr_transpose_preserves_nnz(s in csr(8)) {
        prop_assert_eq!(s.transpose().nnz(), s.nnz());
    }

    #[test]
    fn row_normalized_rows_sum_to_one_or_zero(s in csr(8)) {
        // Only meaningful when values are nonnegative (adjacency-like).
        let abs = CsrMatrix::from_triplets(
            s.rows(),
            s.cols(),
            &s.iter().map(|(r, c, v)| (r, c, v.abs())).collect::<Vec<_>>(),
        );
        let n = abs.row_normalized();
        for r in 0..n.rows() {
            let (_, vals) = n.row(r);
            let sum: f32 = vals.iter().sum();
            let orig_sum: f32 = abs.row(r).1.iter().sum();
            if orig_sum > 1e-6 {
                prop_assert!((sum - 1.0).abs() < 1e-4, "row {} sums to {}", r, sum);
            }
        }
    }

    #[test]
    fn gather_rows_matches_manual(a in matrix(8), seed in 0u64..1000) {
        let mut rng = smgcn_tensor::init::seeded_rng(seed);
        use rand::Rng;
        let indices: Vec<u32> =
            (0..5).map(|_| rng.gen_range(0..a.rows() as u32)).collect();
        let g = a.gather_rows(&indices);
        for (i, &idx) in indices.iter().enumerate() {
            prop_assert_eq!(g.row(i), a.row(idx as usize));
        }
    }

    #[test]
    fn frobenius_norm_scales(a in matrix(8), alpha in -3.0f32..3.0) {
        let lhs = a.scale(alpha).frobenius_norm();
        let rhs = alpha.abs() * a.frobenius_norm();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * rhs.max(1.0));
    }
}
