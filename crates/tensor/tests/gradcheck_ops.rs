//! Certifies every differentiable op on the tape against central finite
//! differences. Each test builds a small composite loss through one op and
//! compares `Tape::backward` with `finite_diff_grad`.

use std::sync::Arc;

use smgcn_tensor::gradcheck::{compare, finite_diff_grad};
use smgcn_tensor::init::seeded_rng;
use smgcn_tensor::prelude::*;

const EPS: f32 = 1e-3;
const TOL: f32 = 3e-3;

/// Runs gradcheck for every parameter of a model whose loss is produced by
/// `build`. `build` must be deterministic in the store contents.
fn check_all(store: &mut ParamStore, build: impl Fn(&ParamStore, &mut Tape) -> Var) {
    // Analytic gradients.
    let grads = {
        let tape_store = store.clone();
        let mut tape = Tape::new(&tape_store);
        let loss = build(&tape_store, &mut tape);
        tape.backward(loss)
    };
    let ids: Vec<ParamId> = store.iter().map(|(id, _, _)| id).collect();
    for id in ids {
        let numeric = finite_diff_grad(store, id, EPS, |s| {
            let mut tape = Tape::new(s);
            let loss = build(s, &mut tape);
            tape.value(loss).get(0, 0)
        });
        let analytic = grads
            .get(id)
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(numeric.rows(), numeric.cols()));
        let report = compare(&analytic, &numeric);
        assert!(
            report.passes(TOL),
            "gradient mismatch for param {}: {report:?}",
            store.name(id)
        );
    }
}

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = seeded_rng(seed);
    xavier_uniform(rows, cols, &mut rng)
}

#[test]
fn gradcheck_matmul() {
    let mut store = ParamStore::new();
    store.add("a", rand_matrix(3, 4, 1));
    store.add("b", rand_matrix(4, 2, 2));
    check_all(&mut store, |s, tape| {
        let (a, b) = (s.iter().next().unwrap().0, s.iter().nth(1).unwrap().0);
        let va = tape.param(a);
        let vb = tape.param(b);
        let p = tape.matmul(va, vb);
        tape.sum_squares(p)
    });
}

#[test]
fn gradcheck_matmul_transb() {
    let mut store = ParamStore::new();
    store.add("a", rand_matrix(3, 4, 3));
    store.add("b", rand_matrix(5, 4, 4));
    check_all(&mut store, |s, tape| {
        let (a, b) = (s.iter().next().unwrap().0, s.iter().nth(1).unwrap().0);
        let va = tape.param(a);
        let vb = tape.param(b);
        let p = tape.matmul_transb(va, vb);
        tape.sum_squares(p)
    });
}

#[test]
fn gradcheck_add_sub_scale_affine() {
    let mut store = ParamStore::new();
    store.add("a", rand_matrix(2, 3, 5));
    store.add("b", rand_matrix(2, 3, 6));
    check_all(&mut store, |s, tape| {
        let (a, b) = (s.iter().next().unwrap().0, s.iter().nth(1).unwrap().0);
        let va = tape.param(a);
        let vb = tape.param(b);
        let sum = tape.add(va, vb);
        let diff = tape.sub(sum, vb);
        let scaled = tape.scale(diff, 1.7);
        let aff = tape.affine(scaled, -0.5, 0.25);
        tape.sum_squares(aff)
    });
}

#[test]
fn gradcheck_add_bias() {
    let mut store = ParamStore::new();
    store.add("x", rand_matrix(4, 3, 7));
    store.add("bias", rand_matrix(1, 3, 8));
    check_all(&mut store, |s, tape| {
        let (x, b) = (s.iter().next().unwrap().0, s.iter().nth(1).unwrap().0);
        let vx = tape.param(x);
        let vb = tape.param(b);
        let y = tape.add_bias(vx, vb);
        tape.sum_squares(y)
    });
}

#[test]
fn gradcheck_hadamard() {
    let mut store = ParamStore::new();
    store.add("a", rand_matrix(3, 3, 9));
    store.add("b", rand_matrix(3, 3, 10));
    check_all(&mut store, |s, tape| {
        let (a, b) = (s.iter().next().unwrap().0, s.iter().nth(1).unwrap().0);
        let va = tape.param(a);
        let vb = tape.param(b);
        let h = tape.hadamard(va, vb);
        tape.sum_squares(h)
    });
}

#[test]
fn gradcheck_scale_rows() {
    let mut store = ParamStore::new();
    store.add("x", rand_matrix(4, 3, 11));
    store.add("s", rand_matrix(4, 1, 12));
    check_all(&mut store, |s, tape| {
        let (x, sc) = (s.iter().next().unwrap().0, s.iter().nth(1).unwrap().0);
        let vx = tape.param(x);
        let vs = tape.param(sc);
        let y = tape.scale_rows(vx, vs);
        tape.sum_squares(y)
    });
}

#[test]
fn gradcheck_tanh_sigmoid() {
    let mut store = ParamStore::new();
    store.add("x", rand_matrix(3, 4, 13));
    check_all(&mut store, |s, tape| {
        let x = s.iter().next().unwrap().0;
        let vx = tape.param(x);
        let t = tape.tanh(vx);
        let sg = tape.sigmoid(t);
        tape.sum_squares(sg)
    });
}

#[test]
fn gradcheck_leaky_relu() {
    // Shift entries away from 0 so finite differences do not straddle the kink.
    let mut store = ParamStore::new();
    let base = rand_matrix(3, 4, 14).map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
    store.add("x", base);
    check_all(&mut store, |s, tape| {
        let x = s.iter().next().unwrap().0;
        let vx = tape.param(x);
        let y = tape.leaky_relu(vx, 0.2);
        tape.sum_squares(y)
    });
}

#[test]
fn gradcheck_relu() {
    let mut store = ParamStore::new();
    let base = rand_matrix(3, 4, 15).map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
    store.add("x", base);
    check_all(&mut store, |s, tape| {
        let x = s.iter().next().unwrap().0;
        let vx = tape.param(x);
        let y = tape.relu(vx);
        tape.sum_squares(y)
    });
}

#[test]
fn gradcheck_concat_cols() {
    let mut store = ParamStore::new();
    store.add("a", rand_matrix(3, 2, 16));
    store.add("b", rand_matrix(3, 3, 17));
    check_all(&mut store, |s, tape| {
        let (a, b) = (s.iter().next().unwrap().0, s.iter().nth(1).unwrap().0);
        let va = tape.param(a);
        let vb = tape.param(b);
        let cat = tape.concat_cols(va, vb);
        let t = tape.tanh(cat);
        tape.sum_squares(t)
    });
}

#[test]
fn gradcheck_spmm() {
    let adj = CsrMatrix::from_triplets(
        4,
        3,
        &[
            (0, 0, 1.0),
            (0, 2, 0.5),
            (1, 1, 1.0),
            (2, 0, 2.0),
            (3, 2, -1.0),
        ],
    );
    let shared = SharedCsr::new(adj);
    let mut store = ParamStore::new();
    store.add("x", rand_matrix(3, 2, 18));
    check_all(&mut store, move |s, tape| {
        let x = s.iter().next().unwrap().0;
        let vx = tape.param(x);
        let y = tape.spmm(&shared, vx);
        tape.sum_squares(y)
    });
}

#[test]
fn gradcheck_gather_rows() {
    let mut store = ParamStore::new();
    store.add("x", rand_matrix(5, 3, 19));
    let indices = Arc::new(vec![0u32, 2, 2, 4]);
    check_all(&mut store, move |s, tape| {
        let x = s.iter().next().unwrap().0;
        let vx = tape.param(x);
        let g = tape.gather_rows(vx, indices.clone());
        tape.sum_squares(g)
    });
}

#[test]
fn gradcheck_dropout_mask() {
    let mut store = ParamStore::new();
    store.add("x", rand_matrix(3, 4, 20));
    let mask = {
        let mut rng = seeded_rng(21);
        use rand::Rng;
        Arc::new(Matrix::from_fn(3, 4, |_, _| {
            if rng.gen::<f32>() < 0.5 {
                2.0
            } else {
                0.0
            }
        }))
    };
    check_all(&mut store, move |s, tape| {
        let x = s.iter().next().unwrap().0;
        let vx = tape.param(x);
        let y = tape.dropout_with_mask(vx, mask.clone());
        tape.sum_squares(y)
    });
}

#[test]
fn gradcheck_weighted_mse() {
    let mut store = ParamStore::new();
    store.add("pred", rand_matrix(4, 5, 22));
    let target = Arc::new(Matrix::from_fn(4, 5, |r, c| ((r + c) % 2) as f32));
    let weights = Arc::new(vec![1.0f32, 3.0, 0.5, 2.0, 1.5]);
    check_all(&mut store, move |s, tape| {
        let p = s.iter().next().unwrap().0;
        let vp = tape.param(p);
        tape.weighted_mse(vp, target.clone(), weights.clone())
    });
}

#[test]
fn gradcheck_bpr() {
    let mut store = ParamStore::new();
    store.add("pred", rand_matrix(3, 6, 23));
    let pairs = Arc::new(vec![(0u32, 1u32, 4u32), (1, 0, 5), (2, 3, 2), (0, 2, 3)]);
    check_all(&mut store, move |s, tape| {
        let p = s.iter().next().unwrap().0;
        let vp = tape.param(p);
        tape.bpr_loss(vp, pairs.clone())
    });
}

#[test]
fn gradcheck_deep_composite_like_smgcn() {
    // A miniature of the full SMGCN forward: two bipartite propagation hops
    // with concat aggregation, a synergy hop, fusion, set pooling, MLP and
    // weighted MSE — all in one tape, checked end to end.
    let sh = CsrMatrix::from_triplets(3, 4, &[(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
    let sh_norm = SharedCsr::new(sh.row_normalized());
    let hs_norm = SharedCsr::new(sh.transpose().row_normalized());
    let ss = SharedCsr::new(CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0)]));
    let pool = SharedCsr::new(CsrMatrix::from_triplets(
        2,
        3,
        &[(0, 0, 0.5), (0, 1, 0.5), (1, 2, 1.0)],
    ));
    let target = Arc::new(Matrix::from_fn(2, 4, |r, c| ((r * 2 + c) % 2) as f32));
    let weights = Arc::new(vec![1.0f32, 2.0, 1.0, 0.5]);

    let mut store = ParamStore::new();
    store.add("e_s", rand_matrix(3, 4, 31));
    store.add("e_h", rand_matrix(4, 4, 32));
    store.add("t_s", rand_matrix(4, 4, 33));
    store.add("w_s", rand_matrix(8, 4, 34));
    store.add("v_s", rand_matrix(4, 4, 35));
    store.add("w_mlp", rand_matrix(4, 4, 36));
    store.add("b_mlp", rand_matrix(1, 4, 37));

    check_all(&mut store, move |s, tape| {
        let ids: Vec<ParamId> = s.iter().map(|(id, _, _)| id).collect();
        let (e_s, e_h, t_s, w_s, v_s, w_mlp, b_mlp) =
            (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);
        let es = tape.param(e_s);
        let eh = tape.param(e_h);
        // Symptom-oriented hop: mean over herb neighbors of (e_h T_s), tanh,
        // concat with self, aggregate.
        let ts = tape.param(t_s);
        let msg = tape.matmul(eh, ts);
        let merged = tape.spmm(&sh_norm, msg);
        let merged = tape.tanh(merged);
        let cat = tape.concat_cols(es, merged);
        let ws = tape.param(w_s);
        let bs = tape.matmul(cat, ws);
        let bs = tape.tanh(bs);
        // Synergy hop on SS with sum aggregation.
        let vs = tape.param(v_s);
        let syn = tape.spmm(&ss, es);
        let syn = tape.matmul(syn, vs);
        let rs = tape.tanh(syn);
        // Fusion + set pooling + MLP.
        let fused = tape.add(bs, rs);
        let pooled = tape.spmm(&pool, fused);
        let wm = tape.param(w_mlp);
        let lin = tape.matmul(pooled, wm);
        let bm = tape.param(b_mlp);
        let lin = tape.add_bias(lin, bm);
        let syndrome = tape.relu(lin);
        // Herb tower: one herb-oriented mean hop for variety.
        let hmerged = tape.spmm(&hs_norm, es);
        let eh_fused = tape.add(eh, hmerged);
        let scores = tape.matmul_transb(syndrome, eh_fused);
        tape.weighted_mse(scores, target.clone(), weights.clone())
    });
}
