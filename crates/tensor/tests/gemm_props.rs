//! Property tests for the training hot path: the tiled GEMM kernels must
//! match the naive reference kernels **bit for bit** (not approximately —
//! the per-element accumulation order is part of the contract), and a
//! buffer-pooled tape must produce bit-identical gradients to an unpooled
//! one, including when its recycled buffers are full of stale garbage.

use std::sync::Arc;

use proptest::prelude::*;
use smgcn_tensor::init::seeded_rng;
use smgcn_tensor::{BufferPool, CsrMatrix, Matrix, ParamStore, SharedCsr, Tape};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    use rand::Rng;
    let mut rng = seeded_rng(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        // Sprinkle exact zeros so the reference kernels' zero-skip path is
        // exercised too.
        if rng.gen_range(0.0f32..1.0) < 0.15 {
            0.0
        } else {
            rng.gen_range(-3.0f32..3.0)
        }
    })
}

fn assert_bits_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at flat index {i}: {x} vs {y}"
        );
    }
}

proptest! {
    /// Tiled `A @ B` == naive `A @ B`, including 1xN / Nx1 / odd shapes.
    #[test]
    fn tiled_matmul_is_bit_identical(m in 1usize..34, k in 1usize..34, n in 1usize..34, seed in 0u64..500) {
        // The drawn triple plus its degenerate variants (1 in each slot)
        // covers row vectors, column vectors and non-multiple-of-tile dims.
        for (m, k, n) in [(m, k, n), (1, k, n), (m, 1, n), (m, k, 1)] {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(k, n, seed ^ 0x9e37);
            assert_bits_equal(
                &a.matmul(&b),
                &a.matmul_reference(&b),
                &format!("matmul {m}x{k}x{n}"),
            );
        }
    }

    /// Tiled `A @ B^T` == naive `A @ B^T`.
    #[test]
    fn tiled_transb_is_bit_identical(m in 1usize..34, k in 1usize..34, n in 1usize..34, seed in 0u64..500) {
        for (m, k, n) in [(m, k, n), (1, k, n), (m, 1, n), (m, k, 1)] {
            let a = random_matrix(m, k, seed);
            let b = random_matrix(n, k, seed ^ 0x51f1);
            assert_bits_equal(
                &a.matmul_transb(&b),
                &a.matmul_transb_reference(&b),
                &format!("transb {m}x{k}x{n}"),
            );
        }
    }

    /// Tiled `A^T @ B` == naive `A^T @ B` == transpose-then-matmul.
    #[test]
    fn tiled_transa_is_bit_identical(m in 1usize..34, k in 1usize..34, n in 1usize..34, seed in 0u64..500) {
        for (m, k, n) in [(m, k, n), (1, k, n), (m, 1, n), (m, k, 1)] {
            let a = random_matrix(m, k, seed);
            let g = random_matrix(m, n, seed ^ 0x2bad);
            let tiled = a.matmul_transa(&g);
            assert_bits_equal(
                &tiled,
                &a.matmul_transa_reference(&g),
                &format!("transa {m}x{k}x{n}"),
            );
            assert_bits_equal(
                &tiled,
                &a.transpose().matmul(&g),
                &format!("transa-vs-transpose {m}x{k}x{n}"),
            );
        }
    }

    /// A pooled tape (including one whose pool is pre-poisoned with stale
    /// buffers) computes bit-identical forward values and gradients to an
    /// unpooled tape over a representative op graph.
    #[test]
    fn pooled_tape_matches_unpooled_bitwise(rows in 2usize..9, dim in 2usize..9, seed in 0u64..200) {
        let mut store = ParamStore::new();
        let w = store.add("w", random_matrix(dim, dim, seed));
        let e = store.add("e", random_matrix(rows, dim, seed ^ 7));
        let bias = store.add("b", random_matrix(1, dim, seed ^ 13));
        let adj = {
            use rand::Rng;
            let mut rng = seeded_rng(seed ^ 99);
            let triplets: Vec<(u32, u32, f32)> = (0..rows * 2)
                .map(|_| {
                    (
                        rng.gen_range(0..rows as u32),
                        rng.gen_range(0..rows as u32),
                        1.0,
                    )
                })
                .collect();
            SharedCsr::new(CsrMatrix::from_triplets(rows, rows, &triplets).row_normalized())
        };
        let target = Arc::new(random_matrix(rows, dim, seed ^ 21));
        let weights = Arc::new(vec![1.5f32; dim]);

        let run = |tape: &mut Tape<'_>| {
            let ev = tape.param(e);
            let wv = tape.param(w);
            let bv = tape.param(bias);
            let prop = tape.spmm(&adj, ev);
            let lin = tape.matmul(prop, wv);
            let lin = tape.add_bias(lin, bv);
            let act = tape.tanh(lin);
            let cat = tape.concat_cols(act, ev);
            let idx = Arc::new((0..rows as u32).rev().collect::<Vec<_>>());
            let picked = tape.gather_rows(cat, idx);
            let pick_reg = tape.sum_squares(picked);
            let pick_reg = tape.scale(pick_reg, 0.001);
            let scores = tape.matmul_transb(act, ev);
            let scored = tape.matmul(scores, ev);
            let fused = tape.add(scored, act);
            let loss = tape.weighted_mse(fused, target.clone(), weights.clone());
            let reg = tape.sum_squares(wv);
            let reg = tape.scale(reg, 0.01);
            let total = tape.add(loss, reg);
            let total = tape.add(total, pick_reg);
            let grads = tape.backward(total);
            (tape.value(total).clone(), grads)
        };

        let mut plain_tape = Tape::new(&store);
        let (loss_plain, grads_plain) = run(&mut plain_tape);

        // Poison the pool with stale buffers of the right sizes, then run
        // twice so the second run reuses the first run's dirty buffers.
        let pool = BufferPool::new();
        pool.release(random_matrix(rows, dim, 1234));
        pool.release(random_matrix(dim, dim, 4321));
        for round in 0..2 {
            let mut pooled_tape = Tape::with_pool(&store, &pool);
            let (loss_pooled, grads_pooled) = run(&mut pooled_tape);
            assert_bits_equal(&loss_plain, &loss_pooled, &format!("loss round {round}"));
            for (id, gp) in grads_plain.iter() {
                let gq = grads_pooled.get(id).expect("same gradient coverage");
                assert_bits_equal(gp, gq, &format!("grad {} round {round}", store.name(id)));
            }
            pooled_tape.recycle();
            grads_pooled.recycle_into(&pool);
        }
    }
}
