//! Parameter initialisation.
//!
//! The paper trains every model with the Xavier initializer (§V-D, citing
//! Glorot & Bengio). Both the uniform and normal variants are provided; the
//! models use the uniform variant, matching TensorFlow's
//! `xavier_initializer` default.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// A deterministic RNG from a 64-bit seed. All randomness in the
/// reproduction (init, dropout, data generation, negative sampling) flows
/// from seeded [`StdRng`]s so every experiment is replayable.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Xavier/Glorot *uniform* initialisation: entries drawn from
/// `U(-limit, limit)` with `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
}

/// Xavier/Glorot *normal* initialisation: entries drawn from
/// `N(0, 2 / (fan_in + fan_out))` via Box–Muller.
pub fn xavier_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / (rows + cols) as f32).sqrt();
    let next = move |rng: &mut dyn rand::RngCore| {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    };
    Matrix::from_fn(rows, cols, |_, _| std * next(rng))
}

/// All-zeros initialisation (biases).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let a = xavier_uniform(4, 4, &mut seeded_rng(123));
        let b = xavier_uniform(4, 4, &mut seeded_rng(123));
        assert!(a.approx_eq(&b, 0.0));
        let c = xavier_uniform(4, 4, &mut seeded_rng(124));
        assert!(!a.approx_eq(&c, 0.0));
    }

    #[test]
    fn xavier_uniform_respects_limit() {
        let rows = 30;
        let cols = 50;
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let m = xavier_uniform(rows, cols, &mut seeded_rng(7));
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
        // Entries should not all collapse to one sign.
        let pos = m.as_slice().iter().filter(|&&v| v > 0.0).count();
        assert!(pos > 500 && pos < 1000, "suspicious sign balance: {pos}");
    }

    #[test]
    fn xavier_uniform_mean_near_zero() {
        let m = xavier_uniform(100, 100, &mut seeded_rng(11));
        let mean = m.sum() / m.len() as f32;
        assert!(mean.abs() < 0.005, "mean {mean} too far from 0");
    }

    #[test]
    fn xavier_normal_std_matches_fan() {
        let rows = 200;
        let cols = 200;
        let m = xavier_normal(rows, cols, &mut seeded_rng(3));
        let n = m.len() as f32;
        let mean = m.sum() / n;
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        let expected_var = 2.0 / (rows + cols) as f32;
        assert!(
            (var - expected_var).abs() < expected_var * 0.2,
            "var {var} vs expected {expected_var}"
        );
        assert!(m.all_finite());
    }

    #[test]
    fn zeros_is_zero() {
        assert_eq!(zeros(2, 3).sum(), 0.0);
    }
}
