//! Deterministic chunked parallelism helpers built on `std::thread::scope`.
//!
//! The dense and sparse kernels parallelise over *output rows*: each thread
//! owns a disjoint row range and computes it sequentially, so floating-point
//! results are identical to the single-threaded execution regardless of
//! thread count. This keeps every experiment in the reproduction bit-for-bit
//! reproducible from its RNG seed.

use std::sync::OnceLock;

/// Work below this many output elements stays on the calling thread;
/// the thread-scope setup would dominate otherwise.
const PAR_THRESHOLD: usize = 64 * 1024;

fn thread_count() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("SMGCN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(16)
            })
    })
}

/// Threads worth spawning for `work` output elements: never more than the
/// configured count, and never so many that a thread owns less than one
/// [`PAR_THRESHOLD`] of work (the spawn would cost more than it saves).
fn threads_for(work: usize) -> usize {
    thread_count().min(work / PAR_THRESHOLD).max(1)
}

/// Splits `data` (a row-major buffer of `rows` rows of `row_len` values)
/// into contiguous row chunks and invokes `f(first_row, chunk)` on each,
/// in parallel when the buffer is large enough.
///
/// `f` must compute each chunk independently of the others (it receives a
/// disjoint `&mut` slice, so the borrow checker enforces this).
pub fn for_each_row_chunk<F>(data: &mut [f32], row_len: usize, rows: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(data.len(), row_len * rows);
    let threads = threads_for(data.len());
    if threads <= 1 || rows < 2 {
        f(0, data);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (i, chunk) in data.chunks_mut(chunk_rows * row_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(i * chunk_rows, chunk));
        }
    });
}

/// Computes `parts + 1` row boundaries over `rows` rows such that every
/// span carries roughly the same total cost, where `cum_cost[r]` is the
/// cost of rows `0..r` (an `indptr`-style prefix sum, length `rows + 1`).
///
/// Spans are half-open `bounds[i]..bounds[i + 1]` and may be empty when a
/// single row dominates; callers skip empty spans.
fn balanced_bounds(cum_cost: &[usize], parts: usize) -> Vec<usize> {
    let rows = cum_cost.len() - 1;
    let total = cum_cost[rows];
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    for p in 1..parts {
        let target = total * p / parts;
        let r = cum_cost
            .partition_point(|&c| c < target)
            .clamp(*bounds.last().expect("nonempty"), rows);
        bounds.push(r);
    }
    bounds.push(rows);
    bounds
}

/// Like [`for_each_row_chunk`], but splits rows so each chunk carries a
/// roughly equal share of `cum_cost` (a length `rows + 1` prefix sum of
/// per-row cost, e.g. a CSR `indptr`) instead of an equal row count.
///
/// Sparse operators over skewed graphs (co-occurrence degrees follow a
/// power law) would otherwise leave most threads idle while one crunches
/// the hub rows. Chunk boundaries never change per-row results, so output
/// remains bit-identical to the sequential execution.
pub fn for_each_row_chunk_balanced<F>(
    data: &mut [f32],
    row_len: usize,
    rows: usize,
    cum_cost: &[usize],
    f: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(data.len(), row_len * rows);
    debug_assert_eq!(cum_cost.len(), rows + 1);
    let work = cum_cost[rows].saturating_mul(row_len.max(1));
    let threads = threads_for(work);
    if threads <= 1 || rows < 2 {
        f(0, data);
        return;
    }
    let bounds = balanced_bounds(cum_cost, threads);
    std::thread::scope(|scope| {
        let mut rest = data;
        for span in bounds.windows(2) {
            let (r0, r1) = (span[0], span[1]);
            let (chunk, tail) = rest.split_at_mut((r1 - r0) * row_len);
            rest = tail;
            if r1 > r0 {
                let f = &f;
                scope.spawn(move || f(r0, chunk));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_input_runs_inline() {
        let mut data = vec![0.0f32; 12];
        for_each_row_chunk(&mut data, 3, 4, |r0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(3).enumerate() {
                row.fill((r0 + i) as f32);
            }
        });
        assert_eq!(
            data,
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0]
        );
    }

    #[test]
    fn large_input_covers_all_rows_exactly_once() {
        let rows = 10_000;
        let row_len = 16;
        let mut data = vec![0.0f32; rows * row_len];
        for_each_row_chunk(&mut data, row_len, rows, |r0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (r0 + i) as f32;
                }
            }
        });
        for r in 0..rows {
            for c in 0..row_len {
                assert_eq!(data[r * row_len + c], r as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn balanced_bounds_equalise_cost() {
        // One hub row with 90 of 100 nnz: equal-row splitting would give
        // one thread 92% of the work; balanced bounds isolate the hub.
        let per_row = [90usize, 2, 2, 2, 2, 2];
        let mut cum = vec![0usize];
        for w in per_row {
            cum.push(cum.last().unwrap() + w);
        }
        let bounds = balanced_bounds(&cum, 2);
        assert_eq!(bounds.first(), Some(&0));
        assert_eq!(bounds.last(), Some(&6));
        // The first span is just the hub row.
        assert_eq!(bounds[1], 1);
        // Monotone non-decreasing.
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn balanced_bounds_handle_zero_cost() {
        let cum = vec![0usize; 5]; // 4 rows, all empty
        let bounds = balanced_bounds(&cum, 3);
        assert_eq!(bounds.first(), Some(&0));
        assert_eq!(bounds.last(), Some(&4));
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn balanced_chunking_covers_all_rows_exactly_once() {
        let rows = 4_000;
        let row_len = 32;
        // Skewed cost: row r costs r % 17 (some rows free).
        let mut cum = vec![0usize];
        for r in 0..rows {
            cum.push(cum.last().unwrap() + r % 17);
        }
        let mut data = vec![0.0f32; rows * row_len];
        for_each_row_chunk_balanced(&mut data, row_len, rows, &cum, |r0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (r0 + i) as f32;
                }
            }
        });
        for r in 0..rows {
            for c in 0..row_len {
                assert_eq!(data[r * row_len + c], r as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn chunking_is_deterministic() {
        let rows = 5_000;
        let row_len = 32;
        let run = || {
            let mut data = vec![0.0f32; rows * row_len];
            for_each_row_chunk(&mut data, row_len, rows, |r0, chunk| {
                for (i, row) in chunk.chunks_exact_mut(row_len).enumerate() {
                    let r = r0 + i;
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = ((r * 31 + c * 7) % 97) as f32 * 0.123;
                    }
                }
            });
            data
        };
        assert_eq!(run(), run());
    }
}
