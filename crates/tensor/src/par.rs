//! Deterministic chunked parallelism helpers built on `std::thread::scope`.
//!
//! The dense and sparse kernels parallelise over *output rows*: each thread
//! owns a disjoint row range and computes it sequentially, so floating-point
//! results are identical to the single-threaded execution regardless of
//! thread count. This keeps every experiment in the reproduction bit-for-bit
//! reproducible from its RNG seed.

use std::sync::OnceLock;

/// Work below this many output elements stays on the calling thread;
/// the thread-scope setup would dominate otherwise.
const PAR_THRESHOLD: usize = 64 * 1024;

fn thread_count() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("SMGCN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(16)
            })
    })
}

/// Splits `data` (a row-major buffer of `rows` rows of `row_len` values)
/// into contiguous row chunks and invokes `f(first_row, chunk)` on each,
/// in parallel when the buffer is large enough.
///
/// `f` must compute each chunk independently of the others (it receives a
/// disjoint `&mut` slice, so the borrow checker enforces this).
pub fn for_each_row_chunk<F>(data: &mut [f32], row_len: usize, rows: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(data.len(), row_len * rows);
    let threads = thread_count();
    if threads <= 1 || data.len() < PAR_THRESHOLD || rows < 2 {
        f(0, data);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (i, chunk) in data.chunks_mut(chunk_rows * row_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(i * chunk_rows, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_input_runs_inline() {
        let mut data = vec![0.0f32; 12];
        for_each_row_chunk(&mut data, 3, 4, |r0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(3).enumerate() {
                row.fill((r0 + i) as f32);
            }
        });
        assert_eq!(
            data,
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0]
        );
    }

    #[test]
    fn large_input_covers_all_rows_exactly_once() {
        let rows = 10_000;
        let row_len = 16;
        let mut data = vec![0.0f32; rows * row_len];
        for_each_row_chunk(&mut data, row_len, rows, |r0, chunk| {
            for (i, row) in chunk.chunks_exact_mut(row_len).enumerate() {
                for v in row.iter_mut() {
                    *v += (r0 + i) as f32;
                }
            }
        });
        for r in 0..rows {
            for c in 0..row_len {
                assert_eq!(data[r * row_len + c], r as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn chunking_is_deterministic() {
        let rows = 5_000;
        let row_len = 32;
        let run = || {
            let mut data = vec![0.0f32; rows * row_len];
            for_each_row_chunk(&mut data, row_len, rows, |r0, chunk| {
                for (i, row) in chunk.chunks_exact_mut(row_len).enumerate() {
                    let r = r0 + i;
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = ((r * 31 + c * 7) % 97) as f32 * 0.123;
                    }
                }
            });
            data
        };
        assert_eq!(run(), run());
    }
}
