//! Step-scoped buffer recycling for the training hot loop.
//!
//! Every optimisation step builds a fresh [`crate::Tape`], and every tape
//! op produces a node-value [`Matrix`]; the backward pass produces one
//! gradient matrix per node edge. Without recycling that is thousands of
//! heap allocations per step — all of sizes that repeat *exactly* from
//! step to step, because the model's shapes are static.
//!
//! [`BufferPool`] exploits that: released buffers are binned by element
//! count and handed back verbatim on the next [`acquire`](BufferPool::acquire)
//! of the same size. After the first step of training has populated the
//! bins, steady-state steps perform **zero** buffer allocations (the
//! [`stats`](BufferPool::stats) miss counter stops moving — asserted by
//! the trainer's tests).
//!
//! The pool uses interior mutability (`RefCell`) so the tape can hold a
//! shared reference while ops record; it is intentionally `!Sync` — one
//! pool belongs to one training loop. Worker threads inside kernels never
//! touch it.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use crate::matrix::Matrix;

/// Counters describing pool effectiveness; see [`BufferPool::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquires served from a recycled buffer.
    pub hits: u64,
    /// Acquires that had to allocate fresh.
    pub misses: u64,
    /// Buffers currently parked in the pool.
    pub free_buffers: usize,
    /// Total `f32` elements currently parked in the pool.
    pub free_elements: usize,
}

/// A size-binned recycler for [`Matrix`] backing buffers.
#[derive(Debug, Default)]
pub struct BufferPool {
    /// Free buffers keyed by element count; every stored vec has exactly
    /// `len` elements, so acquire is a plain pop with no resize.
    bins: RefCell<HashMap<usize, Vec<Vec<f32>>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a `rows x cols` matrix out of the pool, or allocates a zeroed
    /// one on a miss.
    ///
    /// **The contents of a recycled buffer are stale** (whatever the
    /// previous owner left behind); callers must fully overwrite it — the
    /// `*_into` kernels on [`Matrix`] and [`crate::CsrMatrix`] all do.
    pub fn acquire(&self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        if len > 0 {
            if let Some(buf) = self.bins.borrow_mut().get_mut(&len).and_then(Vec::pop) {
                self.hits.set(self.hits.get() + 1);
                return Matrix::from_vec(rows, cols, buf);
            }
        }
        self.misses.set(self.misses.get() + 1);
        Matrix::zeros(rows, cols)
    }

    /// Returns a matrix's backing buffer to the pool for reuse.
    pub fn release(&self, m: Matrix) {
        let len = m.len();
        if len == 0 {
            return;
        }
        self.bins
            .borrow_mut()
            .entry(len)
            .or_default()
            .push(m.into_vec());
    }

    /// Current hit/miss counters and parked-buffer totals.
    pub fn stats(&self) -> PoolStats {
        let bins = self.bins.borrow();
        PoolStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            free_buffers: bins.values().map(Vec::len).sum(),
            free_elements: bins
                .values()
                .map(|b| b.iter().map(Vec::len).sum::<usize>())
                .sum(),
        }
    }

    /// Drops every parked buffer (counters are kept).
    pub fn clear(&self) {
        self.bins.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_miss_then_hit() {
        let pool = BufferPool::new();
        let a = pool.acquire(3, 4);
        assert_eq!(a.shape(), (3, 4));
        assert!(a.as_slice().iter().all(|&v| v == 0.0), "miss is zeroed");
        pool.release(a);
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        assert_eq!(stats.free_buffers, 1);
        assert_eq!(stats.free_elements, 12);

        // Same element count, different shape: still a hit (contents stale).
        let b = pool.acquire(4, 3);
        assert_eq!(b.shape(), (4, 3));
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().free_buffers, 0);
    }

    #[test]
    fn different_sizes_use_different_bins() {
        let pool = BufferPool::new();
        pool.release(Matrix::zeros(2, 2));
        let m = pool.acquire(3, 3);
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(pool.stats().misses, 1, "4-element bin cannot serve 9");
        assert_eq!(pool.stats().free_buffers, 1);
    }

    #[test]
    fn empty_matrices_bypass_the_pool() {
        let pool = BufferPool::new();
        pool.release(Matrix::zeros(0, 5));
        assert_eq!(pool.stats().free_buffers, 0);
        let m = pool.acquire(0, 7);
        assert_eq!(m.shape(), (0, 7));
    }

    #[test]
    fn clear_drops_parked_buffers() {
        let pool = BufferPool::new();
        pool.release(Matrix::zeros(2, 2));
        pool.release(Matrix::zeros(2, 2));
        assert_eq!(pool.stats().free_buffers, 2);
        pool.clear();
        assert_eq!(pool.stats().free_buffers, 0);
    }

    #[test]
    fn steady_state_stops_allocating() {
        let pool = BufferPool::new();
        for _ in 0..10 {
            let a = pool.acquire(8, 8);
            let b = pool.acquire(8, 4);
            pool.release(a);
            pool.release(b);
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 2, "only the first round allocates");
        assert_eq!(stats.hits, 18);
    }
}
