//! First-order optimizers.
//!
//! The paper trains every model with Adam (§IV-E, §V-D). Plain SGD is
//! included for substrate tests and as the reference against which Adam's
//! bookkeeping is validated.
//!
//! L2 regularisation: the paper adds `λ_Θ ||Θ||₂²` to the loss (Eq. 13),
//! whose gradient contribution is `2 λ_Θ θ`. Both optimizers accept a
//! `weight_decay` coefficient `c` applied as `g += c · θ`; the trainer
//! passes `c = 2 λ_Θ` so the update matches the paper's objective exactly.

use crate::matrix::Matrix;
use crate::tape::{Gradients, ParamStore};

/// Shared optimizer interface: apply one update step given gradients.
pub trait Optimizer {
    /// Applies an in-place parameter update.
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients);

    /// The learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules and sweeps).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional L2 weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    /// SGD with learning rate `lr` and no weight decay.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            weight_decay: 0.0,
        }
    }

    /// Sets the weight-decay coefficient `c` in `g += c · θ`.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let theta = store.get_mut(id);
            if self.weight_decay != 0.0 {
                // θ ← θ - lr (g + c θ) = (1 - lr·c) θ - lr·g
                theta.scale_assign(1.0 - self.lr * self.weight_decay);
            }
            theta.add_scaled_assign(g, -self.lr);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, ICLR 2015) with bias correction, optional L2 weight
/// decay and optional global-norm gradient clipping.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    max_grad_norm: Option<f32>,
    t: u64,
    /// First/second moment estimates, lazily sized to the store.
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with the standard defaults `β1 = 0.9, β2 = 0.999, ε = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            max_grad_norm: None,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Sets the weight-decay coefficient `c` in `g += c · θ`
    /// (pass `2 λ_Θ` to realise the paper's `λ_Θ ||Θ||₂²` term).
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Enables global-norm gradient clipping (robustness extension; the
    /// paper does not clip, so experiment configs leave this off).
    pub fn with_max_grad_norm(mut self, max_norm: f32) -> Self {
        self.max_grad_norm = Some(max_norm);
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    fn ensure_state(&mut self, store: &ParamStore) {
        if self.m.len() < store.len() {
            self.m.resize_with(store.len(), || None);
            self.v.resize_with(store.len(), || None);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.ensure_state(store);
        self.t += 1;
        let clip_scale = match self.max_grad_norm {
            Some(max) => {
                let norm = grads.l2_norm();
                if norm > max && norm > 0.0 {
                    max / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads.iter() {
            let idx = id.index();
            let theta = store.get_mut(id);
            let m = self.m[idx].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let v = self.v[idx].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let (wd, b1, b2, eps, lr) =
                (self.weight_decay, self.beta1, self.beta2, self.eps, self.lr);
            // Zipped slice walk: same arithmetic in the same order as the
            // indexed formulation, minus per-element bounds checks — this
            // loop runs once per scalar parameter per step. Zip would
            // silently truncate on a length mismatch, so assert it away.
            debug_assert_eq!(theta.len(), g.len(), "gradient/parameter size mismatch");
            let iter = theta
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()));
            for ((ti, &gi0), (mi, vi)) in iter {
                let gi = gi0 * clip_scale + wd * *ti;
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *ti -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimises `||θ - target||²` and returns the final θ.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> (Matrix, f32) {
        let target = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let mut store = ParamStore::new();
        let id = store.add("theta", Matrix::zeros(1, 3));
        let mut last_loss = f32::INFINITY;
        for _ in 0..steps {
            let mut tape = Tape::new(&store);
            let th = tape.param(id);
            let t = tape.input(target.clone());
            let diff = tape.sub(th, t);
            let loss = tape.sum_squares(diff);
            last_loss = tape.value(loss).get(0, 0);
            let grads = tape.backward(loss);
            opt.step(&mut store, &grads);
        }
        (store.get(id).clone(), last_loss)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let (theta, loss) = minimise(&mut opt, 200);
        assert!(loss < 1e-6, "loss {loss}");
        assert!(theta.approx_eq(&Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]), 1e-3));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let (theta, loss) = minimise(&mut opt, 500);
        assert!(loss < 1e-4, "loss {loss}");
        assert!(theta.approx_eq(&Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]), 1e-2));
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn adam_first_step_matches_closed_form() {
        // With bias correction, the very first Adam step is lr * sign(g).
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let mut tape = Tape::new(&store);
        let w = tape.param(id);
        let s = tape.sum_squares(w); // g = 2w = [2, 2]
        let grads = tape.backward(s);
        let mut opt = Adam::new(0.1);
        opt.step(&mut store, &grads);
        let w_new = store.get(id);
        assert!(
            (w_new.get(0, 0) - 0.9).abs() < 1e-4,
            "got {}",
            w_new.get(0, 0)
        );
    }

    #[test]
    fn weight_decay_shrinks_unused_directions() {
        // Gradient is zero for a param that never enters the loss, so decay
        // only acts through params that received gradients.
        let mut store = ParamStore::new();
        let used = store.add("used", Matrix::filled(1, 1, 1.0));
        let unused = store.add("unused", Matrix::filled(1, 1, 1.0));
        let mut tape = Tape::new(&store);
        let w = tape.param(used);
        let loss = tape.sum_squares(w);
        let grads = tape.backward(loss);
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        opt.step(&mut store, &grads);
        assert!(store.get(used).get(0, 0) < 1.0);
        assert_eq!(store.get(unused).get(0, 0), 1.0);
    }

    #[test]
    fn grad_clipping_bounds_update() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::filled(1, 1, 1000.0));
        let mut tape = Tape::new(&store);
        let w = tape.param(id);
        let loss = tape.sum_squares(w); // g = 2000, huge
        let grads = tape.backward(loss);
        assert!(grads.l2_norm() > 100.0);
        let mut opt = Adam::new(0.1).with_max_grad_norm(1.0);
        opt.step(&mut store, &grads);
        // After clipping, the first Adam step is still ≈ lr in magnitude.
        let moved = 1000.0 - store.get(id).get(0, 0);
        assert!(moved > 0.0 && moved < 0.2, "moved {moved}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.002);
        assert_eq!(opt.learning_rate(), 0.002);
    }
}
