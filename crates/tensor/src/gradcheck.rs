//! Finite-difference gradient checking.
//!
//! Every autograd op in [`crate::tape`] is validated against central finite
//! differences in the crate's test suite (see `tests/gradcheck_ops.rs`).
//! The checker re-evaluates the caller-supplied loss closure with each
//! parameter entry perturbed by `±eps`, so it is O(#entries × forward cost)
//! and intended for the small models used in tests only.

use crate::matrix::Matrix;
use crate::tape::{ParamId, ParamStore};

/// Numeric gradient of `loss` with respect to parameter `id`, by central
/// differences: `(L(θ+ε) - L(θ-ε)) / 2ε` entry by entry.
///
/// `loss` must be a pure function of the store (it is invoked repeatedly).
pub fn finite_diff_grad(
    store: &mut ParamStore,
    id: ParamId,
    eps: f32,
    mut loss: impl FnMut(&ParamStore) -> f32,
) -> Matrix {
    let (rows, cols) = store.get(id).shape();
    let mut grad = Matrix::zeros(rows, cols);
    for i in 0..rows * cols {
        let original = store.get(id).as_slice()[i];
        store.get_mut(id).as_mut_slice()[i] = original + eps;
        let up = loss(store);
        store.get_mut(id).as_mut_slice()[i] = original - eps;
        let down = loss(store);
        store.get_mut(id).as_mut_slice()[i] = original;
        grad.as_mut_slice()[i] = (up - down) / (2.0 * eps);
    }
    grad
}

/// Outcome of comparing an analytic gradient against a numeric one.
#[derive(Clone, Copy, Debug)]
pub struct GradCheckReport {
    /// Largest absolute entry difference.
    pub max_abs_err: f32,
    /// Largest relative difference `|a - n| / max(1, |a|, |n|)`.
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// True when both error measures are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Compares analytic and numeric gradients entry-wise.
///
/// # Panics
/// Panics if shapes differ.
pub fn compare(analytic: &Matrix, numeric: &Matrix) -> GradCheckReport {
    assert_eq!(
        analytic.shape(),
        numeric.shape(),
        "gradcheck: shape mismatch"
    );
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (&a, &n) in analytic.as_slice().iter().zip(numeric.as_slice()) {
        let abs = (a - n).abs();
        let rel = abs / a.abs().max(n.abs()).max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn finite_diff_matches_known_quadratic() {
        // L = Σ θ²  ⇒  ∇ = 2θ.
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::from_vec(1, 3, vec![1.0, -0.5, 2.0]));
        let numeric = finite_diff_grad(&mut store, id, 1e-3, |s| s.get(id).sum_squares());
        let expect = store.get(id).scale(2.0);
        let report = compare(&expect, &numeric);
        assert!(report.passes(1e-3), "{report:?}");
    }

    #[test]
    fn finite_diff_restores_parameters() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::from_vec(1, 2, vec![0.25, -0.75]));
        let before = store.get(id).clone();
        let _ = finite_diff_grad(&mut store, id, 1e-3, |s| s.get(id).sum());
        assert!(store.get(id).approx_eq(&before, 0.0));
    }

    #[test]
    fn tape_backward_passes_check_on_composite() {
        // L = sum_squares(tanh(W x + b)) against finite differences.
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(2, 2, vec![0.3, -0.2, 0.5, 0.1]));
        let b = store.add("b", Matrix::from_vec(1, 2, vec![0.05, -0.1]));
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.5, -0.5, 0.25, 0.75, -1.0]);

        let run = |s: &ParamStore| -> f32 {
            let mut tape = Tape::new(s);
            let vx = tape.input(x.clone());
            let vw = tape.param(w);
            let vb = tape.param(b);
            let lin = tape.matmul(vx, vw);
            let biased = tape.add_bias(lin, vb);
            let act = tape.tanh(biased);
            let loss = tape.sum_squares(act);
            tape.value(loss).get(0, 0)
        };

        let mut tape = Tape::new(&store);
        let vx = tape.input(x.clone());
        let vw = tape.param(w);
        let vb = tape.param(b);
        let lin = tape.matmul(vx, vw);
        let biased = tape.add_bias(lin, vb);
        let act = tape.tanh(biased);
        let loss = tape.sum_squares(act);
        let grads = tape.backward(loss);

        for id in [w, b] {
            let numeric = finite_diff_grad(&mut store, id, 1e-3, run);
            let report = compare(grads.get(id).unwrap(), &numeric);
            assert!(report.passes(2e-3), "param {}: {report:?}", store.name(id));
        }
    }

    #[test]
    fn report_flags_wrong_gradient() {
        let analytic = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let numeric = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let report = compare(&analytic, &numeric);
        assert!(!report.passes(1e-3));
        assert!((report.max_abs_err - 1.0).abs() < 1e-6);
    }
}
