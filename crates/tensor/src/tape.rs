//! Reverse-mode automatic differentiation on a flat tape.
//!
//! Training in this reproduction is define-by-run, like the TensorFlow 2 /
//! PyTorch style the original SMGCN implementation used: each optimisation
//! step builds a fresh [`Tape`] over the persistent [`ParamStore`], runs the
//! forward computation while recording one [`Op`] node per primitive, and
//! then [`Tape::backward`] walks the nodes in reverse, accumulating matrix
//! gradients per parameter into a [`Gradients`] map.
//!
//! The op set is exactly what the paper's equations require:
//!
//! - Eq. 1/7/9 message construction: [`Tape::matmul`] + [`Tape::spmm`]
//!   (mean-merge as a row-normalised sparse operator) + [`Tape::tanh`];
//! - Eq. 4–6/8 GraphSAGE aggregation: [`Tape::concat_cols`] + `matmul` +
//!   `tanh`;
//! - Eq. 10 synergy encoding: `spmm` (sum aggregator) + `matmul` + `tanh`;
//! - Eq. 11 fusion: [`Tape::add`];
//! - Eq. 12 syndrome induction: `spmm` (set-mean pooling) + `matmul` +
//!   [`Tape::add_bias`] + [`Tape::relu`];
//! - Eq. 13–15 prediction & loss: [`Tape::matmul_transb`] +
//!   [`Tape::weighted_mse`] (and [`Tape::bpr_loss`] for the Table VIII
//!   ablation);
//! - the HeteGCN baseline's type attention: [`Tape::sub`],
//!   [`Tape::sigmoid`], [`Tape::affine`], [`Tape::scale_rows`];
//! - NGCF propagation: [`Tape::hadamard`] + [`Tape::leaky_relu`];
//! - regularisation / robustness: [`Tape::sum_squares`], [`Tape::dropout`].

use std::sync::Arc;

use rand::Rng;

use crate::matrix::Matrix;
use crate::pool::BufferPool;
use crate::sparse::SharedCsr;

/// Handle to a trainable parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

impl ParamId {
    /// Raw index (stable for the lifetime of the store).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Persistent storage for model parameters, living across training steps.
#[derive(Clone, Debug, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Matrix>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a named parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.names.push(name.into());
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    /// Parameter value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable parameter value (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// Iterates over `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Matrix)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// Sum of squared entries over all parameters (`||Θ||₂²` in Eq. 13).
    pub fn l2_squared(&self) -> f32 {
        self.values.iter().map(Matrix::sum_squares).sum()
    }

    /// True when every parameter entry is finite.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(Matrix::all_finite)
    }
}

/// Per-parameter gradients produced by [`Tape::backward`].
#[derive(Clone, Debug)]
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    fn new(n_params: usize) -> Self {
        Self {
            grads: (0..n_params).map(|_| None).collect(),
        }
    }

    /// Gradient for `id`, if the parameter participated in the loss.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    /// Iterates over `(id, grad)` for parameters that received gradients.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.grads
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|m| (ParamId(i), m)))
    }

    /// Number of parameters that received a gradient.
    pub fn present_count(&self) -> usize {
        self.grads.iter().filter(|g| g.is_some()).count()
    }

    /// Global gradient L2 norm (diagnostics / clipping).
    pub fn l2_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(Matrix::sum_squares)
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients in place (used for gradient clipping).
    pub fn scale_assign(&mut self, alpha: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.scale_assign(alpha);
        }
    }

    /// Returns every gradient buffer to `pool` (end-of-step recycling,
    /// after the optimizer has consumed the gradients).
    pub fn recycle_into(self, pool: &BufferPool) {
        for m in self.grads.into_iter().flatten() {
            pool.release(m);
        }
    }
}

/// A node handle on the tape. `Copy`, cheap, only valid for its own tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    Param(ParamId),
    Input,
    MatMul(Var, Var),
    MatMulTransB(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    AddBias(Var, Var),
    Scale(Var, f32),
    // The additive constant is applied when the forward value is computed;
    // backward only needs the multiplier.
    Affine(Var, f32),
    Hadamard(Var, Var),
    ScaleRows(Var, Var),
    Tanh(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    Sigmoid(Var),
    ConcatCols(Var, Var),
    SpMM(SharedCsr, Var),
    GatherRows(Var, Arc<Vec<u32>>),
    Dropout(Var, Arc<Matrix>),
    WeightedMse {
        pred: Var,
        target: Arc<Matrix>,
        weights: Arc<Vec<f32>>,
    },
    Bpr {
        pred: Var,
        pairs: Arc<Vec<(u32, u32, u32)>>,
    },
    SumSquares(Var),
}

struct Node {
    op: Op,
    value: Matrix,
}

/// A single forward computation recorded for reverse-mode differentiation.
///
/// A tape built with [`Tape::with_pool`] draws every node-value and
/// gradient buffer from a [`BufferPool`] and returns them on drop, so a
/// training loop that keeps one pool across steps reaches a steady state
/// with zero heap allocation per step. Pooling never changes results:
/// recycled buffers are fully overwritten by the `*_into` kernels.
pub struct Tape<'s> {
    store: &'s ParamStore,
    pool: Option<&'s BufferPool>,
    nodes: Vec<Node>,
}

impl<'s> Tape<'s> {
    /// Starts an empty tape over a parameter store.
    pub fn new(store: &'s ParamStore) -> Self {
        Self {
            store,
            pool: None,
            nodes: Vec::with_capacity(64),
        }
    }

    /// Starts an empty tape whose buffers are drawn from (and returned
    /// to) `pool`. Results are bit-identical to an unpooled tape.
    pub fn with_pool(store: &'s ParamStore, pool: &'s BufferPool) -> Self {
        Self {
            store,
            pool: Some(pool),
            nodes: Vec::with_capacity(64),
        }
    }

    /// A `rows x cols` scratch matrix: recycled when pooled (contents
    /// stale — callers fully overwrite), freshly zeroed otherwise.
    fn alloc(&self, rows: usize, cols: usize) -> Matrix {
        match self.pool {
            Some(pool) => pool.acquire(rows, cols),
            None => Matrix::zeros(rows, cols),
        }
    }

    /// An owned copy of `src` through the pool.
    fn alloc_copy(&self, src: &Matrix) -> Matrix {
        let mut m = self.alloc(src.rows(), src.cols());
        m.copy_from(src);
        m
    }

    /// Hands a finished scratch matrix back to the pool (no-op unpooled).
    fn release(&self, m: Matrix) {
        if let Some(pool) = self.pool {
            pool.release(m);
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        debug_assert!(value.all_finite(), "tape op produced non-finite values");
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Brings a parameter onto the tape as a leaf.
    pub fn param(&mut self, id: ParamId) -> Var {
        let value = self.alloc_copy(self.store.get(id));
        self.push(Op::Param(id), value)
    }

    /// Brings a constant matrix onto the tape (no gradient flows into it).
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(Op::Input, value)
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (self.value(a), self.value(b));
        let mut value = self.alloc(am.rows(), bm.cols());
        am.matmul_into(bm, &mut value);
        self.push(Op::MatMul(a, b), value)
    }

    /// `a @ b^T` — the prediction layer kernel of Eq. 13.
    pub fn matmul_transb(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (self.value(a), self.value(b));
        let mut value = self.alloc(am.rows(), bm.rows());
        am.matmul_transb_into(bm, &mut value);
        self.push(Op::MatMulTransB(a, b), value)
    }

    /// Element-wise `a + b` (the fusion step of Eq. 11).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (self.value(a), self.value(b));
        let mut value = self.alloc(am.rows(), am.cols());
        am.add_into(bm, &mut value);
        self.push(Op::Add(a, b), value)
    }

    /// Element-wise `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (self.value(a), self.value(b));
        let mut value = self.alloc(am.rows(), am.cols());
        am.sub_into(bm, &mut value);
        self.push(Op::Sub(a, b), value)
    }

    /// Broadcasts a `1 x d` bias row over every row of `x` (Eq. 12's `b_mlp`).
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let (xm, bm) = (self.value(x), self.value(bias));
        assert_eq!(bm.rows(), 1, "add_bias: bias must be a 1-row matrix");
        assert_eq!(
            xm.cols(),
            bm.cols(),
            "add_bias: width mismatch ({} vs {})",
            xm.cols(),
            bm.cols()
        );
        let mut value = self.alloc_copy(xm);
        for r in 0..value.rows() {
            for (v, &b) in value.row_mut(r).iter_mut().zip(bm.row(0)) {
                *v += b;
            }
        }
        self.push(Op::AddBias(x, bias), value)
    }

    /// `alpha * x`.
    pub fn scale(&mut self, x: Var, alpha: f32) -> Var {
        let xm = self.value(x);
        let mut value = self.alloc(xm.rows(), xm.cols());
        xm.scale_into(alpha, &mut value);
        self.push(Op::Scale(x, alpha), value)
    }

    /// Element-wise affine map `mul * x + add` (e.g. `1 - x` for attention
    /// complements).
    pub fn affine(&mut self, x: Var, mul: f32, add: f32) -> Var {
        let xm = self.value(x);
        let mut value = self.alloc(xm.rows(), xm.cols());
        xm.map_into(&mut value, |v| mul * v + add);
        self.push(Op::Affine(x, mul), value)
    }

    /// Element-wise product (NGCF's affinity term).
    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (self.value(a), self.value(b));
        let mut value = self.alloc(am.rows(), am.cols());
        am.hadamard_into(bm, &mut value);
        self.push(Op::Hadamard(a, b), value)
    }

    /// Scales row `i` of `x` by the scalar `s[i, 0]` (HeteGCN type attention).
    ///
    /// # Panics
    /// Panics unless `s` is a column vector with one row per row of `x`.
    pub fn scale_rows(&mut self, x: Var, s: Var) -> Var {
        let (xm, sm) = (self.value(x), self.value(s));
        assert_eq!(sm.cols(), 1, "scale_rows: scale must be a column vector");
        assert_eq!(
            xm.rows(),
            sm.rows(),
            "scale_rows: row mismatch ({} vs {})",
            xm.rows(),
            sm.rows()
        );
        let mut value = self.alloc_copy(xm);
        for r in 0..value.rows() {
            let alpha = sm.get(r, 0);
            for v in value.row_mut(r) {
                *v *= alpha;
            }
        }
        self.push(Op::ScaleRows(x, s), value)
    }

    /// Records a unary element-wise op whose forward value is `f(x)`.
    fn unary_map(&mut self, x: Var, op: Op, f: impl Fn(f32) -> f32) -> Var {
        let xm = self.value(x);
        let mut value = self.alloc(xm.rows(), xm.cols());
        xm.map_into(&mut value, f);
        self.push(op, value)
    }

    /// Element-wise `tanh` — the paper's activation throughout Bipar-GCN/SGE.
    pub fn tanh(&mut self, x: Var) -> Var {
        self.unary_map(x, Op::Tanh(x), f32::tanh)
    }

    /// Element-wise ReLU (Eq. 12's syndrome-induction MLP).
    pub fn relu(&mut self, x: Var) -> Var {
        self.unary_map(x, Op::Relu(x), |v| v.max(0.0))
    }

    /// Element-wise LeakyReLU (NGCF's activation).
    pub fn leaky_relu(&mut self, x: Var, slope: f32) -> Var {
        self.unary_map(x, Op::LeakyRelu(x, slope), move |v| {
            if v > 0.0 {
                v
            } else {
                slope * v
            }
        })
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        self.unary_map(x, Op::Sigmoid(x), |v| 1.0 / (1.0 + (-v).exp()))
    }

    /// `[a || b]` column concatenation — the GraphSAGE aggregator input.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (am, bm) = (self.value(a), self.value(b));
        let mut value = self.alloc(am.rows(), am.cols() + bm.cols());
        am.concat_cols_into(bm, &mut value);
        self.push(Op::ConcatCols(a, b), value)
    }

    /// Sparse-dense product `A @ x` with a fixed sparse operator.
    ///
    /// With a row-normalised adjacency this is the paper's *mean* neighbor
    /// merge (Eqs. 2/3/7/9); with a raw 0/1 adjacency it is the *sum*
    /// aggregation used on the synergy graphs (Eq. 10); with a
    /// row-normalised symptom-set incidence matrix it is the average pooling
    /// of Eq. 12.
    pub fn spmm(&mut self, a: &SharedCsr, x: Var) -> Var {
        let xm = self.value(x);
        let mut value = self.alloc(a.forward().rows(), xm.cols());
        a.forward().spmm_into(xm, &mut value);
        self.push(Op::SpMM(a.clone(), x), value)
    }

    /// Gathers rows of `x` by index (embedding lookup).
    pub fn gather_rows(&mut self, x: Var, indices: Arc<Vec<u32>>) -> Var {
        let xm = self.value(x);
        let mut value = self.alloc(indices.len(), xm.cols());
        xm.gather_rows_into(&indices, &mut value);
        self.push(Op::GatherRows(x, indices), value)
    }

    /// Inverted-dropout with rate `p`: keeps entries with probability
    /// `1 - p`, scaling survivors by `1 / (1 - p)`.
    ///
    /// The paper applies *message dropout* on aggregated neighborhood
    /// embeddings (§V-E-3, Fig. 9); the model code calls this on `b_N` nodes.
    pub fn dropout(&mut self, x: Var, rate: f32, rng: &mut impl Rng) -> Var {
        assert!(
            (0.0..1.0).contains(&rate),
            "dropout: rate must be in [0, 1), got {rate}"
        );
        if rate == 0.0 {
            return x;
        }
        let keep = 1.0 - rate;
        let scale = 1.0 / keep;
        let (rows, cols) = self.value(x).shape();
        let mut mask = self.alloc(rows, cols);
        // Row-major fill, same RNG draw order as the previous
        // `Matrix::from_fn` construction.
        for v in mask.as_mut_slice() {
            *v = if rng.gen::<f32>() < keep { scale } else { 0.0 };
        }
        self.dropout_with_mask(x, Arc::new(mask))
    }

    /// Dropout with an explicit mask (deterministic testing hook).
    pub fn dropout_with_mask(&mut self, x: Var, mask: Arc<Matrix>) -> Var {
        let xm = self.value(x);
        let mut value = self.alloc(xm.rows(), xm.cols());
        xm.hadamard_into(&mask, &mut value);
        self.push(Op::Dropout(x, mask), value)
    }

    /// The paper's multi-label objective (Eqs. 13–15): mean over batch rows
    /// of `Σ_i w_i (target_i - pred_i)²`, as a `1x1` scalar node.
    ///
    /// `weights[i]` is the per-herb imbalance weight
    /// `max_k freq(k) / freq(i)`.
    ///
    /// # Panics
    /// Panics if shapes disagree or `weights.len() != pred.cols()`.
    pub fn weighted_mse(&mut self, pred: Var, target: Arc<Matrix>, weights: Arc<Vec<f32>>) -> Var {
        let p = self.value(pred);
        assert_eq!(
            p.shape(),
            target.shape(),
            "weighted_mse: pred/target shape mismatch"
        );
        assert_eq!(
            weights.len(),
            p.cols(),
            "weighted_mse: weights length {} != label count {}",
            weights.len(),
            p.cols()
        );
        let batch = p.rows().max(1) as f32;
        let mut acc = 0.0f64;
        for r in 0..p.rows() {
            for ((&pv, &tv), &w) in p.row(r).iter().zip(target.row(r)).zip(weights.iter()) {
                let d = (tv - pv) as f64;
                acc += w as f64 * d * d;
            }
        }
        let value = self.scalar((acc / batch as f64) as f32);
        self.push(
            Op::WeightedMse {
                pred,
                target,
                weights,
            },
            value,
        )
    }

    /// A pooled `1 x 1` node value.
    fn scalar(&self, v: f32) -> Matrix {
        let mut m = self.alloc(1, 1);
        m.as_mut_slice()[0] = v;
        m
    }

    /// Pair-wise BPR loss (Table VIII ablation):
    /// `-(1/|pairs|) Σ ln σ(pred[b, pos] - pred[b, neg])`.
    ///
    /// Each pair is `(batch_row, positive_herb, negative_herb)`.
    pub fn bpr_loss(&mut self, pred: Var, pairs: Arc<Vec<(u32, u32, u32)>>) -> Var {
        let p = self.value(pred);
        assert!(!pairs.is_empty(), "bpr_loss: empty pair set");
        let mut acc = 0.0f64;
        for &(b, pos, neg) in pairs.iter() {
            let x = p.get(b as usize, pos as usize) - p.get(b as usize, neg as usize);
            // ln σ(x) = -softplus(-x), computed stably.
            let softplus = if -x > 30.0 {
                -x
            } else {
                (1.0 + (-x).exp()).ln()
            };
            acc += softplus as f64;
        }
        let value = self.scalar((acc / pairs.len() as f64) as f32);
        self.push(Op::Bpr { pred, pairs }, value)
    }

    /// `Σ x²` as a scalar node (explicit L2 terms).
    pub fn sum_squares(&mut self, x: Var) -> Var {
        let value = self.scalar(self.value(x).sum_squares());
        self.push(Op::SumSquares(x), value)
    }

    /// Accumulates `delta` into a node's gradient slot, recycling the
    /// buffer when the slot was already populated.
    fn acc(&self, node_grads: &mut [Option<Matrix>], var: Var, delta: Matrix) {
        match &mut node_grads[var.0] {
            Some(g) => {
                g.add_assign(&delta);
                self.release(delta);
            }
            slot @ None => *slot = Some(delta),
        }
    }

    /// Runs reverse-mode differentiation from a scalar loss node.
    ///
    /// Every incoming node gradient `g` is *owned* here: each match arm
    /// either forwards it (possibly modified in place, which preserves the
    /// exact per-element arithmetic of the out-of-place formulation) or
    /// releases it back to the pool.
    ///
    /// # Panics
    /// Panics if `loss` is not `1x1`.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a 1x1 scalar node"
        );
        let mut node_grads: Vec<Option<Matrix>> = (0..=loss.0).map(|_| None).collect();
        node_grads[loss.0] = Some(self.scalar(1.0));
        let mut out = Gradients::new(self.store.len());

        for idx in (0..=loss.0).rev() {
            let Some(mut g) = node_grads[idx].take() else {
                continue;
            };
            match &self.nodes[idx].op {
                Op::Param(id) => match &mut out.grads[id.0] {
                    Some(total) => {
                        total.add_assign(&g);
                        self.release(g);
                    }
                    slot @ None => *slot = Some(g),
                },
                Op::Input => self.release(g),
                Op::MatMul(a, b) => {
                    let (am, bm) = (self.value(*a), self.value(*b));
                    let mut ga = self.alloc(g.rows(), bm.rows());
                    g.matmul_transb_into(bm, &mut ga);
                    let mut gb = self.alloc(am.cols(), g.cols());
                    am.matmul_transa_into(&g, &mut gb);
                    self.acc(&mut node_grads, *a, ga);
                    self.acc(&mut node_grads, *b, gb);
                    self.release(g);
                }
                Op::MatMulTransB(a, b) => {
                    let (am, bm) = (self.value(*a), self.value(*b));
                    let mut ga = self.alloc(g.rows(), bm.cols());
                    g.matmul_into(bm, &mut ga);
                    let mut gb = self.alloc(g.cols(), am.cols());
                    g.matmul_transa_into(am, &mut gb);
                    self.acc(&mut node_grads, *a, ga);
                    self.acc(&mut node_grads, *b, gb);
                    self.release(g);
                }
                Op::Add(a, b) => {
                    let ga = self.alloc_copy(&g);
                    self.acc(&mut node_grads, *a, ga);
                    self.acc(&mut node_grads, *b, g);
                }
                Op::Sub(a, b) => {
                    let ga = self.alloc_copy(&g);
                    self.acc(&mut node_grads, *a, ga);
                    g.scale_assign(-1.0);
                    self.acc(&mut node_grads, *b, g);
                }
                Op::AddBias(x, bias) => {
                    let mut gbias = self.alloc(1, g.cols());
                    g.col_sums_into(&mut gbias);
                    self.acc(&mut node_grads, *bias, gbias);
                    self.acc(&mut node_grads, *x, g);
                }
                Op::Scale(x, alpha) => {
                    g.scale_assign(*alpha);
                    self.acc(&mut node_grads, *x, g);
                }
                Op::Affine(x, mul) => {
                    g.scale_assign(*mul);
                    self.acc(&mut node_grads, *x, g);
                }
                Op::Hadamard(a, b) => {
                    let (am, bm) = (self.value(*a), self.value(*b));
                    let mut ga = self.alloc(g.rows(), g.cols());
                    g.hadamard_into(bm, &mut ga);
                    g.hadamard_assign(am);
                    self.acc(&mut node_grads, *a, ga);
                    self.acc(&mut node_grads, *b, g);
                }
                Op::ScaleRows(x, s) => {
                    let xm = self.value(*x);
                    let sm = self.value(*s);
                    let mut gs = self.alloc(sm.rows(), 1);
                    for r in 0..g.rows() {
                        let dot: f32 = g
                            .row(r)
                            .iter()
                            .zip(xm.row(r))
                            .map(|(&gv, &xv)| gv * xv)
                            .sum();
                        gs.set(r, 0, dot);
                    }
                    for r in 0..g.rows() {
                        let alpha = sm.get(r, 0);
                        for v in g.row_mut(r) {
                            *v *= alpha;
                        }
                    }
                    self.acc(&mut node_grads, *x, g);
                    self.acc(&mut node_grads, *s, gs);
                }
                Op::Tanh(x) => {
                    let y = &self.nodes[idx].value;
                    for (gv, &yv) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *gv *= 1.0 - yv * yv;
                    }
                    self.acc(&mut node_grads, *x, g);
                }
                Op::Relu(x) => {
                    let y = &self.nodes[idx].value;
                    for (gv, &yv) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *gv = if yv > 0.0 { *gv } else { 0.0 };
                    }
                    self.acc(&mut node_grads, *x, g);
                }
                Op::LeakyRelu(x, slope) => {
                    let xin = self.value(*x);
                    for (gv, &xv) in g.as_mut_slice().iter_mut().zip(xin.as_slice()) {
                        *gv = if xv > 0.0 { *gv } else { slope * *gv };
                    }
                    self.acc(&mut node_grads, *x, g);
                }
                Op::Sigmoid(x) => {
                    let y = &self.nodes[idx].value;
                    for (gv, &yv) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *gv = *gv * yv * (1.0 - yv);
                    }
                    self.acc(&mut node_grads, *x, g);
                }
                Op::ConcatCols(a, b) => {
                    let left_cols = self.value(*a).cols();
                    let mut ga = self.alloc(g.rows(), left_cols);
                    let mut gb = self.alloc(g.rows(), g.cols() - left_cols);
                    g.split_cols_into(&mut ga, &mut gb);
                    self.acc(&mut node_grads, *a, ga);
                    self.acc(&mut node_grads, *b, gb);
                    self.release(g);
                }
                Op::SpMM(shared, x) => {
                    let mut gx = self.alloc(shared.backward().rows(), g.cols());
                    shared.backward().spmm_into(&g, &mut gx);
                    self.acc(&mut node_grads, *x, gx);
                    self.release(g);
                }
                Op::GatherRows(x, indices) => {
                    let xm = self.value(*x);
                    let mut gx = self.alloc(xm.rows(), xm.cols());
                    gx.as_mut_slice().fill(0.0);
                    for (o, &src) in indices.iter().enumerate() {
                        let src = src as usize;
                        for (v, &gv) in gx.row_mut(src).iter_mut().zip(g.row(o)) {
                            *v += gv;
                        }
                    }
                    self.acc(&mut node_grads, *x, gx);
                    self.release(g);
                }
                Op::Dropout(x, mask) => {
                    g.hadamard_assign(mask);
                    self.acc(&mut node_grads, *x, g);
                }
                Op::WeightedMse {
                    pred,
                    target,
                    weights,
                } => {
                    let p = self.value(*pred);
                    let gscalar = g.get(0, 0);
                    let batch = p.rows().max(1) as f32;
                    let mut gp = self.alloc(p.rows(), p.cols());
                    for r in 0..p.rows() {
                        let (ps, ts) = (p.row(r), target.row(r));
                        for (c, o) in gp.row_mut(r).iter_mut().enumerate() {
                            *o = gscalar * 2.0 * weights[c] * (ps[c] - ts[c]) / batch;
                        }
                    }
                    self.acc(&mut node_grads, *pred, gp);
                    self.release(g);
                }
                Op::Bpr { pred, pairs } => {
                    let p = self.value(*pred);
                    let gscalar = g.get(0, 0);
                    let inv = gscalar / pairs.len() as f32;
                    let mut gp = self.alloc(p.rows(), p.cols());
                    gp.as_mut_slice().fill(0.0);
                    for &(b, pos, neg) in pairs.iter() {
                        let (b, pos, neg) = (b as usize, pos as usize, neg as usize);
                        let x = p.get(b, pos) - p.get(b, neg);
                        let sig = 1.0 / (1.0 + (-x).exp());
                        let d = -(1.0 - sig) * inv;
                        gp.set(b, pos, gp.get(b, pos) + d);
                        gp.set(b, neg, gp.get(b, neg) - d);
                    }
                    self.acc(&mut node_grads, *pred, gp);
                    self.release(g);
                }
                Op::SumSquares(x) => {
                    let gscalar = g.get(0, 0);
                    let xm = self.value(*x);
                    let mut gx = self.alloc(xm.rows(), xm.cols());
                    xm.scale_into(2.0 * gscalar, &mut gx);
                    self.acc(&mut node_grads, *x, gx);
                    self.release(g);
                }
            }
        }
        out
    }
}

impl Tape<'_> {
    /// Consumes the tape and returns every node-value buffer (and any
    /// dropout-mask buffer) to the pool. No-op for unpooled tapes.
    ///
    /// This is deliberately an explicit call rather than a `Drop` impl: a
    /// `Drop` would extend the tape's borrow of the [`ParamStore`] to the
    /// end of scope, breaking the ubiquitous
    /// `let tape = Tape::new(&store); …; opt.step(&mut store, …)` pattern.
    /// Forgetting to call it only costs pool misses, never correctness.
    pub fn recycle(mut self) {
        let Some(pool) = self.pool else {
            return;
        };
        for node in self.nodes.drain(..) {
            pool.release(node.value);
            // Dropout masks are Arc-shared with no other owner by the time
            // the tape dies; reclaim their buffers too.
            if let Op::Dropout(_, mask) = node.op {
                if let Ok(m) = Arc::try_unwrap(mask) {
                    pool.release(m);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    fn store_with(values: &[(&str, Matrix)]) -> (ParamStore, Vec<ParamId>) {
        let mut store = ParamStore::new();
        let ids = values
            .iter()
            .map(|(n, m)| store.add(*n, m.clone()))
            .collect();
        (store, ids)
    }

    #[test]
    fn param_store_bookkeeping() {
        let (store, ids) = store_with(&[
            ("a", Matrix::filled(2, 2, 1.0)),
            ("b", Matrix::filled(1, 3, 2.0)),
        ]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.scalar_count(), 7);
        assert_eq!(store.name(ids[0]), "a");
        assert_eq!(store.l2_squared(), 4.0 + 12.0);
        assert!(store.all_finite());
    }

    #[test]
    fn matmul_backward_matches_closed_form() {
        // loss = sum_squares(A @ B); dL/dA = 2 (A B) B^T, dL/dB = 2 A^T (A B).
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, -1.0, 0.5]);
        let b = Matrix::from_vec(2, 2, vec![0.5, -1.0, 2.0, 1.0]);
        let (store, ids) = store_with(&[("a", a.clone()), ("b", b.clone())]);
        let mut tape = Tape::new(&store);
        let va = tape.param(ids[0]);
        let vb = tape.param(ids[1]);
        let prod = tape.matmul(va, vb);
        let loss = tape.sum_squares(prod);
        let grads = tape.backward(loss);

        let ab = a.matmul(&b);
        let expect_ga = ab.scale(2.0).matmul_transb(&b);
        let expect_gb = a.transpose().matmul(&ab.scale(2.0));
        assert!(grads.get(ids[0]).unwrap().approx_eq(&expect_ga, 1e-5));
        assert!(grads.get(ids[1]).unwrap().approx_eq(&expect_gb, 1e-5));
    }

    #[test]
    fn add_and_sub_route_gradients() {
        let (store, ids) = store_with(&[
            ("a", Matrix::filled(1, 2, 3.0)),
            ("b", Matrix::filled(1, 2, 1.0)),
        ]);
        let mut tape = Tape::new(&store);
        let a = tape.param(ids[0]);
        let b = tape.param(ids[1]);
        let d = tape.sub(a, b);
        let loss = tape.sum_squares(d); // (a-b)^2 summed; d/da = 2(a-b)=4, d/db = -4
        let grads = tape.backward(loss);
        assert!(grads
            .get(ids[0])
            .unwrap()
            .approx_eq(&Matrix::filled(1, 2, 4.0), 1e-6));
        assert!(grads
            .get(ids[1])
            .unwrap()
            .approx_eq(&Matrix::filled(1, 2, -4.0), 1e-6));
    }

    #[test]
    fn reused_param_accumulates_gradient() {
        // loss = sum_squares(a + a) = 4 * sum a^2; grad = 8a.
        let (store, ids) = store_with(&[("a", Matrix::filled(1, 2, 1.5))]);
        let mut tape = Tape::new(&store);
        let a = tape.param(ids[0]);
        let s = tape.add(a, a);
        let loss = tape.sum_squares(s);
        let grads = tape.backward(loss);
        assert!(grads
            .get(ids[0])
            .unwrap()
            .approx_eq(&Matrix::filled(1, 2, 12.0), 1e-5));
    }

    #[test]
    fn spmm_backward_uses_transpose() {
        // loss = sum(A x ⊙ A x); grad_x = 2 A^T (A x).
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0)]);
        let shared = SharedCsr::new(a.clone());
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.5, -1.0, 2.0, 1.0]);
        let (store, ids) = store_with(&[("x", x.clone())]);
        let mut tape = Tape::new(&store);
        let vx = tape.param(ids[0]);
        let ax = tape.spmm(&shared, vx);
        let loss = tape.sum_squares(ax);
        let grads = tape.backward(loss);
        let expect = a.transpose().spmm(&a.spmm(&x).scale(2.0));
        assert!(grads.get(ids[0]).unwrap().approx_eq(&expect, 1e-5));
    }

    #[test]
    fn gather_rows_scatter_adds() {
        let x = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let (store, ids) = store_with(&[("x", x)]);
        let mut tape = Tape::new(&store);
        let vx = tape.param(ids[0]);
        // Gather row 1 twice; loss = sum_squares -> each gathered copy
        // contributes 2*x[1] = 4, scattered back twice => 8.
        let g = tape.gather_rows(vx, Arc::new(vec![1, 1]));
        let loss = tape.sum_squares(g);
        let grads = tape.backward(loss);
        let gx = grads.get(ids[0]).unwrap();
        assert_eq!(gx.get(0, 0), 0.0);
        assert!((gx.get(1, 0) - 8.0).abs() < 1e-6);
        assert_eq!(gx.get(2, 0), 0.0);
    }

    #[test]
    fn concat_splits_gradient() {
        let (store, ids) = store_with(&[
            ("a", Matrix::filled(2, 1, 2.0)),
            ("b", Matrix::filled(2, 2, -1.0)),
        ]);
        let mut tape = Tape::new(&store);
        let a = tape.param(ids[0]);
        let b = tape.param(ids[1]);
        let cat = tape.concat_cols(a, b);
        let loss = tape.sum_squares(cat);
        let grads = tape.backward(loss);
        assert!(grads
            .get(ids[0])
            .unwrap()
            .approx_eq(&Matrix::filled(2, 1, 4.0), 1e-6));
        assert!(grads
            .get(ids[1])
            .unwrap()
            .approx_eq(&Matrix::filled(2, 2, -2.0), 1e-6));
    }

    #[test]
    fn weighted_mse_value_and_gradient() {
        let pred = Matrix::from_vec(2, 2, vec![0.5, 0.0, 1.0, 1.0]);
        let target = Arc::new(Matrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]));
        let weights = Arc::new(vec![2.0f32, 1.0]);
        let (store, ids) = store_with(&[("p", pred)]);
        let mut tape = Tape::new(&store);
        let vp = tape.param(ids[0]);
        let loss = tape.weighted_mse(vp, target, weights);
        // row0: 2*(1-0.5)^2 + 1*0 = 0.5 ; row1: 0 + 1*(0-1)^2 = 1.0; mean = 0.75
        assert!((tape.value(loss).get(0, 0) - 0.75).abs() < 1e-6);
        let grads = tape.backward(loss);
        let gp = grads.get(ids[0]).unwrap();
        // d/dp[0,0] = 2*w0*(p-t)/B = 2*2*(-0.5)/2 = -1
        assert!((gp.get(0, 0) + 1.0).abs() < 1e-6);
        // d/dp[1,1] = 2*1*(1-0)/2 = 1
        assert!((gp.get(1, 1) - 1.0).abs() < 1e-6);
        assert_eq!(gp.get(0, 1), 0.0);
    }

    #[test]
    fn bpr_loss_prefers_positive() {
        let pred = Matrix::from_vec(1, 3, vec![1.0, 0.0, -1.0]);
        let (store, ids) = store_with(&[("p", pred)]);
        let mut tape = Tape::new(&store);
        let vp = tape.param(ids[0]);
        let loss = tape.bpr_loss(vp, Arc::new(vec![(0, 0, 2)]));
        // x = 2.0; loss = ln(1 + e^-2)
        let expect = (1.0f32 + (-2.0f32).exp()).ln();
        assert!((tape.value(loss).get(0, 0) - expect).abs() < 1e-5);
        let grads = tape.backward(loss);
        let gp = grads.get(ids[0]).unwrap();
        assert!(
            gp.get(0, 0) < 0.0,
            "positive item gradient must push score up"
        );
        assert!(
            gp.get(0, 2) > 0.0,
            "negative item gradient must push score down"
        );
        assert_eq!(gp.get(0, 1), 0.0);
    }

    #[test]
    fn dropout_mask_scales_forward_and_backward() {
        let x = Matrix::filled(1, 4, 1.0);
        let (store, ids) = store_with(&[("x", x)]);
        let mut tape = Tape::new(&store);
        let vx = tape.param(ids[0]);
        let mask = Arc::new(Matrix::from_vec(1, 4, vec![2.0, 0.0, 2.0, 0.0]));
        let d = tape.dropout_with_mask(vx, mask);
        assert_eq!(tape.value(d).as_slice(), &[2.0, 0.0, 2.0, 0.0]);
        let loss = tape.sum_squares(d);
        let grads = tape.backward(loss);
        // d loss/dx = 2 * (x*m) * m = 2*2*2 = 8 where kept, 0 where dropped.
        assert_eq!(grads.get(ids[0]).unwrap().as_slice(), &[8.0, 0.0, 8.0, 0.0]);
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let (store, ids) = store_with(&[("x", Matrix::filled(2, 2, 3.0))]);
        let mut tape = Tape::new(&store);
        let vx = tape.param(ids[0]);
        let mut rng = crate::init::seeded_rng(7);
        let d = tape.dropout(vx, 0.0, &mut rng);
        assert_eq!(d, vx, "rate 0 must not add a node");
    }

    #[test]
    fn dropout_keeps_expected_fraction() {
        let (store, ids) = store_with(&[("x", Matrix::filled(100, 100, 1.0))]);
        let mut tape = Tape::new(&store);
        let vx = tape.param(ids[0]);
        let mut rng = crate::init::seeded_rng(42);
        let d = tape.dropout(vx, 0.3, &mut rng);
        let kept = tape
            .value(d)
            .as_slice()
            .iter()
            .filter(|&&v| v != 0.0)
            .count();
        let frac = kept as f32 / 10_000.0;
        assert!(
            (frac - 0.7).abs() < 0.03,
            "kept fraction {frac} too far from 0.7"
        );
        // Inverted dropout keeps the expectation: mean ≈ 1.
        let mean = tape.value(d).sum() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean} too far from 1.0");
    }

    #[test]
    fn scale_rows_backward() {
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let s = Matrix::from_vec(2, 1, vec![2.0, -1.0]);
        let (store, ids) = store_with(&[("x", x), ("s", s)]);
        let mut tape = Tape::new(&store);
        let vx = tape.param(ids[0]);
        let vs = tape.param(ids[1]);
        let y = tape.scale_rows(vx, vs);
        assert_eq!(tape.value(y).as_slice(), &[2.0, 4.0, -3.0, -4.0]);
        let loss = tape.sum_squares(y);
        let grads = tape.backward(loss);
        // dL/dx = 2*y*s per row; dL/ds_r = Σ_c 2*y[r,c]*x[r,c]
        let gx = grads.get(ids[0]).unwrap();
        assert_eq!(gx.as_slice(), &[8.0, 16.0, 6.0, 8.0]);
        let gs = grads.get(ids[1]).unwrap();
        // row0: 2*y[0,c]*x[0,c] summed = 2*(2*1 + 4*2) = 20
        // row1: 2*(-3*3 + -4*4) = -50
        assert_eq!(gs.as_slice(), &[20.0, -50.0]);
    }

    #[test]
    fn affine_and_activations_forward() {
        let (store, ids) = store_with(&[("x", Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]))]);
        let mut tape = Tape::new(&store);
        let x = tape.param(ids[0]);
        let a = tape.affine(x, -1.0, 1.0);
        assert_eq!(tape.value(a).as_slice(), &[2.0, 1.0, -1.0]);
        let r = tape.relu(x);
        assert_eq!(tape.value(r).as_slice(), &[0.0, 0.0, 2.0]);
        let l = tape.leaky_relu(x, 0.1);
        assert_eq!(tape.value(l).as_slice(), &[-0.1, 0.0, 2.0]);
        let t = tape.tanh(x);
        assert!((tape.value(t).get(0, 2) - 2.0f32.tanh()).abs() < 1e-6);
        let s = tape.sigmoid(x);
        assert!((tape.value(s).get(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradients_norm_and_scale() {
        let (store, ids) = store_with(&[("a", Matrix::filled(1, 1, 3.0))]);
        let mut tape = Tape::new(&store);
        let a = tape.param(ids[0]);
        let loss = tape.sum_squares(a);
        let mut grads = tape.backward(loss);
        assert!((grads.l2_norm() - 6.0).abs() < 1e-6);
        grads.scale_assign(0.5);
        assert!((grads.get(ids[0]).unwrap().get(0, 0) - 3.0).abs() < 1e-6);
        assert_eq!(grads.present_count(), 1);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1x1")]
    fn backward_rejects_non_scalar() {
        let (store, ids) = store_with(&[("a", Matrix::filled(2, 2, 1.0))]);
        let mut tape = Tape::new(&store);
        let a = tape.param(ids[0]);
        let _ = tape.backward(a);
    }
}
