//! Register-tiled dense GEMM kernels.
//!
//! Every dense product in the workspace — `A @ B`, the prediction-layer
//! `A @ B^T`, and the backward-pass `A^T @ B` — routes through this module.
//! The kernels are plain scalar Rust shaped so LLVM autovectorizes them:
//! a 4x8 register tile of accumulators lives across the entire reduction
//! loop, the right-hand side is packed into contiguous 8-wide column
//! panels, and the left-hand side streams row-major. Compared to the naive
//! loops (kept below as the `*_reference_into` kernels) this removes the
//! per-`k` reload/store of the output row and turns the transposed-B dot
//! products into 32 independent dependency chains.
//!
//! ## Determinism contract
//!
//! Each output element is accumulated by a **single** accumulator walking
//! the reduction dimension in increasing order — exactly the order the
//! naive kernels use. Tiling only changes *which other elements* are
//! computed alongside, never the per-element order, so results are
//! bit-for-bit identical to the reference kernels and independent of the
//! thread count (parallelism is over disjoint output-row ranges, as
//! everywhere else in this crate). The property tests in
//! `tests/gemm_props.rs` assert exact equality, not approximate.
//!
//! One caveat: the reference kernels keep the historical `a == 0.0` term
//! skip, the tiled kernels accumulate every term. Adding a `±0.0 · b`
//! term to a running sum never changes its value, so for finite operands
//! the two agree bit-for-bit except in one contrived corner (an output
//! whose every contribution is an exact zero can differ in the *sign* of
//! its zero — still `==` as floats); with non-finite operands
//! (`0.0 · inf = NaN`) they can genuinely differ. The autograd layer
//! debug-asserts finiteness of every node, so this only matters for
//! direct kernel callers feeding inf/NaN. Within each tiled kernel all
//! code paths (MR blocks and remainder rows) share one semantics, so
//! tiled results never depend on the thread count, non-finite or not.
//!
//! [`set_reference_kernels`] flips every product back to the naive loops
//! at runtime; the `train_throughput` benchmark uses it to measure the
//! tiled kernels against the pre-tiling baseline inside one process.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::par;

/// Register-tile height (rows of the left operand per micro-kernel call).
const MR: usize = 4;
/// Register-tile width (output columns per packed panel).
const NR: usize = 8;

static REFERENCE_KERNELS: AtomicBool = AtomicBool::new(false);

/// Routes all dense products through the naive reference loops (`true`)
/// or the register-tiled kernels (`false`, the default).
///
/// The switch exists so benchmarks can compare both inside one process;
/// results are bit-identical either way, only speed changes.
pub fn set_reference_kernels(on: bool) {
    REFERENCE_KERNELS.store(on, Ordering::Relaxed);
}

/// True when [`set_reference_kernels`] forced the naive loops.
pub fn reference_kernels_enabled() -> bool {
    REFERENCE_KERNELS.load(Ordering::Relaxed)
}

thread_local! {
    /// Scratch for packed right-hand-side panels, reused across calls so
    /// steady-state training performs no pack allocations.
    static PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `out = lhs @ rhs`; `lhs` is `m x k`, `rhs` is `k x n`, `out` is `m x n`
/// and is fully overwritten.
pub(crate) fn matmul_into(lhs: &[f32], m: usize, k: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(lhs.len(), m * k);
    debug_assert_eq!(rhs.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if reference_kernels_enabled() {
        matmul_reference_into(lhs, m, k, rhs, n, out);
    } else {
        matmul_tiled_into(lhs, m, k, rhs, n, out);
    }
}

/// The tiled `A @ B` path, bypassing the runtime kernel switch (tests
/// compare it against the reference directly, immune to the global flag).
fn matmul_tiled_into(lhs: &[f32], m: usize, k: usize, rhs: &[f32], n: usize, out: &mut [f32]) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    PACK.with(|pack| {
        let mut pack = pack.borrow_mut();
        pack_rhs(rhs, k, n, &mut pack);
        run_packed(lhs, k, n, &pack, m, out);
    });
}

/// `out = lhs @ rhs^T`; `lhs` is `m x k`, `rhs` is `n x k` (row-major, so
/// its rows are the logical columns), `out` is `m x n`, fully overwritten.
pub(crate) fn matmul_transb_into(
    lhs: &[f32],
    m: usize,
    k: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(lhs.len(), m * k);
    debug_assert_eq!(rhs.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if reference_kernels_enabled() {
        matmul_transb_reference_into(lhs, m, k, rhs, n, out);
    } else {
        matmul_transb_tiled_into(lhs, m, k, rhs, n, out);
    }
}

/// The tiled `A @ B^T` path, bypassing the runtime kernel switch.
fn matmul_transb_tiled_into(
    lhs: &[f32],
    m: usize,
    k: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    PACK.with(|pack| {
        let mut pack = pack.borrow_mut();
        pack_rhs_transposed(rhs, n, k, &mut pack);
        run_packed(lhs, k, n, &pack, m, out);
    });
}

/// `out = lhs^T @ rhs`; `lhs` is `m x k`, `rhs` is `m x n`, `out` is
/// `k x n`, fully overwritten. This is the backward-pass kernel
/// (`dW = X^T dY`) that previously required materialising a transpose.
pub(crate) fn matmul_transa_into(
    lhs: &[f32],
    m: usize,
    k: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(lhs.len(), m * k);
    debug_assert_eq!(rhs.len(), m * n);
    debug_assert_eq!(out.len(), k * n);
    if reference_kernels_enabled() {
        matmul_transa_reference_into(lhs, m, k, rhs, n, out);
    } else {
        matmul_transa_tiled_into(lhs, m, k, rhs, n, out);
    }
}

/// The tiled `A^T @ B` path, bypassing the runtime kernel switch.
fn matmul_transa_tiled_into(
    lhs: &[f32],
    m: usize,
    k: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
) {
    if k == 0 || n == 0 {
        return;
    }
    if m == 0 {
        out.fill(0.0);
        return;
    }
    par::for_each_row_chunk(out, n, k, |i0, chunk| {
        transa_chunk(lhs, k, rhs, n, i0, chunk);
    });
}

/// Packs `rhs` (`k x n` row-major) into `ceil(n / NR)` column panels, each
/// `k x NR` with `t`-major layout, zero-padded on the right edge.
fn pack_rhs(rhs: &[f32], k: usize, n: usize, packed: &mut Vec<f32>) {
    let panels = n.div_ceil(NR);
    grow_scratch(packed, panels * k * NR);
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let dst = &mut packed[p * k * NR..(p + 1) * k * NR];
        for t in 0..k {
            dst[t * NR..t * NR + w].copy_from_slice(&rhs[t * n + j0..t * n + j0 + w]);
            // Only the right-edge panel has padding lanes; zero exactly
            // those rather than memsetting the whole scratch per call.
            dst[t * NR + w..(t + 1) * NR].fill(0.0);
        }
    }
}

/// Packs `rhs` (`n x k` row-major, logically transposed) into the same
/// panel layout as [`pack_rhs`]: `panel[t * NR + jj] = rhs[(j0 + jj) * k + t]`.
fn pack_rhs_transposed(rhs: &[f32], n: usize, k: usize, packed: &mut Vec<f32>) {
    let panels = n.div_ceil(NR);
    grow_scratch(packed, panels * k * NR);
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let dst = &mut packed[p * k * NR..(p + 1) * k * NR];
        for jj in 0..w {
            let src = &rhs[(j0 + jj) * k..(j0 + jj + 1) * k];
            for (t, &v) in src.iter().enumerate() {
                dst[t * NR + jj] = v;
            }
        }
        if w < NR {
            for t in 0..k {
                dst[t * NR + w..(t + 1) * NR].fill(0.0);
            }
        }
    }
}

/// Grows the pack scratch to at least `len` elements without touching the
/// prefix the packers are about to overwrite anyway.
fn grow_scratch(packed: &mut Vec<f32>, len: usize) {
    if packed.len() < len {
        packed.resize(len, 0.0);
    }
}

/// Shared driver for the packed-panel kernels: splits output rows across
/// threads, then walks MR-row blocks against every panel.
fn run_packed(lhs: &[f32], k: usize, n: usize, packed: &[f32], m: usize, out: &mut [f32]) {
    par::for_each_row_chunk(out, n, m, |r0, chunk| {
        let rows = chunk.len() / n;
        let mut i = 0;
        while i + MR <= rows {
            let base = (r0 + i) * k;
            let l = [
                &lhs[base..base + k],
                &lhs[base + k..base + 2 * k],
                &lhs[base + 2 * k..base + 3 * k],
                &lhs[base + 3 * k..base + 4 * k],
            ];
            for (p, j0) in (0..n).step_by(NR).enumerate() {
                let panel = &packed[p * k * NR..(p + 1) * k * NR];
                let acc = kernel_mr(l, panel);
                let w = NR.min(n - j0);
                for (ii, acc_row) in acc.iter().enumerate() {
                    let at = (i + ii) * n + j0;
                    chunk[at..at + w].copy_from_slice(&acc_row[..w]);
                }
            }
            i += MR;
        }
        while i < rows {
            let base = (r0 + i) * k;
            let lrow = &lhs[base..base + k];
            for (p, j0) in (0..n).step_by(NR).enumerate() {
                let panel = &packed[p * k * NR..(p + 1) * k * NR];
                let acc = kernel_1(lrow, panel);
                let w = NR.min(n - j0);
                chunk[i * n + j0..i * n + j0 + w].copy_from_slice(&acc[..w]);
            }
            i += 1;
        }
    });
}

/// The MR x NR micro-kernel: MR lhs row streams against one packed panel.
/// Every accumulator walks `t` (the reduction index) in increasing order.
#[inline]
fn kernel_mr(l: [&[f32]; MR], panel: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    let iter = l[0]
        .iter()
        .zip(l[1])
        .zip(l[2])
        .zip(l[3])
        .zip(panel.chunks_exact(NR));
    for ((((&a0, &a1), &a2), &a3), bp) in iter {
        for (o, &b) in acc[0].iter_mut().zip(bp) {
            *o += a0 * b;
        }
        for (o, &b) in acc[1].iter_mut().zip(bp) {
            *o += a1 * b;
        }
        for (o, &b) in acc[2].iter_mut().zip(bp) {
            *o += a2 * b;
        }
        for (o, &b) in acc[3].iter_mut().zip(bp) {
            *o += a3 * b;
        }
    }
    acc
}

/// Single-row edge kernel (for `m % MR` remainder rows).
#[inline]
fn kernel_1(l: &[f32], panel: &[f32]) -> [f32; NR] {
    let mut acc = [0.0f32; NR];
    for (&a, bp) in l.iter().zip(panel.chunks_exact(NR)) {
        for (o, &b) in acc.iter_mut().zip(bp) {
            *o += a * b;
        }
    }
    acc
}

/// One thread's share of `lhs^T @ rhs`: output rows `i0..i0 + rows(chunk)`.
/// The reduction walks source rows `r` in increasing order; per `r` the MR
/// lhs values (`lhs[r][ic..ic+MR]`) and NR rhs values (`rhs[r][j0..j0+NR]`)
/// are contiguous loads, so no packing is needed.
fn transa_chunk(lhs: &[f32], k: usize, rhs: &[f32], n: usize, i0: usize, chunk: &mut [f32]) {
    let cols = chunk.len() / n;
    let mut i = 0;
    while i + MR <= cols {
        let ic = i0 + i;
        let mut j0 = 0;
        while j0 + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for (a_row, g_row) in lhs.chunks_exact(k).zip(rhs.chunks_exact(n)) {
                let a = &a_row[ic..ic + MR];
                let g = &g_row[j0..j0 + NR];
                for (acc_row, &av) in acc.iter_mut().zip(a) {
                    for (o, &gv) in acc_row.iter_mut().zip(g) {
                        *o += av * gv;
                    }
                }
            }
            for (ii, acc_row) in acc.iter().enumerate() {
                let at = (i + ii) * n + j0;
                chunk[at..at + NR].copy_from_slice(acc_row);
            }
            j0 += NR;
        }
        if j0 < n {
            let w = n - j0;
            let mut acc = [[0.0f32; NR]; MR];
            for (a_row, g_row) in lhs.chunks_exact(k).zip(rhs.chunks_exact(n)) {
                let a = &a_row[ic..ic + MR];
                let g = &g_row[j0..];
                for (acc_row, &av) in acc.iter_mut().zip(a) {
                    for (o, &gv) in acc_row.iter_mut().zip(g) {
                        *o += av * gv;
                    }
                }
            }
            for (ii, acc_row) in acc.iter().enumerate() {
                let at = (i + ii) * n + j0;
                chunk[at..at + w].copy_from_slice(&acc_row[..w]);
            }
        }
        i += MR;
    }
    while i < cols {
        let ic = i0 + i;
        let out_row = &mut chunk[i * n..(i + 1) * n];
        out_row.fill(0.0);
        // No zero-skip here: which rows take this remainder path depends
        // on the per-thread chunk split, so it must share the MR block's
        // exact semantics (accumulate every term) to keep results
        // independent of the thread count even for non-finite inputs.
        for (a_row, g_row) in lhs.chunks_exact(k).zip(rhs.chunks_exact(n)) {
            let a = a_row[ic];
            for (o, &gv) in out_row.iter_mut().zip(g_row) {
                *o += a * gv;
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Reference kernels: the pre-tiling loops, byte-for-byte the same results.
// Kept callable for property tests and as the benchmark baseline.
// ---------------------------------------------------------------------------

/// Naive i-k-j product (the pre-tiling `Matrix::matmul` loop).
pub(crate) fn matmul_reference_into(
    lhs: &[f32],
    m: usize,
    k: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
) {
    par::for_each_row_chunk(out, n, m, |r0, chunk| {
        for (local_r, out_row) in chunk.chunks_exact_mut(n.max(1)).enumerate() {
            out_row.fill(0.0);
            let r = r0 + local_r;
            let lhs_row = &lhs[r * k..(r + 1) * k];
            for (t, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs[t * n..(t + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
    });
}

/// Naive row-dot-row product (the pre-tiling `Matrix::matmul_transb` loop).
pub(crate) fn matmul_transb_reference_into(
    lhs: &[f32],
    m: usize,
    k: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
) {
    par::for_each_row_chunk(out, n, m, |r0, chunk| {
        for (local_r, out_row) in chunk.chunks_exact_mut(n.max(1)).enumerate() {
            let r = r0 + local_r;
            let lhs_row = &lhs[r * k..(r + 1) * k];
            for (c, o) in out_row.iter_mut().enumerate() {
                let rhs_row = &rhs[c * k..(c + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in lhs_row.iter().zip(rhs_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
    });
}

/// Naive `lhs^T @ rhs` (equivalent to `lhs.transpose().matmul(rhs)`, the
/// pre-PR backward path, without materialising the transpose).
pub(crate) fn matmul_transa_reference_into(
    lhs: &[f32],
    _m: usize,
    k: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
) {
    par::for_each_row_chunk(out, n, k, |i0, chunk| {
        chunk.fill(0.0);
        let cols = chunk.len() / n.max(1);
        for (a_row, g_row) in lhs.chunks_exact(k.max(1)).zip(rhs.chunks_exact(n.max(1))) {
            for (i, out_row) in chunk.chunks_exact_mut(n.max(1)).enumerate().take(cols) {
                let a = a_row[i0 + i];
                if a == 0.0 {
                    continue;
                }
                for (o, &gv) in out_row.iter_mut().zip(g_row) {
                    *o += a * gv;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, f: impl Fn(usize) -> f32) -> Vec<f32> {
        (0..rows * cols).map(f).collect()
    }

    fn pseudo(i: usize) -> f32 {
        ((i * 2654435761) % 1000) as f32 / 500.0 - 1.0
    }

    #[test]
    fn tiled_matmul_matches_reference_bitwise() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 8, 8),
            (5, 7, 9),
            (13, 1, 17),
            (1, 32, 1),
            (33, 19, 41),
        ] {
            let a = mat(m, k, pseudo);
            let b = mat(k, n, |i| pseudo(i + 7));
            let mut tiled = vec![f32::NAN; m * n];
            let mut naive = vec![f32::NAN; m * n];
            // Tiled path invoked directly so a concurrently-running
            // `reference_switch_round_trips` cannot make this vacuous.
            matmul_tiled_into(&a, m, k, &b, n, &mut tiled);
            matmul_reference_into(&a, m, k, &b, n, &mut naive);
            assert!(
                tiled
                    .iter()
                    .zip(&naive)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "mismatch at ({m}, {k}, {n})"
            );
        }
    }

    #[test]
    fn tiled_transb_matches_reference_bitwise() {
        for &(m, k, n) in &[(1, 3, 1), (4, 8, 8), (6, 5, 11), (17, 64, 3)] {
            let a = mat(m, k, pseudo);
            let b = mat(n, k, |i| pseudo(i + 3));
            let mut tiled = vec![f32::NAN; m * n];
            let mut naive = vec![f32::NAN; m * n];
            matmul_transb_tiled_into(&a, m, k, &b, n, &mut tiled);
            matmul_transb_reference_into(&a, m, k, &b, n, &mut naive);
            assert!(
                tiled
                    .iter()
                    .zip(&naive)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "mismatch at ({m}, {k}, {n})"
            );
        }
    }

    #[test]
    fn tiled_transa_matches_reference_bitwise() {
        for &(m, k, n) in &[(1, 1, 1), (8, 4, 8), (9, 6, 10), (3, 21, 33)] {
            let a = mat(m, k, pseudo);
            let g = mat(m, n, |i| pseudo(i + 11));
            let mut tiled = vec![f32::NAN; k * n];
            let mut naive = vec![f32::NAN; k * n];
            matmul_transa_tiled_into(&a, m, k, &g, n, &mut tiled);
            matmul_transa_reference_into(&a, m, k, &g, n, &mut naive);
            assert!(
                tiled
                    .iter()
                    .zip(&naive)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "mismatch at ({m}, {k}, {n})"
            );
        }
    }

    #[test]
    fn reference_switch_round_trips() {
        assert!(!reference_kernels_enabled());
        set_reference_kernels(true);
        assert!(reference_kernels_enabled());
        set_reference_kernels(false);
        assert!(!reference_kernels_enabled());
    }
}
