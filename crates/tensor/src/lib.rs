//! # smgcn-tensor — neural substrate for the SMGCN reproduction
//!
//! The original SMGCN implementation (Jin et al., ICDE 2020) is written in
//! TensorFlow. No ML framework is available in this offline build, so this
//! crate provides the complete substrate the paper's models need:
//!
//! - [`matrix`] — dense row-major `f32` matrices with the kernels every
//!   layer is built from (GEMM, transposed GEMM, concat/split, reductions),
//!   parallelised deterministically over output rows;
//! - [`gemm`] — the register-tiled GEMM micro-kernels behind every dense
//!   product, bit-identical to the naive reference loops they replace;
//! - [`sparse`] — CSR adjacency matrices and sparse-dense products for
//!   graph convolutions and set pooling, nnz-balanced across threads;
//! - [`pool`] — a step-scoped buffer recycler so steady-state training
//!   allocates nothing in the hot loop;
//! - [`tape`] — define-by-run reverse-mode autograd over a persistent
//!   [`tape::ParamStore`], with one op per primitive the paper's equations
//!   use;
//! - [`optim`] — Adam (the paper's optimizer) and SGD, with the paper's
//!   `λ‖Θ‖²` regularisation realised as weight decay;
//! - [`init`] — Xavier initialisation (the paper's initializer) and seeded
//!   RNG plumbing;
//! - [`gradcheck`] — finite-difference validation used by the test suite to
//!   certify every backward formula;
//! - [`checkpoint`] — binary save/load of trained parameter stores.
//!
//! ## Example
//!
//! ```
//! use smgcn_tensor::prelude::*;
//!
//! // Fit y = x.W with a two-parameter model.
//! let mut rng = seeded_rng(42);
//! let mut store = ParamStore::new();
//! let w = store.add("w", xavier_uniform(2, 1, &mut rng));
//! let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
//! let y = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
//! let mut adam = Adam::new(0.05);
//! let mut final_loss = f32::INFINITY;
//! for _ in 0..400 {
//!     let mut tape = Tape::new(&store);
//!     let vx = tape.input(x.clone());
//!     let vw = tape.param(w);
//!     let pred = tape.matmul(vx, vw);
//!     let target = tape.input(y.clone());
//!     let diff = tape.sub(pred, target);
//!     let loss = tape.sum_squares(diff);
//!     final_loss = tape.value(loss).get(0, 0);
//!     let grads = tape.backward(loss);
//!     adam.step(&mut store, &grads);
//! }
//! assert!(final_loss < 1e-2);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod gemm;
pub mod gradcheck;
pub mod init;
pub mod matrix;
pub mod optim;
pub mod par;
pub mod pool;
pub mod sparse;
pub mod tape;

pub use gemm::{reference_kernels_enabled, set_reference_kernels};
pub use matrix::Matrix;
pub use pool::{BufferPool, PoolStats};
pub use sparse::{CsrMatrix, SharedCsr};
pub use tape::{Gradients, ParamId, ParamStore, Tape, Var};

/// Common imports for model code.
pub mod prelude {
    pub use crate::gradcheck::{compare, finite_diff_grad};
    pub use crate::init::{seeded_rng, xavier_normal, xavier_uniform};
    pub use crate::matrix::Matrix;
    pub use crate::optim::{Adam, Optimizer, Sgd};
    pub use crate::sparse::{CsrMatrix, SharedCsr};
    pub use crate::tape::{Gradients, ParamId, ParamStore, Tape, Var};
}
