//! Binary checkpointing for [`ParamStore`]s.
//!
//! A small self-describing format (magic + version + named tensors,
//! little-endian `f32`) so trained models survive process restarts:
//!
//! ```text
//! "SMGT" | u32 version | u64 n_params |
//!   per param: u64 name_len | name bytes | u64 rows | u64 cols | f32*rows*cols
//! ```
//!
//! Loading back into a model requires the architecture to match; mismatched
//! names or shapes are hard errors, not silent truncation.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::matrix::Matrix;
use crate::tape::ParamStore;

const MAGIC: &[u8; 4] = b"SMGT";
const VERSION: u32 = 1;

/// Checkpoint IO errors.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural problem in the file or a model mismatch.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn write_u64(w: &mut impl Write, v: u64) -> Result<(), CheckpointError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u64(r: &mut impl Read) -> Result<u64, CheckpointError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Serialises every parameter (names, shapes, values) to a writer.
pub fn write_store(store: &ParamStore, w: impl Write) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_u64(&mut w, store.len() as u64)?;
    for (_, name, value) in store.iter() {
        write_u64(&mut w, name.len() as u64)?;
        w.write_all(name.as_bytes())?;
        write_u64(&mut w, value.rows() as u64)?;
        write_u64(&mut w, value.cols() as u64)?;
        for v in value.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Saves a store to a file path.
pub fn save_store(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    write_store(store, std::fs::File::create(path)?)
}

/// Reads a checkpoint into a fresh [`ParamStore`] (names and values only;
/// the caller re-associates ids by construction order or name).
pub fn read_store(r: impl Read) -> Result<ParamStore, CheckpointError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format(format!("bad magic {magic:?}")));
    }
    let mut version = [0u8; 4];
    r.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let n = read_u64(&mut r)? as usize;
    let mut store = ParamStore::new();
    for _ in 0..n {
        let name_len = read_u64(&mut r)? as usize;
        if name_len > 1 << 20 {
            return Err(CheckpointError::Format(format!(
                "implausible name length {name_len}"
            )));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|e| CheckpointError::Format(format!("non-utf8 name: {e}")))?;
        let rows = read_u64(&mut r)? as usize;
        let cols = read_u64(&mut r)? as usize;
        if rows.saturating_mul(cols) > 1 << 30 {
            return Err(CheckpointError::Format(format!(
                "implausible tensor shape {rows}x{cols}"
            )));
        }
        let mut data = vec![0f32; rows * cols];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        store.add(name, Matrix::from_vec(rows, cols, data));
    }
    Ok(store)
}

/// Loads a store from a file path.
pub fn load_store(path: impl AsRef<Path>) -> Result<ParamStore, CheckpointError> {
    read_store(std::fs::File::open(path)?)
}

/// Copies values from `loaded` into `target`, matching parameters by name.
///
/// Every target parameter must be present in `loaded` with identical shape;
/// extra tensors in `loaded` are an error too (they indicate an
/// architecture mismatch).
pub fn restore_into(target: &mut ParamStore, loaded: &ParamStore) -> Result<(), CheckpointError> {
    if target.len() != loaded.len() {
        return Err(CheckpointError::Format(format!(
            "parameter count mismatch: model has {}, checkpoint has {}",
            target.len(),
            loaded.len()
        )));
    }
    let ids: Vec<_> = target
        .iter()
        .map(|(id, name, value)| (id, name.to_string(), value.shape()))
        .collect();
    for (id, name, shape) in ids {
        let found = loaded.iter().find(|(_, n, _)| *n == name).ok_or_else(|| {
            CheckpointError::Format(format!("checkpoint missing parameter {name:?}"))
        })?;
        if found.2.shape() != shape {
            return Err(CheckpointError::Format(format!(
                "shape mismatch for {name:?}: model {shape:?}, checkpoint {:?}",
                found.2.shape()
            )));
        }
        let value = found.2.clone();
        *target.get_mut(id) = value;
    }
    Ok(())
}

/// Copies values from `loaded` into `target` like [`restore_into`], but
/// tolerates **row growth**: a target parameter may have *more rows* than
/// its checkpointed counterpart (same column count), in which case the
/// checkpoint fills the leading rows and the target keeps its fresh
/// initialisation for the tail.
///
/// This is the warm-start path for a grown vocabulary: embedding tables
/// are `|S| x d` / `|H| x d` and ids are append-only, so a model rebuilt
/// over the grown corpus resumes every previously-trained row verbatim
/// while newly-appended entities start from their initialiser. Any other
/// shape difference (column mismatch, target smaller than checkpoint) is
/// still a hard error — ids never shrink or renumber.
pub fn restore_into_grown(
    target: &mut ParamStore,
    loaded: &ParamStore,
) -> Result<(), CheckpointError> {
    if target.len() != loaded.len() {
        return Err(CheckpointError::Format(format!(
            "parameter count mismatch: model has {}, checkpoint has {}",
            target.len(),
            loaded.len()
        )));
    }
    let ids: Vec<_> = target
        .iter()
        .map(|(id, name, value)| (id, name.to_string(), value.shape()))
        .collect();
    for (id, name, (rows, cols)) in ids {
        let found = loaded.iter().find(|(_, n, _)| *n == name).ok_or_else(|| {
            CheckpointError::Format(format!("checkpoint missing parameter {name:?}"))
        })?;
        let (l_rows, l_cols) = found.2.shape();
        if l_cols != cols || l_rows > rows {
            return Err(CheckpointError::Format(format!(
                "shape mismatch for {name:?}: model ({rows}, {cols}), checkpoint \
                 ({l_rows}, {l_cols}) — only row growth is warm-startable"
            )));
        }
        if l_rows == rows {
            let value = found.2.clone();
            *target.get_mut(id) = value;
        } else {
            let source = found.2.clone();
            let dest = target.get_mut(id);
            for r in 0..l_rows {
                dest.row_mut(r).copy_from_slice(source.row(r));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{seeded_rng, xavier_uniform};

    fn sample_store() -> ParamStore {
        let mut rng = seeded_rng(5);
        let mut store = ParamStore::new();
        store.add("layer.w", xavier_uniform(4, 6, &mut rng));
        store.add("layer.b", Matrix::zeros(1, 6));
        store.add("emb", xavier_uniform(10, 4, &mut rng));
        store
    }

    #[test]
    fn round_trip_preserves_everything() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let loaded = read_store(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), store.len());
        for ((_, n1, v1), (_, n2, v2)) in store.iter().zip(loaded.iter()) {
            assert_eq!(n1, n2);
            assert!(v1.approx_eq(v2, 0.0));
        }
    }

    #[test]
    fn restore_into_matches_by_name() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let loaded = read_store(buf.as_slice()).unwrap();
        // A freshly initialised model with the same architecture.
        let mut fresh = sample_store();
        let first_id = fresh.iter().next().unwrap().0;
        fresh.get_mut(first_id).scale_assign(0.0);
        restore_into(&mut fresh, &loaded).unwrap();
        for ((_, _, v1), (_, _, v2)) in fresh.iter().zip(store.iter()) {
            assert!(v1.approx_eq(v2, 0.0));
        }
    }

    #[test]
    fn restore_into_grown_prefixes_rows_and_keeps_tail() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let loaded = read_store(buf.as_slice()).unwrap();
        // Same architecture but the "emb" table grew 10 -> 13 rows
        // (vocabulary appended three entities).
        let mut rng = seeded_rng(99);
        let mut grown = ParamStore::new();
        grown.add("layer.w", xavier_uniform(4, 6, &mut rng));
        grown.add("layer.b", Matrix::filled(1, 6, 0.25));
        let fresh_emb = xavier_uniform(13, 4, &mut rng);
        let emb_id = grown.add("emb", fresh_emb.clone());
        restore_into_grown(&mut grown, &loaded).unwrap();
        let emb = grown.get(emb_id).clone();
        let old_emb = store.iter().find(|(_, n, _)| *n == "emb").unwrap().2;
        for r in 0..10 {
            assert_eq!(emb.row(r), old_emb.row(r), "trained row {r} must resume");
        }
        for r in 10..13 {
            assert_eq!(emb.row(r), fresh_emb.row(r), "new row {r} keeps its init");
        }
        // Exact-shape parameters restore wholesale.
        let b = grown.iter().find(|(_, n, _)| *n == "layer.b").unwrap().2;
        assert_eq!(b.get(0, 0), 0.0, "layer.b came from the checkpoint");
    }

    #[test]
    fn restore_into_grown_rejects_shrink_and_col_change() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let loaded = read_store(buf.as_slice()).unwrap();
        // Fewer rows than the checkpoint: ids never shrink.
        let mut shrunk = ParamStore::new();
        shrunk.add("layer.w", Matrix::zeros(4, 6));
        shrunk.add("layer.b", Matrix::zeros(1, 6));
        shrunk.add("emb", Matrix::zeros(7, 4));
        assert!(restore_into_grown(&mut shrunk, &loaded).is_err());
        // Column growth is an architecture change, not vocabulary growth.
        let mut widened = ParamStore::new();
        widened.add("layer.w", Matrix::zeros(4, 6));
        widened.add("layer.b", Matrix::zeros(1, 6));
        widened.add("emb", Matrix::zeros(10, 5));
        assert!(restore_into_grown(&mut widened, &loaded).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_store(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)), "{err}");
    }

    #[test]
    fn truncated_file_rejected() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_store(buf.as_slice()).is_err());
    }

    #[test]
    fn restore_rejects_shape_mismatch() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let loaded = read_store(buf.as_slice()).unwrap();
        let mut wrong = ParamStore::new();
        wrong.add("layer.w", Matrix::zeros(3, 3));
        wrong.add("layer.b", Matrix::zeros(1, 6));
        wrong.add("emb", Matrix::zeros(10, 4));
        let err = restore_into(&mut wrong, &loaded).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"), "{err}");
    }

    #[test]
    fn restore_rejects_count_mismatch() {
        let store = sample_store();
        let mut buf = Vec::new();
        write_store(&store, &mut buf).unwrap();
        let loaded = read_store(buf.as_slice()).unwrap();
        let mut wrong = ParamStore::new();
        wrong.add("only", Matrix::zeros(1, 1));
        assert!(restore_into(&mut wrong, &loaded).is_err());
    }

    #[test]
    fn file_round_trip() {
        let store = sample_store();
        let dir = std::env::temp_dir().join("smgcn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.smgt");
        save_store(&store, &path).unwrap();
        let loaded = load_store(&path).unwrap();
        assert_eq!(loaded.len(), 3);
        std::fs::remove_file(&path).ok();
    }
}
