//! Compressed-sparse-row matrices for graph adjacency structure.
//!
//! Every graph in the paper — the symptom–herb bipartite graph `SH`, the
//! synergy graphs `SS`/`HH`, and the per-batch symptom-set pooling matrix —
//! is a sparse 0/1 (or row-normalised) matrix that stays *fixed* during
//! training. The autograd layer therefore treats CSR matrices as constants
//! and only differentiates through the dense operand of [`CsrMatrix::spmm`].

use crate::matrix::Matrix;
use crate::par;

/// A sparse matrix in compressed-sparse-row format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `indptr[r]..indptr[r+1]` bounds row `r`'s entries; length `rows + 1`.
    indptr: Vec<usize>,
    /// Column index per stored entry, sorted within each row.
    indices: Vec<u32>,
    /// Stored value per entry.
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may arrive in any order; duplicates are summed. Entries that
    /// sum to exactly zero are still stored (callers filter beforehand when
    /// they care).
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "CsrMatrix::from_triplets: entry ({r}, {c}) out of bounds for {rows}x{cols}"
            );
        }
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        indptr.push(0);
        let mut current_row = 0usize;
        for &(r, c, v) in &sorted {
            let r = r as usize;
            while current_row < r {
                indptr.push(indices.len());
                current_row += 1;
            }
            if let (Some(&last_c), Some(last_v)) = (indices.last(), values.last_mut()) {
                if indptr.len() - 1 == r && last_c == c && indptr[r] < indices.len() {
                    *last_v += v;
                    continue;
                }
            }
            indices.push(c);
            values.push(v);
        }
        while current_row < rows {
            indptr.push(indices.len());
            current_row += 1;
        }
        debug_assert_eq!(indptr.len(), rows + 1);
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// An all-zero sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Sparse identity.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Stored entries of row `r` as parallel `(column, value)` slices.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `r` (the node degree for 0/1 graphs).
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Iterates over all stored `(row, col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r as u32, c, v))
        })
    }

    /// Value at `(r, c)`, zero when not stored.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Returns the transpose in CSR form.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut next = counts;
        for (r, c, v) in self.iter() {
            let slot = next[c as usize];
            indices[slot] = r;
            values[slot] = v;
            next[c as usize] += 1;
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Scales each row by `1 / row_sum` (rows with zero sum are left as-is),
    /// producing the mean-aggregation operator `1/|N(v)| * A` used by
    /// Bipar-GCN message merging (Eqs. 2, 3, 7, 9).
    pub fn row_normalized(&self) -> CsrMatrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let lo = out.indptr[r];
            let hi = out.indptr[r + 1];
            let sum: f32 = out.values[lo..hi].iter().sum();
            if sum != 0.0 {
                let inv = 1.0 / sum;
                for v in &mut out.values[lo..hi] {
                    *v *= inv;
                }
            }
        }
        out
    }

    /// Sparse-dense product `self @ dense`.
    ///
    /// Parallelised over output-row chunks balanced by *stored-entry
    /// count*, not row count: the co-occurrence graphs are heavily skewed
    /// (hub symptoms/herbs own most edges), so equal-row chunks would
    /// leave most threads idle. Each output row still accumulates
    /// sequentially, so results are deterministic and independent of the
    /// thread count.
    ///
    /// # Panics
    /// Panics if `self.cols != dense.rows`.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, dense.cols());
        self.spmm_into(dense, &mut out);
        out
    }

    /// [`spmm`](Self::spmm) into a caller-provided output buffer (fully
    /// overwritten), for allocation-free hot loops.
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn spmm_into(&self, dense: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            dense.rows(),
            "CsrMatrix::spmm: inner dimensions differ ({}x{} @ {}x{})",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        assert_eq!(
            out.shape(),
            (self.rows, dense.cols()),
            "CsrMatrix::spmm_into: output shape {:?} does not match {}x{}",
            out.shape(),
            self.rows,
            dense.cols()
        );
        let n = dense.cols();
        let dense_data = dense.as_slice();
        par::for_each_row_chunk_balanced(
            out.as_mut_slice(),
            n,
            self.rows,
            &self.indptr,
            |r0, chunk| {
                for (local_r, out_row) in chunk.chunks_exact_mut(n.max(1)).enumerate() {
                    out_row.fill(0.0);
                    let r = r0 + local_r;
                    let (cols, vals) = self.row(r);
                    for (&c, &a) in cols.iter().zip(vals) {
                        let dense_row = &dense_data[c as usize * n..(c as usize + 1) * n];
                        for (o, &b) in out_row.iter_mut().zip(dense_row) {
                            *o += a * b;
                        }
                    }
                }
            },
        );
    }

    /// Densifies into a [`Matrix`] (test and debugging helper).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r as usize, c as usize, out.get(r as usize, c as usize) + v);
        }
        out
    }

    /// True if the matrix equals its transpose (synergy graphs must be).
    pub fn is_symmetric(&self) -> bool {
        self.rows == self.cols && *self == self.transpose()
    }
}

/// A sparse operator paired with its precomputed transpose, shared by
/// forward and backward passes of [`spmm`](CsrMatrix::spmm) in the autograd
/// tape. Graphs are fixed across training, so the transpose is built once.
#[derive(Clone, Debug)]
pub struct SharedCsr {
    forward: std::sync::Arc<CsrMatrix>,
    backward: std::sync::Arc<CsrMatrix>,
}

impl SharedCsr {
    /// Wraps a CSR matrix, precomputing its transpose.
    pub fn new(m: CsrMatrix) -> Self {
        let backward = m.transpose();
        Self {
            forward: std::sync::Arc::new(m),
            backward: std::sync::Arc::new(backward),
        }
    }

    /// The forward operator `A`.
    pub fn forward(&self) -> &CsrMatrix {
        &self.forward
    }

    /// The backward operator `A^T`.
    pub fn backward(&self) -> &CsrMatrix {
        &self.backward
    }

    /// Shape of the forward operator.
    pub fn shape(&self) -> (usize, usize) {
        self.forward.shape()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
    }

    #[test]
    fn from_triplets_orders_and_indexes() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 1, 2.5), (1, 0, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 3.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_triplets_rejects_oob() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn unsorted_triplets_match_sorted() {
        let t_sorted = [(0u32, 0u32, 1.0f32), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)];
        let t_shuffled = [(2u32, 1u32, 4.0f32), (0, 2, 2.0), (2, 0, 3.0), (0, 0, 1.0)];
        assert_eq!(
            CsrMatrix::from_triplets(3, 3, &t_sorted),
            CsrMatrix::from_triplets(3, 3, &t_shuffled)
        );
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn spmm_matches_dense_product() {
        let s = sample();
        let d = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5 - 2.0);
        let sparse_result = s.spmm(&d);
        let dense_result = s.to_dense().matmul(&d);
        assert!(sparse_result.approx_eq(&dense_result, 1e-6));
    }

    #[test]
    fn spmm_on_empty_rows_yields_zeros() {
        let s = CsrMatrix::zeros(2, 3);
        let d = Matrix::filled(3, 2, 1.0);
        let out = s.spmm(&d);
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let m = sample().row_normalized();
        assert!((m.get(0, 0) - 1.0 / 3.0).abs() < 1e-6);
        assert!((m.get(0, 2) - 2.0 / 3.0).abs() < 1e-6);
        // Empty row untouched.
        assert_eq!(m.row_nnz(1), 0);
        assert!((m.get(2, 0) + m.get(2, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let i = CsrMatrix::identity(3);
        let d = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        assert!(i.spmm(&d).approx_eq(&d, 0.0));
        assert!(i.is_symmetric());
    }

    #[test]
    fn symmetry_check() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(sym.is_symmetric());
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!asym.is_symmetric());
    }

    #[test]
    fn shared_csr_pairs_transpose() {
        let s = SharedCsr::new(sample());
        assert_eq!(s.backward().shape(), (3, 3));
        assert_eq!(s.forward().get(2, 0), s.backward().get(0, 2));
    }
}
