//! Dense row-major `f32` matrices and the kernels the autograd layer is built on.
//!
//! The matrix type is deliberately minimal: two dimensions, `f32` storage,
//! row-major layout. Every model in the SMGCN paper (Bipar-GCN, SGE, the
//! syndrome-induction MLP, all baselines) is expressible with 2-D tensors, so
//! a full n-d tensor type would only add indexing overhead.
//!
//! All binary kernels panic on shape mismatch with a message naming the
//! offending dimensions; shape errors in a training loop are programmer bugs,
//! not recoverable conditions.

use crate::gemm;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            writeln!(f)?;
            for r in 0..self.rows {
                writeln!(f, "  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix where entry `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a square identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// A `1 x values.len()` row vector.
    pub fn row_vector(values: Vec<f32>) -> Self {
        let cols = values.len();
        Self::from_vec(1, cols, values)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair, convenient for assertions.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable slice over row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice over row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Copies another matrix's contents into this one.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.assert_same_shape(src, "Matrix::copy_from");
        self.data.copy_from_slice(&src.data);
    }

    /// Element-wise sum, producing a new matrix.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "Matrix::add");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `out = self + other`, fully overwriting `out`.
    ///
    /// # Panics
    /// Panics if any shape differs.
    pub fn add_into(&self, other: &Matrix, out: &mut Matrix) {
        self.assert_same_shape(other, "Matrix::add_into");
        self.assert_same_shape(out, "Matrix::add_into(out)");
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a + b;
        }
    }

    /// In-place element-wise accumulation `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "Matrix::add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// In-place scaled accumulation `self += alpha * other`.
    pub fn add_scaled_assign(&mut self, other: &Matrix, alpha: f32) {
        self.assert_same_shape(other, "Matrix::add_scaled_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * *b;
        }
    }

    /// Element-wise difference, producing a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "Matrix::sub");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `out = self - other`, fully overwriting `out`.
    ///
    /// # Panics
    /// Panics if any shape differs.
    pub fn sub_into(&self, other: &Matrix, out: &mut Matrix) {
        self.assert_same_shape(other, "Matrix::sub_into");
        self.assert_same_shape(out, "Matrix::sub_into(out)");
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a - b;
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.assert_same_shape(other, "Matrix::hadamard");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `out = self ⊙ other`, fully overwriting `out`.
    ///
    /// # Panics
    /// Panics if any shape differs.
    pub fn hadamard_into(&self, other: &Matrix, out: &mut Matrix) {
        self.assert_same_shape(other, "Matrix::hadamard_into");
        self.assert_same_shape(out, "Matrix::hadamard_into(out)");
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a * b;
        }
    }

    /// In-place element-wise product `self ⊙= other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "Matrix::hadamard_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Scalar multiple, producing a new matrix.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `out = alpha * self`, fully overwriting `out`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn scale_into(&self, alpha: f32, out: &mut Matrix) {
        self.assert_same_shape(out, "Matrix::scale_into");
        for (o, &a) in out.data.iter_mut().zip(&self.data) {
            *o = a * alpha;
        }
    }

    /// In-place scalar multiplication.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Applies `f` to every entry, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `out[i] = f(self[i])` for every entry, fully overwriting `out`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn map_into(&self, out: &mut Matrix, f: impl Fn(f32) -> f32) {
        self.assert_same_shape(out, "Matrix::map_into");
        for (o, &a) in out.data.iter_mut().zip(&self.data) {
            *o = f(a);
        }
    }

    /// Dense matrix product `self @ other`.
    ///
    /// Routes through the register-tiled kernels in [`crate::gemm`]
    /// (4x8 tiles over a packed RHS panel). Each output element is still
    /// accumulated in increasing-`k` order by a single accumulator, and
    /// parallelism is over disjoint output-row chunks, so results are
    /// bit-for-bit deterministic regardless of thread count — and
    /// bit-identical to the naive reference kernel.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`matmul`](Self::matmul) into a caller-provided output buffer
    /// (fully overwritten), for allocation-free hot loops.
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "Matrix::matmul: inner dimensions differ ({}x{} @ {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "Matrix::matmul_into: output shape {:?} does not match {}x{}",
            out.shape(),
            self.rows,
            other.cols
        );
        gemm::matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
    }

    /// Dense matrix product with a transposed right operand: `self @ other^T`.
    ///
    /// This is the hot kernel for the prediction layer
    /// `g(sc, H) = e_syndrome(sc) . e_H^T` (Eq. 13): the RHS rows are
    /// transpose-packed into column panels, so no full transpose is
    /// materialised and the inner loop is the same tiled kernel as
    /// [`matmul`](Self::matmul).
    ///
    /// # Panics
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transb_into(other, &mut out);
        out
    }

    /// [`matmul_transb`](Self::matmul_transb) into a caller-provided
    /// output buffer (fully overwritten).
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_transb_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "Matrix::matmul_transb: inner dimensions differ ({}x{} @ ({}x{})^T)",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, other.rows),
            "Matrix::matmul_transb_into: output shape {:?} does not match {}x{}",
            out.shape(),
            self.rows,
            other.rows
        );
        gemm::matmul_transb_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            &mut out.data,
        );
    }

    /// Dense matrix product with a transposed *left* operand:
    /// `self^T @ other`.
    ///
    /// This is the backward-pass kernel: both `d/dB (A @ B)` and
    /// `d/dB (A @ B^T)` reduce to it. Equivalent to
    /// `self.transpose().matmul(other)` — bit-for-bit, including the
    /// accumulation order — without materialising the transpose.
    ///
    /// # Panics
    /// Panics if `self.rows != other.rows`.
    pub fn matmul_transa(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_transa_into(other, &mut out);
        out
    }

    /// [`matmul_transa`](Self::matmul_transa) into a caller-provided
    /// output buffer (fully overwritten).
    ///
    /// # Panics
    /// Panics on inner-dimension or output-shape mismatch.
    pub fn matmul_transa_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "Matrix::matmul_transa: inner dimensions differ (({}x{})^T @ {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            out.shape(),
            (self.cols, other.cols),
            "Matrix::matmul_transa_into: output shape {:?} does not match {}x{}",
            out.shape(),
            self.cols,
            other.cols
        );
        gemm::matmul_transa_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
    }

    /// `self @ other` through the naive pre-tiling loops (validation and
    /// benchmark baseline; results are bit-identical to `matmul`).
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul_reference: dim mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm::matmul_reference_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// `self @ other^T` through the naive pre-tiling loops.
    pub fn matmul_transb_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transb_reference: dim mismatch"
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        gemm::matmul_transb_reference_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.rows,
            &mut out.data,
        );
        out
    }

    /// `self^T @ other` through the naive loops (equivalent to
    /// `self.transpose().matmul(other)`).
    pub fn matmul_transa_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transa_reference: dim mismatch"
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        gemm::matmul_transa_reference_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
        out
    }

    /// Concatenates two matrices with equal row counts along the column axis.
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        self.concat_cols_into(other, &mut out);
        out
    }

    /// `out = [self || other]`, fully overwriting `out`.
    ///
    /// # Panics
    /// Panics if row counts or the output shape mismatch.
    pub fn concat_cols_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "Matrix::concat_cols: row counts differ ({} vs {})",
            self.rows, other.rows
        );
        let cols = self.cols + other.cols;
        assert_eq!(
            out.shape(),
            (self.rows, cols),
            "Matrix::concat_cols_into: output shape {:?} does not match {}x{}",
            out.shape(),
            self.rows,
            cols
        );
        for r in 0..self.rows {
            let dst = out.row_mut(r);
            dst[..self.cols].copy_from_slice(self.row(r));
            dst[self.cols..].copy_from_slice(other.row(r));
        }
    }

    /// Splits the matrix into two column blocks `[.., left_cols]` and the rest.
    ///
    /// # Panics
    /// Panics if `left_cols > self.cols`.
    pub fn split_cols(&self, left_cols: usize) -> (Matrix, Matrix) {
        assert!(
            left_cols <= self.cols,
            "Matrix::split_cols: split {} exceeds cols {}",
            left_cols,
            self.cols
        );
        let mut left = Matrix::zeros(self.rows, left_cols);
        let mut right = Matrix::zeros(self.rows, self.cols - left_cols);
        self.split_cols_into(&mut left, &mut right);
        (left, right)
    }

    /// Splits into two column blocks, fully overwriting both outputs; the
    /// split point is `left.cols()`.
    ///
    /// # Panics
    /// Panics unless `left` and `right` jointly tile this matrix's shape.
    pub fn split_cols_into(&self, left: &mut Matrix, right: &mut Matrix) {
        assert!(
            left.rows == self.rows
                && right.rows == self.rows
                && left.cols + right.cols == self.cols,
            "Matrix::split_cols_into: outputs {:?}/{:?} do not tile {:?}",
            left.shape(),
            right.shape(),
            self.shape()
        );
        let lc = left.cols;
        for r in 0..self.rows {
            let row = self.row(r);
            left.row_mut(r).copy_from_slice(&row[..lc]);
            right.row_mut(r).copy_from_slice(&row[lc..]);
        }
    }

    /// Gathers rows by index into a new matrix (embedding lookup).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[u32]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// Gathers rows by index, fully overwriting `out`.
    ///
    /// Index validation is hoisted out of the copy loop: every index is
    /// checked once up front, then rows are copied without per-row bounds
    /// checks. This lookup sits inside every embedding gather, so the
    /// check must not be paid `indices.len()` times.
    ///
    /// # Panics
    /// Panics if any index is out of bounds or the output shape mismatches.
    pub fn gather_rows_into(&self, indices: &[u32], out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (indices.len(), self.cols),
            "Matrix::gather_rows_into: output shape {:?} does not match {}x{}",
            out.shape(),
            indices.len(),
            self.cols
        );
        if let Some(&bad) = indices.iter().find(|&&i| i as usize >= self.rows) {
            panic!(
                "Matrix::gather_rows: index {bad} out of bounds for {} rows",
                self.rows
            );
        }
        let cols = self.cols;
        if cols == 0 {
            return;
        }
        for (dst, &idx) in out.data.chunks_exact_mut(cols).zip(indices) {
            let at = idx as usize * cols;
            // SAFETY: every index was validated above, so
            // `at + cols <= rows * cols = self.data.len()`.
            let src = unsafe { self.data.get_unchecked(at..at + cols) };
            dst.copy_from_slice(src);
        }
    }

    /// Column sums as a `1 x cols` row vector.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.col_sums_into(&mut out);
        out
    }

    /// Column sums into a `1 x cols` output buffer (fully overwritten).
    ///
    /// # Panics
    /// Panics if `out` is not `1 x cols`.
    pub fn col_sums_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (1, self.cols),
            "Matrix::col_sums_into: output shape {:?} is not 1x{}",
            out.shape(),
            self.cols
        );
        out.data.fill(0.0);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Sum of squared entries (`||A||_F^2`).
    pub fn sum_squares(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.sum_squares().sqrt()
    }

    /// Maximum absolute entry difference against `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        self.assert_same_shape(other, "Matrix::max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// True when every entry differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }

    /// True when every entry is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn zeros_and_filled_have_expected_entries() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Matrix::filled(3, 2, 1.5);
        assert!(f.as_slice().iter().all(|&v| v == 1.5));
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(1, 1), 11.0);
        assert_eq!(a.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert!(a.matmul(&i).approx_eq(&a, 0.0));
        assert!(i.matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = m(
            4,
            3,
            &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 0.0, 1.0, 2.0, 2.0, 2.0],
        );
        let direct = a.matmul_transb(&b);
        let via_t = a.matmul(&b.transpose());
        assert!(direct.approx_eq(&via_t, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_dim_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_is_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_sub_scale_hadamard() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn add_scaled_assign_accumulates() {
        let mut a = m(1, 2, &[1.0, 1.0]);
        let b = m(1, 2, &[2.0, 4.0]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn concat_and_split_round_trip() {
        let a = m(2, 2, &[1.0, 2.0, 5.0, 6.0]);
        let b = m(2, 3, &[3.0, 4.0, 0.0, 7.0, 8.0, 9.0]);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.shape(), (2, 5));
        assert_eq!(cat.row(0), &[1.0, 2.0, 3.0, 4.0, 0.0]);
        let (l, r) = cat.split_cols(2);
        assert!(l.approx_eq(&a, 0.0));
        assert!(r.approx_eq(&b, 0.0));
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let a = m(3, 2, &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.row(0), &[20.0, 21.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
        assert_eq!(g.row(2), &[20.0, 21.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rows_rejects_oob() {
        let a = Matrix::zeros(2, 2);
        let _ = a.gather_rows(&[5]);
    }

    #[test]
    fn col_sums_and_reductions() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.col_sums().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.sum_squares(), 91.0);
        assert!((a.frobenius_norm() - 91.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn large_matmul_parallel_matches_small_path() {
        // Exercises the chunked parallel path against a sequential reference.
        let a = Matrix::from_fn(257, 31, |r, c| ((r * 7 + c * 3) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(31, 65, |r, c| ((r * 5 + c) % 11) as f32 - 5.0);
        let fast = a.matmul(&b);
        let mut slow = Matrix::zeros(257, 65);
        for r in 0..257 {
            for k in 0..31 {
                for c in 0..65 {
                    let v = slow.get(r, c) + a.get(r, k) * b.get(k, c);
                    slow.set(r, c, v);
                }
            }
        }
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::zeros(1, 2);
        assert!(a.all_finite());
        a.set(0, 1, f32::NAN);
        assert!(!a.all_finite());
    }
}
