//! Property tests for the sticky traffic splitter.
//!
//! Three promises the experiment plane hangs off:
//!
//! - **proportionality** — over a large synthetic key population, each
//!   variant's assigned share lands within ±2% of its plan weight;
//! - **replica agreement** — a plan re-encoded through its canonical
//!   string (what replicas actually install) assigns every key exactly
//!   as the original, so a client sees one variant fleet-wide and
//!   across re-installs;
//! - **sticky updates** — updating the plan never reassigns a key
//!   whose variant's weight did not change; only shrink → grow moves
//!   happen.

use proptest::prelude::*;
use smgcn_experiment::{parse_weight_spec, SplitPlan, CONTROL};

/// Turn drawn candidate weights into a full plan spec (control absorbs
/// the remainder so the sum is always exactly 100).
fn weights_of(cands: &[u32]) -> Vec<(String, u32)> {
    let used: u32 = cands.iter().sum();
    let mut weights = vec![(CONTROL.to_string(), 100 - used)];
    for (i, w) in cands.iter().enumerate() {
        weights.push((format!("cand{i}"), *w));
    }
    weights
}

fn keys(n: usize, salt: u64) -> Vec<String> {
    (0..n).map(|i| format!("client-{salt}-{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn proportions_within_two_percent_of_weights(
        seed in 0u64..1_000_000,
        cands in proptest::collection::vec(0u32..25, 1..5),
    ) {
        let plan = SplitPlan::new(seed, 1, &weights_of(&cands)).unwrap();
        let ks = keys(100_000, seed);
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for k in &ks {
            *counts.entry(plan.assign(k).to_string()).or_default() += 1;
        }
        for (name, w) in plan.weights() {
            let got = *counts.get(name).unwrap_or(&0) as f64 / ks.len() as f64;
            let want = *w as f64 / 100.0;
            prop_assert!(
                (got - want).abs() <= 0.02,
                "variant {name}: share {got:.4} vs weight {want:.4}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn canonical_reinstall_assigns_identically(
        seed in 0u64..1_000_000,
        version in 1u64..1000,
        cands in proptest::collection::vec(0u32..25, 1..5),
    ) {
        let plan = SplitPlan::new(seed, version, &weights_of(&cands)).unwrap();
        let reinstalled = SplitPlan::from_canonical(&plan.to_canonical()).unwrap();
        prop_assert_eq!(&plan, &reinstalled);
        for k in keys(2_000, seed) {
            prop_assert_eq!(plan.assign(&k), reinstalled.assign(&k));
        }
        // A second replica building the plan from the same inputs (not
        // the canonical string) agrees too.
        let rebuilt = SplitPlan::new(seed, version, &weights_of(&cands)).unwrap();
        prop_assert_eq!(plan.to_canonical(), rebuilt.to_canonical());
    }

    #[test]
    fn update_moves_only_shrink_to_grow(
        seed in 0u64..1_000_000,
        before in proptest::collection::vec(0u32..25, 2..5),
        after_raw in proptest::collection::vec(0u32..25, 2..5),
    ) {
        // Same variant names before/after; weights redrawn.
        let n = before.len().min(after_raw.len());
        let before = &before[..n];
        let after = &after_raw[..n];
        let p1 = SplitPlan::new(seed, 1, &weights_of(before)).unwrap();
        let p2 = p1.update(&weights_of(after)).unwrap();
        prop_assert_eq!(p2.version(), 2);
        for k in keys(5_000, seed) {
            let from = p1.assign(&k);
            let to = p2.assign(&k);
            if p1.weight_of(from) == p2.weight_of(from) {
                prop_assert_eq!(
                    from, to,
                    "key {} reassigned although {}'s weight is unchanged", k, from
                );
            }
            if from != to {
                prop_assert!(
                    p2.weight_of(from).unwrap_or(0) < p1.weight_of(from).unwrap_or(0),
                    "key {} left {} which did not shrink", k, from
                );
                prop_assert!(
                    p2.weight_of(to).unwrap_or(0) > p1.weight_of(to).unwrap_or(0),
                    "key {} joined {} which did not grow", k, to
                );
            }
        }
    }
}

#[test]
fn spec_parsing_matches_manual_weights() {
    let parsed = parse_weight_spec("control:90, cand:10").unwrap();
    assert_eq!(
        parsed,
        vec![("control".to_string(), 90), ("cand".to_string(), 10)]
    );
    assert!(parse_weight_spec("control=90").is_err());
}
