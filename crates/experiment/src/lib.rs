//! Experiment plane for the SMGCN serving stack.
//!
//! Std-only building blocks shared by the replica, the router, and the
//! CLI:
//!
//! - [`SplitPlan`] — a seeded, versioned weighted traffic split over
//!   named variants. Assignment is sticky: a bucket map (100 buckets)
//!   is computed once at construction and carried verbatim through the
//!   wire codec, so every replica and every re-install agrees on the
//!   exact same key → variant mapping. Plan updates move buckets only
//!   from shrinking variants to growing ones, so a key whose variant's
//!   weight did not change is never reassigned.
//! - [`interleave`] — team-draft interleaving of two top-k rankings
//!   with per-position credit assignment and a seeded-permutation
//!   significance check.
//! - [`guardrail`] — promotion guardrails (error rate, p99 delta,
//!   minimum sample count) evaluated against per-variant stats.
//!
//! The crate depends on nothing but std; serialization uses a canonical
//! single-line string codec (like the fault plane's storm plans) so the
//! NDJSON wire can carry plans as ordinary JSON strings.

use std::collections::BTreeMap;
use std::fmt;

/// Reserved name of the baseline variant. Always present in a plan.
pub const CONTROL: &str = "control";

/// Number of hash buckets in a split plan. Weights are integer
/// percents summing to 100, so each bucket is exactly one percent.
pub const BUCKETS: usize = 100;

/// Seed minted for splits installed from a bare weight spec (no explicit
/// `"seed"`). Any fixed value works — determinism across replicas comes
/// from carrying the seed *in the canonical plan*, not from this choice.
pub const DEFAULT_SPLIT_SEED: u64 = 0x534d_4743_4e20;

/// FNV-1a 64-bit hash — stable across platforms and releases.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer — decorrelates the FNV output from the seed.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Minimal deterministic bit stream used for draft coins and
/// permutation flips. Not cryptographic.
struct BitStream {
    state: u64,
    word: u64,
    left: u32,
}

impl BitStream {
    fn new(seed: u64) -> Self {
        Self {
            state: seed,
            word: 0,
            left: 0,
        }
    }

    fn next_bit(&mut self) -> bool {
        if self.left == 0 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            self.word = splitmix64(self.state);
            self.left = 64;
        }
        let bit = self.word & 1 == 1;
        self.word >>= 1;
        self.left -= 1;
        bit
    }
}

/// Errors raised when building or parsing a [`SplitPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Weights are empty, or the reserved control entry is missing.
    MissingControl,
    /// A variant name is empty, repeated, or uses characters outside
    /// `[a-z0-9_-]`.
    BadName(String),
    /// Weights do not sum to exactly 100.
    BadSum(u32),
    /// A canonical string failed to parse; the payload says where.
    BadCanonical(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::MissingControl => write!(f, "plan must include a '{CONTROL}' entry"),
            PlanError::BadName(n) => write!(f, "bad variant name {n:?} (want [a-z0-9_-]+)"),
            PlanError::BadSum(s) => write!(f, "weights sum to {s}, want exactly 100"),
            PlanError::BadCanonical(why) => write!(f, "bad canonical plan: {why}"),
        }
    }
}

impl std::error::Error for PlanError {}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
}

/// A seeded, versioned weighted traffic split over named variants.
///
/// The bucket map is part of the plan's identity: it is computed once
/// (at [`SplitPlan::new`] or derived by [`SplitPlan::update`]) and
/// carried through [`SplitPlan::to_canonical`], so two replicas that
/// install the same canonical string agree bit-for-bit on every
/// assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitPlan {
    version: u64,
    seed: u64,
    weights: Vec<(String, u32)>,
    buckets: Vec<u8>, // BUCKETS entries, each an index into `weights`
}

impl SplitPlan {
    /// Build a fresh plan. `weights` are integer percents that must sum
    /// to exactly 100 and must include [`CONTROL`]. Buckets are filled
    /// contiguously in the given order.
    pub fn new(seed: u64, version: u64, weights: &[(String, u32)]) -> Result<Self, PlanError> {
        Self::validate(weights)?;
        let mut buckets = Vec::with_capacity(BUCKETS);
        for (idx, (_, w)) in weights.iter().enumerate() {
            for _ in 0..*w {
                buckets.push(idx as u8);
            }
        }
        debug_assert_eq!(buckets.len(), BUCKETS);
        Ok(Self {
            version,
            seed,
            weights: weights.to_vec(),
            buckets,
        })
    }

    fn validate(weights: &[(String, u32)]) -> Result<(), PlanError> {
        let mut seen = std::collections::BTreeSet::new();
        for (name, _) in weights {
            if !valid_name(name) {
                return Err(PlanError::BadName(name.clone()));
            }
            if !seen.insert(name.as_str()) {
                return Err(PlanError::BadName(name.clone()));
            }
        }
        if !seen.contains(CONTROL) {
            return Err(PlanError::MissingControl);
        }
        let sum: u32 = weights.iter().map(|(_, w)| *w).sum();
        if sum != 100 {
            return Err(PlanError::BadSum(sum));
        }
        Ok(())
    }

    /// Derive the next plan from this one, preserving the buckets of
    /// every variant whose weight did not change. Only buckets freed by
    /// shrinking (or removed) variants are handed to growing (or new)
    /// variants, so sticky assignments churn minimally: a key moves
    /// only if its variant shrank.
    pub fn update(&self, new_weights: &[(String, u32)]) -> Result<Self, PlanError> {
        Self::validate(new_weights)?;
        let name_to_new: BTreeMap<&str, u8> = new_weights
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.as_str(), i as u8))
            .collect();

        // Re-express the old bucket map in new indices; buckets whose
        // variant vanished are freed immediately.
        let mut buckets: Vec<Option<u8>> = self
            .buckets
            .iter()
            .map(|&old_idx| {
                let name = self.weights[old_idx as usize].0.as_str();
                name_to_new.get(name).copied()
            })
            .collect();

        // Free the excess buckets of shrinking variants, highest index
        // first so the low (stable) end of each variant's range stays.
        let mut counts = vec![0u32; new_weights.len()];
        for b in buckets.iter().flatten() {
            counts[*b as usize] += 1;
        }
        for (idx, (_, target)) in new_weights.iter().enumerate() {
            let mut excess = counts[idx].saturating_sub(*target);
            if excess == 0 {
                continue;
            }
            for slot in buckets.iter_mut().rev() {
                if excess == 0 {
                    break;
                }
                if *slot == Some(idx as u8) {
                    *slot = None;
                    excess -= 1;
                }
            }
        }

        // Hand freed buckets (ascending) to under-target variants in
        // declaration order.
        let mut free: Vec<usize> = buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.is_none().then_some(i))
            .collect();
        free.reverse(); // pop() yields ascending indices
        for (idx, (_, target)) in new_weights.iter().enumerate() {
            while counts[idx] < *target {
                let slot = free
                    .pop()
                    .expect("weights sum to 100 ⇒ enough free buckets");
                buckets[slot] = Some(idx as u8);
                counts[idx] += 1;
            }
        }

        Ok(Self {
            version: self.version + 1,
            seed: self.seed,
            weights: new_weights.to_vec(),
            buckets: buckets
                .into_iter()
                .map(|b| b.expect("all filled"))
                .collect(),
        })
    }

    /// Deterministically assign a sticky key to a variant name.
    pub fn assign(&self, sticky_key: &str) -> &str {
        let h = splitmix64(self.seed ^ fnv1a64(sticky_key.as_bytes()));
        let idx = self.buckets[(h % BUCKETS as u64) as usize];
        &self.weights[idx as usize].0
    }

    /// Plan version, bumped by [`SplitPlan::update`].
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The hash seed shared by every assignment.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `(name, percent)` pairs in declaration order.
    pub fn weights(&self) -> &[(String, u32)] {
        &self.weights
    }

    /// Percent of traffic for `name`, if present in the plan.
    pub fn weight_of(&self, name: &str) -> Option<u32> {
        self.weights
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, w)| *w)
    }

    /// Non-control variant names in declaration order.
    pub fn candidates(&self) -> impl Iterator<Item = &str> {
        self.weights
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| *n != CONTROL)
    }

    /// Canonical single-line encoding. Carries the bucket map, so the
    /// decoded plan assigns identically on every host.
    pub fn to_canonical(&self) -> String {
        let weights = self
            .weights
            .iter()
            .map(|(n, w)| format!("{n}:{w}"))
            .collect::<Vec<_>>()
            .join(",");
        let buckets = self
            .buckets
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(".");
        format!(
            "v1;seed={};version={};weights={};buckets={}",
            self.seed, self.version, weights, buckets
        )
    }

    /// Parse a [`SplitPlan::to_canonical`] string.
    pub fn from_canonical(s: &str) -> Result<Self, PlanError> {
        let bad = |why: &str| PlanError::BadCanonical(why.to_string());
        let mut parts = s.split(';');
        if parts.next() != Some("v1") {
            return Err(bad("missing v1 prefix"));
        }
        let mut seed = None;
        let mut version = None;
        let mut weights: Option<Vec<(String, u32)>> = None;
        let mut buckets: Option<Vec<u8>> = None;
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| bad("field missing '='"))?;
            match key {
                "seed" => seed = Some(value.parse().map_err(|_| bad("seed not a u64"))?),
                "version" => version = Some(value.parse().map_err(|_| bad("version not a u64"))?),
                "weights" => {
                    let mut ws = Vec::new();
                    for entry in value.split(',') {
                        let (name, w) = entry
                            .split_once(':')
                            .ok_or_else(|| bad("weight missing ':'"))?;
                        let w: u32 = w.parse().map_err(|_| bad("weight not a u32"))?;
                        ws.push((name.to_string(), w));
                    }
                    weights = Some(ws);
                }
                "buckets" => {
                    let mut bs = Vec::new();
                    for entry in value.split('.') {
                        bs.push(entry.parse().map_err(|_| bad("bucket not a u8"))?);
                    }
                    buckets = Some(bs);
                }
                _ => return Err(bad("unknown field")),
            }
        }
        let (seed, version, weights, buckets) = match (seed, version, weights, buckets) {
            (Some(s), Some(v), Some(w), Some(b)) => (s, v, w, b),
            _ => return Err(bad("missing field")),
        };
        Self::validate(&weights).map_err(|e| bad(&e.to_string()))?;
        if buckets.len() != BUCKETS {
            return Err(bad("bucket map must have exactly 100 entries"));
        }
        let mut counts = vec![0u32; weights.len()];
        for &b in &buckets {
            let slot = counts
                .get_mut(b as usize)
                .ok_or_else(|| bad("bucket index out of range"))?;
            *slot += 1;
        }
        for (idx, (_, w)) in weights.iter().enumerate() {
            if counts[idx] != *w {
                return Err(bad("bucket counts disagree with weights"));
            }
        }
        Ok(Self {
            version,
            seed,
            weights,
            buckets,
        })
    }

    /// Stable digest of the canonical encoding, for cross-replica
    /// agreement checks.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.to_canonical().as_bytes())
    }
}

/// Parse a `name:weight,name:weight` CLI spec into plan weights.
pub fn parse_weight_spec(spec: &str) -> Result<Vec<(String, u32)>, PlanError> {
    let mut weights = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        let (name, w) = entry.split_once(':').ok_or_else(|| {
            PlanError::BadCanonical(format!("weight entry {entry:?} missing ':'"))
        })?;
        let w: u32 = w
            .trim()
            .parse()
            .map_err(|_| PlanError::BadCanonical(format!("weight in {entry:?} not a u32")))?;
        weights.push((name.trim().to_string(), w));
    }
    Ok(weights)
}

pub mod interleave {
    //! Team-draft interleaving of two top-k rankings.
    //!
    //! Each duel interleaves the control and candidate rankings with a
    //! seeded coin deciding which team drafts first per round; every
    //! drafted item earns its team position-discounted credit weighted
    //! by a judge score (the mean of the item's min-max-normalized
    //! scores under both rankers). A seeded sign-flip permutation test
    //! turns per-duel credit deltas into a significance estimate.

    use super::BitStream;

    /// Credit earned by each side in one interleaved duel.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct DuelCredit {
        /// Credit drafted by the control ranking.
        pub control: f64,
        /// Credit drafted by the candidate ranking.
        pub candidate: f64,
    }

    impl DuelCredit {
        /// candidate − control.
        pub fn delta(&self) -> f64 {
            self.candidate - self.control
        }
    }

    fn normalized(list: &[(u32, f32)]) -> Vec<(u32, f64)> {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, s) in list {
            let s = s as f64;
            lo = lo.min(s);
            hi = hi.max(s);
        }
        let span = (hi - lo).max(1e-12);
        list.iter()
            .map(|&(id, s)| {
                (
                    id,
                    if list.len() == 1 {
                        1.0
                    } else {
                        (s as f64 - lo) / span
                    },
                )
            })
            .collect()
    }

    fn judge(id: u32, a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
        let score = |list: &[(u32, f64)]| {
            list.iter()
                .find(|(i, _)| *i == id)
                .map(|(_, s)| *s)
                .unwrap_or(0.0)
        };
        (score(a) + score(b)) / 2.0
    }

    /// Run one team-draft duel between two `(id, score)` rankings.
    ///
    /// Deterministic for a given `(seed, rankings)` pair, so replicas
    /// and the router reproduce identical credit from journaled
    /// samples.
    pub fn team_draft_credit(
        control: &[(u32, f32)],
        candidate: &[(u32, f32)],
        seed: u64,
    ) -> DuelCredit {
        let ctrl_norm = normalized(control);
        let cand_norm = normalized(candidate);
        let mut coins = BitStream::new(seed);
        let mut taken = std::collections::BTreeSet::new();
        let mut credit = DuelCredit {
            control: 0.0,
            candidate: 0.0,
        };
        let (mut ci, mut ki) = (0usize, 0usize);
        let mut pos = 0usize;
        let target = control.len().max(candidate.len());
        while pos < target {
            let cand_first = coins.next_bit();
            for side in 0..2 {
                let draft_candidate = (side == 0) == cand_first;
                let (list, cursor) = if draft_candidate {
                    (candidate, &mut ki)
                } else {
                    (control, &mut ci)
                };
                while *cursor < list.len() && taken.contains(&list[*cursor].0) {
                    *cursor += 1;
                }
                if *cursor >= list.len() {
                    continue;
                }
                let id = list[*cursor].0;
                taken.insert(id);
                let discount = 1.0 / ((pos as f64) + 2.0).log2();
                let gain = judge(id, &ctrl_norm, &cand_norm) * discount;
                if draft_candidate {
                    credit.candidate += gain;
                } else {
                    credit.control += gain;
                }
                pos += 1;
            }
            if ci >= control.len() && ki >= candidate.len() {
                break;
            }
        }
        credit
    }

    /// Aggregate duel credits into a comparison verdict.
    #[derive(Debug, Clone, PartialEq)]
    pub struct InterleaveSummary {
        /// Number of duels aggregated.
        pub duels: u64,
        /// Duels where the candidate out-drafted control.
        pub candidate_wins: u64,
        /// Duels where control out-drafted the candidate.
        pub control_wins: u64,
        /// Duels with equal credit.
        pub ties: u64,
        /// Mean of (candidate − control) credit.
        pub mean_delta: f64,
        /// Seeded-permutation p-value for |mean_delta| under the null
        /// of no preference. 1.0 when there are no duels.
        pub p_value: f64,
    }

    /// Summarize per-duel credit deltas with a sign-flip permutation
    /// significance check (`rounds` resamples from `seed`).
    pub fn summarize(credits: &[DuelCredit], seed: u64, rounds: usize) -> InterleaveSummary {
        let deltas: Vec<f64> = credits.iter().map(DuelCredit::delta).collect();
        let mut summary = InterleaveSummary {
            duels: deltas.len() as u64,
            candidate_wins: deltas.iter().filter(|d| **d > 0.0).count() as u64,
            control_wins: deltas.iter().filter(|d| **d < 0.0).count() as u64,
            ties: deltas.iter().filter(|d| **d == 0.0).count() as u64,
            mean_delta: 0.0,
            p_value: 1.0,
        };
        if deltas.is_empty() {
            return summary;
        }
        let n = deltas.len() as f64;
        summary.mean_delta = deltas.iter().sum::<f64>() / n;
        let observed = summary.mean_delta.abs();
        let mut coins = BitStream::new(seed);
        let mut at_least = 0usize;
        for _ in 0..rounds {
            let mut sum = 0.0;
            for d in &deltas {
                sum += if coins.next_bit() { *d } else { -*d };
            }
            if (sum / n).abs() >= observed - 1e-15 {
                at_least += 1;
            }
        }
        summary.p_value = (at_least as f64 + 1.0) / (rounds as f64 + 1.0);
        summary
    }
}

pub mod guardrail {
    //! Promotion guardrails: a candidate may replace control only when
    //! its observed error rate, tail latency, and sample volume clear
    //! configured bars.

    /// Thresholds a candidate must clear before promotion.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Guardrails {
        /// Maximum candidate error rate (errors / requests).
        pub max_error_rate: f64,
        /// Maximum fractional p99 regression vs control, e.g. `0.25`
        /// allows candidate p99 up to 1.25× control p99.
        pub max_p99_delta: f64,
        /// Minimum candidate request count before a verdict counts.
        pub min_samples: u64,
    }

    impl Default for Guardrails {
        fn default() -> Self {
            Self {
                max_error_rate: 0.01,
                max_p99_delta: 0.25,
                min_samples: 50,
            }
        }
    }

    /// Observed per-variant serving stats fed to the guardrail check.
    #[derive(Debug, Clone, Default, PartialEq)]
    pub struct VariantStats {
        /// Variant name.
        pub name: String,
        /// Requests served by the variant.
        pub requests: u64,
        /// Errors attributed to the variant.
        pub errors: u64,
        /// p99 latency in microseconds.
        pub p99_us: u64,
    }

    impl VariantStats {
        /// errors / requests, 0 when idle.
        pub fn error_rate(&self) -> f64 {
            if self.requests == 0 {
                0.0
            } else {
                self.errors as f64 / self.requests as f64
            }
        }
    }

    /// Evaluate guardrails; returns human-readable violations (empty ⇒
    /// the candidate may be promoted).
    pub fn check(
        control: &VariantStats,
        candidate: &VariantStats,
        guardrails: &Guardrails,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        if candidate.requests < guardrails.min_samples {
            violations.push(format!(
                "candidate served {} requests, need at least {}",
                candidate.requests, guardrails.min_samples
            ));
        }
        let err = candidate.error_rate();
        if err > guardrails.max_error_rate {
            violations.push(format!(
                "candidate error rate {:.4} exceeds {:.4}",
                err, guardrails.max_error_rate
            ));
        }
        if control.p99_us > 0 {
            let ceiling = control.p99_us as f64 * (1.0 + guardrails.max_p99_delta);
            if candidate.p99_us as f64 > ceiling {
                violations.push(format!(
                    "candidate p99 {}us exceeds {:.0}us (control {}us + {:.0}%)",
                    candidate.p99_us,
                    ceiling,
                    control.p99_us,
                    guardrails.max_p99_delta * 100.0
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64, spec: &str) -> SplitPlan {
        SplitPlan::new(seed, 1, &parse_weight_spec(spec).unwrap()).unwrap()
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("client-{i}")).collect()
    }

    #[test]
    fn rejects_bad_plans() {
        assert!(matches!(
            SplitPlan::new(1, 1, &parse_weight_spec("cand:100").unwrap()),
            Err(PlanError::MissingControl)
        ));
        assert!(matches!(
            SplitPlan::new(1, 1, &parse_weight_spec("control:90,cand:20").unwrap()),
            Err(PlanError::BadSum(110))
        ));
        assert!(matches!(
            SplitPlan::new(1, 1, &[("control".into(), 50), ("Bad Name".into(), 50)]),
            Err(PlanError::BadName(_))
        ));
        assert!(matches!(
            SplitPlan::new(1, 1, &[("control".into(), 50), ("control".into(), 50)]),
            Err(PlanError::BadName(_))
        ));
    }

    #[test]
    fn proportions_track_weights_within_two_percent() {
        for (seed, spec) in [
            (7u64, "control:90,cand:10"),
            (42, "control:50,a:30,b:20"),
            (2020, "control:98,cand:2"),
        ] {
            let p = plan(seed, spec);
            let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
            let ks = keys(100_000);
            for k in &ks {
                *counts.entry(p.assign(k)).or_default() += 1;
            }
            for (name, w) in p.weights() {
                let got = *counts.get(name.as_str()).unwrap_or(&0) as f64 / ks.len() as f64;
                let want = *w as f64 / 100.0;
                assert!(
                    (got - want).abs() <= 0.02,
                    "{spec} seed {seed}: {name} got {got:.4}, want {want:.4} ±0.02"
                );
            }
        }
    }

    #[test]
    fn canonical_roundtrip_preserves_every_assignment() {
        let p = plan(99, "control:80,a:15,b:5");
        let decoded = SplitPlan::from_canonical(&p.to_canonical()).unwrap();
        assert_eq!(p, decoded);
        assert_eq!(p.digest(), decoded.digest());
        for k in keys(10_000) {
            assert_eq!(p.assign(&k), decoded.assign(&k));
        }
        // Independently constructed plans with identical inputs agree
        // too — replicas never need to gossip bucket maps.
        let again = plan(99, "control:80,a:15,b:5");
        assert_eq!(p.to_canonical(), again.to_canonical());
    }

    #[test]
    fn update_never_reassigns_unchanged_variants() {
        let p1 = plan(5, "control:80,a:10,b:10");
        // control shrinks, b grows, a untouched.
        let p2 = p1
            .update(&parse_weight_spec("control:70,a:10,b:20").unwrap())
            .unwrap();
        assert_eq!(p2.version(), p1.version() + 1);
        let mut moved = 0usize;
        for k in keys(50_000) {
            let before = p1.assign(&k);
            let after = p2.assign(&k);
            if before == "a" {
                assert_eq!(after, "a", "key {k} left unchanged variant 'a'");
            }
            if before != after {
                // Every move must be shrink → grow.
                assert_eq!(before, "control", "key {k} moved from {before}");
                assert_eq!(after, "b", "key {k} moved to {after}");
                moved += 1;
            }
        }
        // ~10% of keys should move (control 80 → 70).
        let frac = moved as f64 / 50_000.0;
        assert!((frac - 0.10).abs() <= 0.02, "moved fraction {frac:.4}");
    }

    #[test]
    fn update_handles_new_and_removed_variants() {
        let p1 = plan(11, "control:90,a:10");
        let p2 = p1
            .update(&parse_weight_spec("control:90,b:10").unwrap())
            .unwrap();
        for k in keys(20_000) {
            let before = p1.assign(&k);
            let after = p2.assign(&k);
            if before == "control" {
                assert_eq!(after, "control");
            } else {
                assert_eq!(before, "a");
                assert_eq!(after, "b");
            }
        }
    }

    #[test]
    fn halt_semantics_collapse_to_control() {
        let p1 = plan(3, "control:50,cand:50");
        let p2 = p1
            .update(&parse_weight_spec("control:100,cand:0").unwrap())
            .unwrap();
        for k in keys(5_000) {
            assert_eq!(p2.assign(&k), CONTROL);
        }
    }

    #[test]
    fn interleave_prefers_the_agreed_better_ranking() {
        // Candidate ranks the genuinely high-scoring items first;
        // control ranks them in reverse.
        let ideal: Vec<(u32, f32)> = (0..10).map(|i| (i, (10 - i) as f32)).collect();
        let reversed: Vec<(u32, f32)> = ideal.iter().rev().cloned().collect();
        let mut credits = Vec::new();
        for seed in 0..200 {
            credits.push(interleave::team_draft_credit(&reversed, &ideal, seed));
        }
        let summary = interleave::summarize(&credits, 77, 2000);
        assert!(summary.candidate_wins > summary.control_wins);
        assert!(summary.mean_delta > 0.0);
        assert!(summary.p_value < 0.05, "p={}", summary.p_value);
    }

    #[test]
    fn interleave_finds_no_signal_between_identical_rankings() {
        let list: Vec<(u32, f32)> = (0..10).map(|i| (i, (10 - i) as f32)).collect();
        let credits: Vec<_> = (0..100)
            .map(|seed| interleave::team_draft_credit(&list, &list, seed))
            .collect();
        let summary = interleave::summarize(&credits, 9, 500);
        // Per-duel credit still varies with the draft coin (the first
        // drafter of a round gets the better position), but across
        // duels there must be no systematic preference.
        assert!(
            summary.mean_delta.abs() < 0.05,
            "mean_delta={}",
            summary.mean_delta
        );
        assert!(summary.p_value > 0.2, "p={}", summary.p_value);
    }

    #[test]
    fn interleave_is_deterministic_per_seed() {
        let a: Vec<(u32, f32)> = (0..8).map(|i| (i, (8 - i) as f32)).collect();
        let b: Vec<(u32, f32)> = (0..8).map(|i| (i * 2, (9 - i) as f32)).collect();
        let c1 = interleave::team_draft_credit(&a, &b, 1234);
        let c2 = interleave::team_draft_credit(&a, &b, 1234);
        assert_eq!(c1, c2);
    }

    #[test]
    fn guardrails_catch_each_violation_class() {
        use guardrail::*;
        let g = Guardrails {
            max_error_rate: 0.01,
            max_p99_delta: 0.25,
            min_samples: 100,
        };
        let control = VariantStats {
            name: "control".into(),
            requests: 10_000,
            errors: 0,
            p99_us: 1_000,
        };
        let healthy = VariantStats {
            name: "cand".into(),
            requests: 1_000,
            errors: 5,
            p99_us: 1_100,
        };
        assert!(check(&control, &healthy, &g).is_empty());

        let thin = VariantStats {
            requests: 10,
            errors: 0,
            ..healthy.clone()
        };
        assert_eq!(check(&control, &thin, &g).len(), 1);

        let flaky = VariantStats {
            errors: 100,
            ..healthy.clone()
        };
        assert!(check(&control, &flaky, &g)
            .iter()
            .any(|v| v.contains("error rate")));

        let slow = VariantStats {
            p99_us: 2_000,
            ..healthy
        };
        assert!(check(&control, &slow, &g).iter().any(|v| v.contains("p99")));
    }
}
