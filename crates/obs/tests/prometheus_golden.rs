//! Golden-file test for the Prometheus text exposition.
//!
//! The rendered output must match `tests/golden/metrics.prom` byte for
//! byte, and every sample line must parse under the exposition-format
//! grammar (`name[{labels}] value`), so a scraper pointed at the
//! `{"op":"metrics","format":"prometheus"}` verb gets well-formed text.

use smgcn_obs::Registry;

fn golden_registry() -> Registry {
    let r = Registry::new();
    r.counter("serve_requests_total").add(42);
    r.counter_labeled("serve_errors_total", &[("code", "bad_k")])
        .add(2);
    r.counter_labeled("serve_errors_total", &[("code", "queue_full")])
        .inc();
    r.gauge("serve_generation").set(7);
    let h = r.histogram("serve_latency_us");
    h.record(100);
    h.record(100);
    h.record(100);
    h.record(1000);
    r
}

#[test]
fn prometheus_text_matches_golden_file() {
    let rendered = golden_registry().to_prometheus();
    let golden = include_str!("golden/metrics.prom");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from golden file"
    );
}

/// Minimal exposition-format check: every non-comment line is
/// `<name>[{k="v",...}] <float>` with a bare-identifier metric name.
#[test]
fn prometheus_text_parses() {
    let text = golden_registry().to_prometheus();
    let mut samples = 0usize;
    for line in text.lines() {
        if line.starts_with('#') {
            let mut parts = line.split_whitespace();
            assert_eq!(parts.next(), Some("#"));
            assert_eq!(parts.next(), Some("TYPE"));
            assert!(parts.next().is_some(), "TYPE line missing name: {line}");
            assert!(
                matches!(parts.next(), Some("counter" | "gauge" | "summary")),
                "unknown TYPE in {line}"
            );
            continue;
        }
        let (key, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line has no value: {line}");
        });
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("bad value {value:?} in {line}: {e}"));
        let name = key.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name {name:?} in {line}"
        );
        if let Some(rest) = key.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "bad labels: {line}"
                );
                for pair in rest[1..rest.len() - 1].split(',') {
                    let (k, v) = pair.split_once('=').expect("label without '='");
                    assert!(!k.is_empty());
                    assert!(
                        v.starts_with('"') && v.ends_with('"'),
                        "unquoted label: {line}"
                    );
                }
            }
        }
        samples += 1;
    }
    assert!(samples >= 8, "expected at least 8 samples, saw {samples}");
}
