//! Golden-file test for the Prometheus text exposition.
//!
//! The rendered output must match `tests/golden/metrics.prom` byte for
//! byte, and every sample line must parse under the exposition-format
//! grammar (`name[{labels}] value`), so a scraper pointed at the
//! `{"op":"metrics","format":"prometheus"}` verb gets well-formed text.

use smgcn_obs::Registry;

fn golden_registry() -> Registry {
    let r = Registry::new();
    r.counter("serve_requests_total").add(42);
    r.counter_labeled("serve_errors_total", &[("code", "bad_k")])
        .add(2);
    r.counter_labeled("serve_errors_total", &[("code", "queue_full")])
        .inc();
    r.gauge("serve_generation").set(7);
    let h = r.histogram("serve_latency_us");
    h.record(100);
    h.record(100);
    h.record(100);
    h.record(1000);
    r
}

#[test]
fn prometheus_text_matches_golden_file() {
    let rendered = golden_registry().to_prometheus();
    let golden = include_str!("golden/metrics.prom");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from golden file"
    );
}

/// Hostile label values: backslashes, quotes, newlines, commas and
/// equals signs inside values must escape per the exposition format
/// (`\\`, `\"`, `\n`) so the output stays one well-formed sample per
/// line. Golden-pinned like the benign case.
fn hostile_registry() -> Registry {
    let r = Registry::new();
    r.counter_labeled("ingest_rejects_total", &[("reason", "bad \"quote\"")])
        .add(3);
    r.counter_labeled(
        "ingest_rejects_total",
        &[("reason", "path\\with\\backslashes")],
    )
    .inc();
    r.counter_labeled(
        "ingest_rejects_total",
        &[("reason", "line\nbreak,comma=eq")],
    )
    .add(7);
    r.histogram_labeled("parse_us", &[("source", "c:\\wal \"v2\"\n")])
        .record(50);
    r
}

#[test]
fn hostile_label_values_match_golden_file() {
    let rendered = hostile_registry().to_prometheus();
    let golden = include_str!("golden/hostile_labels.prom");
    assert_eq!(
        rendered, golden,
        "hostile-label exposition drifted from golden file"
    );
    // No raw newline may survive inside a sample line: every line must
    // end at a value, and the line count is exactly the golden's.
    for line in rendered.lines() {
        assert!(
            line.starts_with('#') || line.rsplit_once(' ').is_some(),
            "unterminated sample line: {line:?}"
        );
    }
    // The raw (unescaped) values round-trip through the sample labels.
    let samples = hostile_registry().samples();
    let reasons: Vec<&str> = samples
        .iter()
        .filter(|s| s.name == "ingest_rejects_total")
        .map(|s| s.labels[0].1.as_str())
        .collect();
    assert!(reasons.contains(&"bad \"quote\""));
    assert!(reasons.contains(&"path\\with\\backslashes"));
    assert!(reasons.contains(&"line\nbreak,comma=eq"));
}

/// Minimal exposition-format check: every non-comment line is
/// `<name>[{k="v",...}] <float>` with a bare-identifier metric name.
#[test]
fn prometheus_text_parses() {
    let text = golden_registry().to_prometheus();
    let mut samples = 0usize;
    for line in text.lines() {
        if line.starts_with('#') {
            let mut parts = line.split_whitespace();
            assert_eq!(parts.next(), Some("#"));
            assert_eq!(parts.next(), Some("TYPE"));
            assert!(parts.next().is_some(), "TYPE line missing name: {line}");
            assert!(
                matches!(parts.next(), Some("counter" | "gauge" | "summary")),
                "unknown TYPE in {line}"
            );
            continue;
        }
        let (key, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line has no value: {line}");
        });
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("bad value {value:?} in {line}: {e}"));
        let name = key.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name {name:?} in {line}"
        );
        if let Some(rest) = key.strip_prefix(name) {
            if !rest.is_empty() {
                assert!(
                    rest.starts_with('{') && rest.ends_with('}'),
                    "bad labels: {line}"
                );
                for pair in rest[1..rest.len() - 1].split(',') {
                    let (k, v) = pair.split_once('=').expect("label without '='");
                    assert!(!k.is_empty());
                    assert!(
                        v.starts_with('"') && v.ends_with('"'),
                        "unquoted label: {line}"
                    );
                }
            }
        }
        samples += 1;
    }
    assert!(samples >= 8, "expected at least 8 samples, saw {samples}");
}
