//! Golden-file test for the tsdb binary format.
//!
//! The on-disk encoding is a contract: history written by one build
//! must decode under every later build, so the exact bytes produced
//! for a fixed scrape history are pinned to
//! `tests/golden/history.tsdb`. Any intentional format change must
//! bump `TSDB_VERSION` and regenerate the golden
//! (`SMGCN_REGEN_GOLDEN=1 cargo test -p smgcn-obs`).

use smgcn_obs::tsdb::{SeriesEncoder, TsdbData, TSDB_MAGIC, TSDB_VERSION};

/// A fixed history exercising every encoder feature: series appearing
/// late (dictionary growth mid-stream), unchanged values (zero XOR),
/// counter resets, fractional gauges, labeled keys and histogram
/// fields.
fn golden_history() -> Vec<(u64, Vec<(String, f64)>)> {
    let s = |n: &str, v: f64| (n.to_string(), v);
    vec![
        (
            1_700_000_000_000,
            vec![
                s("serve_requests_total", 0.0),
                s("serve_latency_us.p99_us", 512.0),
                s("serve_cache_hit_rate", 0.0),
            ],
        ),
        (
            1_700_000_000_250,
            vec![
                s("serve_requests_total", 40.0),
                s("serve_latency_us.p99_us", 512.0),
                s("serve_cache_hit_rate", 0.125),
            ],
        ),
        (
            1_700_000_000_500,
            vec![
                s("serve_requests_total", 95.0),
                s("serve_latency_us.p99_us", 1024.0),
                s("serve_cache_hit_rate", 0.5),
                s("serve_errors_total{code=\"deadline_exceeded\"}", 2.0),
            ],
        ),
        (
            1_700_000_000_750,
            vec![
                s("serve_requests_total", 7.0), // restart: counter reset
                s("serve_latency_us.p99_us", 1024.0),
                s("serve_cache_hit_rate", 0.5),
                s("serve_errors_total{code=\"deadline_exceeded\"}", 2.0),
            ],
        ),
    ]
}

fn encode(history: &[(u64, Vec<(String, f64)>)]) -> Vec<u8> {
    let mut enc = SeriesEncoder::new();
    let mut out = Vec::new();
    SeriesEncoder::header(&mut out);
    for (at, samples) in history {
        enc.append(*at, samples, &mut out);
    }
    out
}

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/history.tsdb");

#[test]
fn binary_format_matches_golden_file() {
    let bytes = encode(&golden_history());
    if std::env::var_os("SMGCN_REGEN_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &bytes).unwrap();
    }
    let golden = std::fs::read(GOLDEN_PATH)
        .expect("golden file missing — run with SMGCN_REGEN_GOLDEN=1 to create");
    assert_eq!(
        bytes, golden,
        "tsdb binary format drifted from the golden file; if intentional, \
         bump TSDB_VERSION and regenerate with SMGCN_REGEN_GOLDEN=1"
    );
    assert_eq!(&bytes[..4], &TSDB_MAGIC);
    assert_eq!(bytes[4], TSDB_VERSION);
}

#[test]
fn golden_file_decodes_to_the_exact_history() {
    let golden = std::fs::read(GOLDEN_PATH)
        .expect("golden file missing — run with SMGCN_REGEN_GOLDEN=1 to create");
    let recovered = TsdbData::parse(&golden);
    assert_eq!(recovered.valid_len, golden.len(), "golden has a torn tail?");
    let data = recovered.data;
    for (at, samples) in golden_history() {
        for (name, value) in samples {
            let points = data
                .points(&name)
                .unwrap_or_else(|| panic!("series {name} missing"));
            assert!(
                points.contains(&(at, value)),
                "expected ({at}, {value}) in {name}: {points:?}"
            );
        }
    }
    // The reset still queries correctly: increase over the whole run
    // is 95 (pre-reset) + 7 (post-reset), never negative.
    assert_eq!(data.delta("serve_requests_total", 0, u64::MAX), 102.0);
}
