//! Data-integrity primitives shared across the stack.
//!
//! Every durable format in the repo — the ingest WAL's per-record
//! framing (`smgcn-online`), the publish artifact's trailer
//! (`smgcn-serve`) and the metrics history store ([`crate::tsdb`]) —
//! checksums its payloads with the same CRC32 so a bit flip anywhere
//! between "accepted" and "served" is detected instead of decoded into
//! garbage. One implementation lives here, at the bottom of the
//! dependency graph, so the formats can never disagree on the
//! polynomial (`smgcn_serve::integrity` re-exports these functions for
//! the crates that grew up against that path).

/// CRC-32/ISO-HDLC (the IEEE 802.3 polynomial, reflected form
/// `0xEDB88320`) — the same parameters as zlib/PNG/Ethernet, checkable
/// with any external tool.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0, bytes)
}

/// Streaming form: feed chunks through repeated calls, starting from 0.
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = crc32(data);
        let mut c = 0;
        for chunk in data.chunks(7) {
            c = crc32_update(c, chunk);
        }
        assert_eq!(c, oneshot);
    }
}
