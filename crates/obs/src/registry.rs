//! A component-scoped metrics registry.
//!
//! One [`Registry`] per serving component (a server engine, a router, an
//! online pipeline attaches to its replica's) rather than a global
//! static, so in-process multi-server tests never share counters.
//! Registration hands back `Arc`-backed handles ([`Counter`], [`Gauge`],
//! `Arc<LatencyHistogram>`); the record path is a relaxed atomic op with
//! no lock. Only registration and snapshotting take the map mutex.
//!
//! Metric identity is `name` plus an optional sorted label set, rendered
//! into the key as `name{k="v",...}` — the same spelling Prometheus
//! uses, so the JSON snapshot and the text exposition agree on names.
//! Re-registering an existing key returns the existing handle (ignoring
//! a kind mismatch is a footgun, so that panics instead).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::LatencyHistogram;

/// A monotonically-increasing counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle (unsigned integer valued).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Clone, Debug)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<LatencyHistogram>),
}

/// Derived statistics of one histogram at snapshot time.
#[derive(Clone, Copy, Debug, Default)]
pub struct HistogramStats {
    /// Observations in the decaying window.
    pub count: u64,
    /// Sum of windowed observations (µs-scaled units).
    pub sum_us: u64,
    /// Windowed p50 (bucket upper bound).
    pub p50_us: f64,
    /// Windowed p99 (bucket upper bound).
    pub p99_us: f64,
    /// Windowed mean.
    pub mean_us: f64,
    /// Observations since start (undecayed).
    pub total_count: u64,
    /// Sum since start.
    pub total_sum_us: u64,
    /// Since-start p50.
    pub total_p50_us: f64,
    /// Since-start p99.
    pub total_p99_us: f64,
}

/// One metric in a registry snapshot.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Full key: `name` or `name{k="v",...}`.
    pub key: String,
    /// Bare metric name without labels.
    pub name: String,
    /// Sorted label pairs (empty when unlabeled).
    pub labels: Vec<(String, String)>,
    /// The value, by metric kind.
    pub value: SampleValue,
}

/// A snapshot value.
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram statistics.
    Histogram(HistogramStats),
}

/// A set of named metrics owned by one serving component.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Slot>>,
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote and line feed become `\\`, `\"` and `\n`.
/// Applied when keys are rendered, so the registry key itself is the
/// canonical exposition spelling (benign values are unchanged).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}=\"{}\"", escape_label_value(v));
    }
    key.push('}');
    key
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-fetches) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_labeled(name, &[])
    }

    /// Registers (or re-fetches) a labeled counter.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = render_key(name, labels);
        let mut map = self.metrics.lock().unwrap();
        let slot = map
            .entry(key.clone())
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("metric {key} already registered with a different kind"),
        }
    }

    /// Registers (or re-fetches) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_labeled(name, &[])
    }

    /// Registers (or re-fetches) a labeled gauge.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = render_key(name, labels);
        let mut map = self.metrics.lock().unwrap();
        let slot = map
            .entry(key.clone())
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("metric {key} already registered with a different kind"),
        }
    }

    /// Registers (or re-fetches) an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        self.histogram_labeled(name, &[])
    }

    /// Registers (or re-fetches) a labeled histogram.
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHistogram> {
        let key = render_key(name, labels);
        let mut map = self.metrics.lock().unwrap();
        let slot = map
            .entry(key.clone())
            .or_insert_with(|| Slot::Histogram(Arc::new(LatencyHistogram::new())));
        match slot {
            Slot::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {key} already registered with a different kind"),
        }
    }

    /// Snapshots every registered metric, sorted by key.
    pub fn samples(&self) -> Vec<Sample> {
        let map = self.metrics.lock().unwrap();
        map.iter()
            .map(|(key, slot)| {
                let (name, labels) = split_key(key);
                let value = match slot {
                    Slot::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    Slot::Gauge(g) => SampleValue::Gauge(g.load(Ordering::Relaxed)),
                    Slot::Histogram(h) => {
                        let s = h.snapshot();
                        SampleValue::Histogram(HistogramStats {
                            count: s.count,
                            sum_us: s.sum_us,
                            p50_us: s.quantile_us(0.50),
                            p99_us: s.quantile_us(0.99),
                            mean_us: s.mean_us(),
                            total_count: s.total_count,
                            total_sum_us: s.total_sum_us,
                            total_p50_us: s.total_quantile_us(0.50),
                            total_p99_us: s.total_quantile_us(0.99),
                        })
                    }
                };
                Sample {
                    key: key.clone(),
                    name,
                    labels,
                    value,
                }
            })
            .collect()
    }

    /// A compact JSON object mapping each metric key to its value
    /// (numbers for counters/gauges, an object for histograms).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, s) in self.samples().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&s.key, &mut out);
            out.push(':');
            match &s.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    let _ = write!(out, "{v}");
                }
                SampleValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"p50_us\":{},\"p99_us\":{},\"mean_us\":{},\
                         \"total_count\":{},\"total_p50_us\":{},\"total_p99_us\":{}}}",
                        h.count,
                        h.p50_us,
                        h.p99_us,
                        h.mean_us,
                        h.total_count,
                        h.total_p50_us,
                        h.total_p99_us
                    );
                }
            }
        }
        out.push('}');
        out
    }

    /// Prometheus text exposition (format 0.0.4). Counters and gauges
    /// become single samples; histograms render as summaries with
    /// windowed `quantile` samples plus undecayed `_count`/`_sum`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for s in self.samples() {
            if s.name != last_name {
                let kind = match s.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "summary",
                };
                let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
                last_name = s.name.clone();
            }
            match s.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {}", s.key, v);
                }
                SampleValue::Histogram(h) => {
                    for (q, v) in [("0.5", h.p50_us), ("0.99", h.p99_us)] {
                        let _ = writeln!(
                            out,
                            "{} {}",
                            with_label(&s.name, &s.labels, "quantile", q),
                            v
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        label_block(&s.labels),
                        h.total_count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        s.name,
                        label_block(&s.labels),
                        h.total_sum_us
                    );
                }
            }
        }
        out
    }
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

fn with_label(name: &str, labels: &[(String, String)], key: &str, value: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push((key.to_string(), value.to_string()));
    format!("{name}{}", label_block(&all))
}

/// Inverse of [`render_key`]: recovers the raw (unescaped) label
/// pairs. A real parser rather than a split on `,` — label values may
/// legally contain commas, quotes, backslashes and newlines once
/// escaping is in play.
fn split_key(key: &str) -> (String, Vec<(String, String)>) {
    let Some(brace) = key.find('{') else {
        return (key.to_string(), Vec::new());
    };
    let name = key[..brace].to_string();
    let mut labels = Vec::new();
    let mut chars = key[brace + 1..].chars().peekable();
    'pairs: loop {
        let mut label = String::new();
        loop {
            match chars.next() {
                Some('=') => break,
                Some('}') | None => break 'pairs,
                Some(c) => label.push(c),
            }
        }
        if chars.next() != Some('"') {
            break;
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('n') => value.push('\n'),
                    Some(c) => value.push(c),
                    None => break 'pairs,
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => break 'pairs,
            }
        }
        labels.push((label, value));
        if chars.peek() == Some(&',') {
            chars.next();
        }
    }
    (name, labels)
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_lock_free_to_record() {
        let r = Registry::new();
        let a = r.counter("requests_total");
        let b = r.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("requests_total").get(), 3);
    }

    #[test]
    fn labeled_counters_get_distinct_keys() {
        let r = Registry::new();
        r.counter_labeled("errors_total", &[("code", "bad_k")])
            .inc();
        r.counter_labeled("errors_total", &[("code", "shed")])
            .add(4);
        let samples = r.samples();
        let keys: Vec<&str> = samples.iter().map(|s| s.key.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "errors_total{code=\"bad_k\"}",
                "errors_total{code=\"shed\"}"
            ]
        );
        assert_eq!(samples[1].name, "errors_total");
        assert_eq!(samples[1].labels, vec![("code".into(), "shed".into())]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn json_snapshot_contains_every_kind() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.gauge("g").set(3);
        r.histogram("h_us").record(100);
        let json = r.to_json();
        assert!(json.contains("\"c\":7"), "{json}");
        assert!(json.contains("\"g\":3"), "{json}");
        assert!(json.contains("\"h_us\":{\"count\":1"), "{json}");
        assert!(json.contains("\"total_p99_us\":128"), "{json}");
    }

    #[test]
    fn hostile_label_values_escape_and_round_trip() {
        let r = Registry::new();
        let hostile = "a\\b\"c\nd,e=f";
        r.counter_labeled("errors_total", &[("detail", hostile)])
            .inc();
        let sample = &r.samples()[0];
        // The key carries the exposition-format escaped spelling...
        assert_eq!(sample.key, "errors_total{detail=\"a\\\\b\\\"c\\nd,e=f\"}");
        assert!(!sample.key.contains('\n'), "keys must stay single-line");
        // ...and parsing the key recovers the raw value exactly.
        assert_eq!(sample.labels, vec![("detail".into(), hostile.into())]);
        // Re-registering through the same labels finds the same slot.
        r.counter_labeled("errors_total", &[("detail", hostile)])
            .add(2);
        assert_eq!(
            r.counter_labeled("errors_total", &[("detail", hostile)])
                .get(),
            3
        );
    }

    #[test]
    fn prometheus_types_emitted_once_per_name() {
        let r = Registry::new();
        r.counter_labeled("e_total", &[("code", "a")]).inc();
        r.counter_labeled("e_total", &[("code", "b")]).inc();
        let text = r.to_prometheus();
        assert_eq!(text.matches("# TYPE e_total counter").count(), 1);
        assert!(text.contains("e_total{code=\"a\"} 1"));
    }
}
