//! Always-on continuous profiler: cumulative folded stacks.
//!
//! The serving and training paths already measure their phases (batch
//! queue wait, GEMM, top-k; prep/forward/backward/step) into latency
//! histograms. This module aggregates those same durations into
//! *folded stacks* — the `frame;frame;frame count` text every
//! flamegraph tool collapses SVGs from — so `{"op":"profile"}` can
//! answer "where does the time go" cumulatively, not per-request.
//!
//! The hot path is a single relaxed atomic add per phase: callers
//! pre-register a [`ProfileHandle`] per stack (exactly like registry
//! counters) and pay no lock, no allocation, no formatting until
//! someone actually asks for [`Profiler::fold`]. That is what makes it
//! cheap enough to leave on — the overhead gate holds it to the same
//! budget as sampled tracing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A pre-registered stack accumulator: one relaxed add per record.
#[derive(Clone, Debug)]
pub struct ProfileHandle(Arc<AtomicU64>);

impl ProfileHandle {
    /// Adds `us` microseconds to this stack.
    pub fn add(&self, us: u64) {
        self.0.fetch_add(us, Ordering::Relaxed);
    }

    /// Cumulative microseconds recorded.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A set of cumulative folded stacks owned by one component.
#[derive(Debug, Default)]
pub struct Profiler {
    stacks: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
}

impl Profiler {
    /// A fresh, empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) the accumulator for a stack, given as
    /// root-to-leaf frames — `&["serve", "request", "gemm"]` becomes
    /// the folded line `serve;request;gemm <us>`.
    pub fn node(&self, frames: &[&str]) -> ProfileHandle {
        let key = frames.join(";");
        let mut stacks = self.stacks.lock().expect("profiler lock");
        ProfileHandle(Arc::clone(stacks.entry(key).or_default()))
    }

    /// One-shot record for infrequent callers (takes the lock; use
    /// [`Profiler::node`] handles on hot paths).
    pub fn add(&self, frames: &[&str], us: u64) {
        self.node(frames).add(us);
    }

    /// Cumulative microseconds across all stacks.
    pub fn total_us(&self) -> u64 {
        let stacks = self.stacks.lock().expect("profiler lock");
        stacks.values().map(|v| v.load(Ordering::Relaxed)).sum()
    }

    /// Renders the flamegraph-collapsible folded text: one
    /// `stack;frames <microseconds>` line per non-zero stack, sorted by
    /// stack name (a canonical, diffable order).
    pub fn fold(&self) -> String {
        let stacks = self.stacks.lock().expect("profiler lock");
        let mut out = String::new();
        for (stack, us) in stacks.iter() {
            let us = us.load(Ordering::Relaxed);
            if us > 0 {
                out.push_str(stack);
                out.push(' ');
                out.push_str(&us.to_string());
                out.push('\n');
            }
        }
        out
    }
}

/// Accumulates one folded text blob into a stack → µs map (the router
/// uses this to merge per-replica profiles into a fleet view).
/// Malformed lines are skipped rather than failing the merge.
pub fn merge_folded(acc: &mut BTreeMap<String, u64>, folded: &str) {
    for line in folded.lines() {
        let Some((stack, count)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(us) = count.parse::<u64>() else {
            continue;
        };
        *acc.entry(stack.to_string()).or_default() += us;
    }
}

/// Renders a merged stack map back into canonical folded text.
pub fn render_folded(stacks: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, us) in stacks {
        if *us > 0 {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&us.to_string());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_sorted_nonzero_stacks() {
        let prof = Profiler::new();
        let gemm = prof.node(&["serve", "request", "gemm"]);
        let topk = prof.node(&["serve", "request", "topk"]);
        let _idle = prof.node(&["serve", "idle"]); // never recorded
        gemm.add(120);
        gemm.add(30);
        topk.add(50);
        assert_eq!(
            prof.fold(),
            "serve;request;gemm 150\nserve;request;topk 50\n"
        );
        assert_eq!(prof.total_us(), 200);
    }

    #[test]
    fn handles_are_shared_per_stack() {
        let prof = Profiler::new();
        let a = prof.node(&["x", "y"]);
        let b = prof.node(&["x", "y"]);
        a.add(7);
        b.add(3);
        assert_eq!(prof.fold(), "x;y 10\n");
    }

    #[test]
    fn merge_sums_and_skips_garbage() {
        let mut acc = BTreeMap::new();
        merge_folded(&mut acc, "serve;gemm 100\nserve;topk 40\n");
        merge_folded(&mut acc, "serve;gemm 50\nnot a folded line\nbad NaN\n");
        assert_eq!(render_folded(&acc), "serve;gemm 150\nserve;topk 40\n");
    }
}
