//! # smgcn-obs — fleet-wide observability primitives
//!
//! The serving stack spans ingest→delta→finetune→freeze→publish→route→
//! serve; when an SLO trips the question is always *where inside that
//! pipeline* the time or the errors went. This crate is the shared,
//! std-only telemetry layer every other crate threads through:
//!
//! - [`registry`] — a process-component-scoped [`Registry`] of lock-free
//!   counters, gauges and log-bucketed histograms (optionally labeled),
//!   snapshotable to structured samples, JSON, and Prometheus text
//!   exposition;
//! - [`histogram`] — the decaying latency histogram (migrated from
//!   `smgcn-serve`), now also exposing *undecayed since-start* totals so
//!   bench runs can compare percentiles without the decay window
//!   rewriting history;
//! - [`trace`] — per-request span records ([`TraceBuilder`]), trace-id
//!   minting, deterministic [`Sampler`], and a bounded in-memory
//!   [`TraceJournal`] ring;
//! - [`events`] — a bounded [`EventJournal`] of structured timestamped
//!   operational events (ejections, recoveries, publishes, hot swaps,
//!   WAL flushes, shed decisions, SLO alerts);
//! - [`tsdb`] — the retention layer: an append-only, delta-encoded
//!   on-disk time-series store ([`Tsdb`]), a [`Scraper`] that polls a
//!   metrics source on an interval, and a windowed query API
//!   ([`TsdbData`]: rate, delta, percentile-over-time);
//! - [`profile`] — an always-on continuous [`Profiler`] folding the
//!   phase timers into cumulative flamegraph-collapsible stacks;
//! - [`alert`] — declarative [`SloRule`]s judged over the tsdb with
//!   Google-SRE multi-window burn-rate pairs, edge-triggered into the
//!   event journal by an [`AlertEngine`];
//! - [`integrity`] — the shared CRC32 every durable format frames its
//!   payloads with.
//!
//! Everything here is deliberately dependency-free and sits at the
//! bottom of the workspace graph: `serve`, `cluster`, `online` and the
//! CLI all depend on `obs`, never the reverse. The registry holds its
//! handles behind `Arc`s, so the record path (`Counter::inc`,
//! `LatencyHistogram::record`) never takes a lock — only snapshotting
//! walks the registration map.

#![warn(missing_docs)]

pub mod alert;
pub mod events;
pub mod histogram;
pub mod integrity;
pub mod profile;
pub mod registry;
pub mod trace;
pub mod tsdb;

pub use alert::{Alert, AlertEngine, BurnWindow, SloKind, SloRule};
pub use events::{Event, EventJournal};
pub use histogram::{LatencyHistogram, LatencySnapshot, DECAY_INTERVAL};
pub use profile::{ProfileHandle, Profiler};
pub use registry::{Counter, Gauge, HistogramStats, Registry, Sample, SampleValue};
pub use trace::{mint_trace_id, Sampler, SpanRecord, TraceBuilder, TraceJournal, TraceRecord};
pub use tsdb::{Scraper, SeriesEncoder, Tsdb, TsdbData};
