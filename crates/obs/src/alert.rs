//! Declarative SLO rules with multi-window burn-rate alerting.
//!
//! A service-level objective spends an *error budget*: an availability
//! target of 99.99% tolerates 1 bad request in 10,000. The *burn rate*
//! is how fast a window of history is spending that budget — burn 1
//! exhausts it exactly at the SLO horizon, burn 14.4 in 6 minutes of a
//! 30-day budget. Following the Google SRE workbook, a rule fires only
//! when **both** windows of a pair burn hot: the long window proves the
//! problem is sustained, the short window proves it is still happening
//! (so recovered incidents stop paging). Two pairs are evaluated — a
//! fast pair (5m/1h at burn 14.4) to catch cliffs and a slow pair
//! (30m/6h at burn 6) to catch smolder — and either pair firing fires
//! the rule. [`SloRule::scaled`] shrinks the canonical wall-clock
//! windows onto scenario time, so a two-second loadgen run exercises
//! the same judgment as a month of production.
//!
//! Rules are evaluated over a [`TsdbData`] history; firing alerts are
//! structured [`Alert`]s, and [`AlertEngine`] edge-triggers them into
//! the existing event journal (`kind: "alert"` / `"alert_resolved"`),
//! which is how they surface in `{"op":"events"}` and `smgcn top`.

use crate::events::EventJournal;
use crate::tsdb::TsdbData;

/// One window pair of a burn-rate rule: fires when both the short and
/// long lookback burn faster than `factor` times the budget rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurnWindow {
    /// Short lookback (ms) — proves the burn is still happening.
    pub short_ms: u64,
    /// Long lookback (ms) — proves the burn is sustained.
    pub long_ms: u64,
    /// Burn-rate threshold both windows must exceed.
    pub factor: f64,
}

/// What a rule measures against its objective.
#[derive(Clone, Debug, PartialEq)]
pub enum SloKind {
    /// Bad-over-total ratio of counter increases in the window. Each
    /// side is a list of tsdb selectors (summed; a bare metric name
    /// matches its labeled variants).
    Availability {
        /// Selectors counting bad events.
        bad: Vec<String>,
        /// Selectors counting all events.
        total: Vec<String>,
    },
    /// Fraction of scraped points in the window where `series` exceeds
    /// the latency budget.
    Latency {
        /// The gauge-like series to judge (e.g. a `.p99_us` field).
        series: String,
        /// The budget in the series' own units.
        budget: f64,
    },
}

/// A declarative SLO rule: a measurement, an error-budget objective,
/// and the two burn-rate window pairs that judge it.
#[derive(Clone, Debug, PartialEq)]
pub struct SloRule {
    /// Rule name (lands in alert events).
    pub name: String,
    /// What is measured.
    pub kind: SloKind,
    /// Error-budget fraction (e.g. `1e-4` for a 99.99% objective).
    pub objective: f64,
    /// Fast pair — canonical 5m/1h at burn 14.4.
    pub fast: BurnWindow,
    /// Slow pair — canonical 30m/6h at burn 6.
    pub slow: BurnWindow,
}

/// Canonical fast pair: 5 minutes / 1 hour at burn 14.4.
pub const FAST_PAIR: BurnWindow = BurnWindow {
    short_ms: 5 * 60 * 1000,
    long_ms: 60 * 60 * 1000,
    factor: 14.4,
};
/// Canonical slow pair: 30 minutes / 6 hours at burn 6.
pub const SLOW_PAIR: BurnWindow = BurnWindow {
    short_ms: 30 * 60 * 1000,
    long_ms: 6 * 60 * 60 * 1000,
    factor: 6.0,
};

impl SloRule {
    /// An availability rule with the canonical SRE window pairs.
    pub fn availability(
        name: impl Into<String>,
        bad: Vec<String>,
        total: Vec<String>,
        objective: f64,
    ) -> Self {
        SloRule {
            name: name.into(),
            kind: SloKind::Availability { bad, total },
            objective,
            fast: FAST_PAIR,
            slow: SLOW_PAIR,
        }
    }

    /// A latency-budget rule with the canonical SRE window pairs:
    /// `objective` is the tolerated fraction of scrapes over budget.
    pub fn latency(
        name: impl Into<String>,
        series: impl Into<String>,
        budget: f64,
        objective: f64,
    ) -> Self {
        SloRule {
            name: name.into(),
            kind: SloKind::Latency {
                series: series.into(),
                budget,
            },
            objective,
            fast: FAST_PAIR,
            slow: SLOW_PAIR,
        }
    }

    /// Scales every window by `factor` (e.g. `scenario_ms / 6h` maps
    /// the canonical wall-clock pairs onto a loadgen horizon).
    pub fn scaled(mut self, factor: f64) -> Self {
        let scale = |ms: u64| ((ms as f64 * factor).round() as u64).max(1);
        self.fast.short_ms = scale(self.fast.short_ms);
        self.fast.long_ms = scale(self.fast.long_ms);
        self.slow.short_ms = scale(self.slow.short_ms);
        self.slow.long_ms = scale(self.slow.long_ms);
        self
    }

    /// Clamps every window to at least `floor_ms` — scaled windows must
    /// stay wider than the scrape interval or they can never see an
    /// increment.
    pub fn with_min_window(mut self, floor_ms: u64) -> Self {
        self.fast.short_ms = self.fast.short_ms.max(floor_ms);
        self.fast.long_ms = self.fast.long_ms.max(self.fast.short_ms);
        self.slow.short_ms = self.slow.short_ms.max(floor_ms);
        self.slow.long_ms = self.slow.long_ms.max(self.slow.short_ms);
        self
    }

    /// The bad-event ratio over `(t0, t1]`, by rule kind.
    fn ratio(&self, data: &TsdbData, t0: u64, t1: u64) -> f64 {
        match &self.kind {
            SloKind::Availability { bad, total } => {
                let sum = |selectors: &[String]| -> f64 {
                    selectors.iter().map(|s| data.delta(s, t0, t1)).sum()
                };
                let all = sum(total);
                if all <= 0.0 {
                    0.0
                } else {
                    (sum(bad) / all).clamp(0.0, 1.0)
                }
            }
            SloKind::Latency { series, budget } => {
                let mut over = 0usize;
                let mut n = 0usize;
                if let Some(points) = data.points(series) {
                    for &(_, v) in points.iter().filter(|&&(t, _)| t > t0 && t <= t1) {
                        n += 1;
                        if v > *budget {
                            over += 1;
                        }
                    }
                }
                // Fall back to selector matching for labeled variants.
                if n == 0 {
                    let q = data.quantile_over_time(series, t0.saturating_add(1), t1, 1.0);
                    return match q {
                        Some(v) if v > *budget => 1.0,
                        _ => 0.0,
                    };
                }
                over as f64 / n as f64
            }
        }
    }

    /// Burn rate over the trailing `window_ms` ending at `at_ms`.
    pub fn burn(&self, data: &TsdbData, at_ms: u64, window_ms: u64) -> f64 {
        if self.objective <= 0.0 {
            return 0.0;
        }
        self.ratio(data, at_ms.saturating_sub(window_ms), at_ms) / self.objective
    }

    /// Evaluates the rule at one instant; `Some` when firing.
    pub fn evaluate_at(&self, data: &TsdbData, at_ms: u64) -> Option<Alert> {
        let fast_short = self.burn(data, at_ms, self.fast.short_ms);
        let fast_long = self.burn(data, at_ms, self.fast.long_ms);
        let slow_short = self.burn(data, at_ms, self.slow.short_ms);
        let slow_long = self.burn(data, at_ms, self.slow.long_ms);
        let fast_fires = fast_short > self.fast.factor && fast_long > self.fast.factor;
        let slow_fires = slow_short > self.slow.factor && slow_long > self.slow.factor;
        (fast_fires || slow_fires).then(|| Alert {
            rule: self.name.clone(),
            at_ms,
            fast_short,
            fast_long,
            slow_short,
            slow_long,
            pair: if fast_fires { "fast" } else { "slow" },
        })
    }
}

/// One firing of one rule at one evaluation instant.
#[derive(Clone, Debug)]
pub struct Alert {
    /// The rule that fired.
    pub rule: String,
    /// Evaluation timestamp (unix ms).
    pub at_ms: u64,
    /// Burn rate over the fast pair's short window.
    pub fast_short: f64,
    /// Burn rate over the fast pair's long window.
    pub fast_long: f64,
    /// Burn rate over the slow pair's short window.
    pub slow_short: f64,
    /// Burn rate over the slow pair's long window.
    pub slow_long: f64,
    /// Which pair tripped first ("fast" or "slow").
    pub pair: &'static str,
}

impl Alert {
    /// A one-line human/journal rendering of the firing.
    pub fn detail(&self) -> String {
        format!(
            "{} pair={} burn fast={:.1}/{:.1} slow={:.1}/{:.1}",
            self.rule, self.pair, self.fast_short, self.fast_long, self.slow_short, self.slow_long
        )
    }
}

/// Evaluates every rule at every scrape timestamp in the history —
/// the post-hoc form loadgen uses to assert "fired during the storm,
/// silent elsewhere". Alerts come back in (timestamp, rule) order.
pub fn evaluate_series(rules: &[SloRule], data: &TsdbData) -> Vec<Alert> {
    let mut stamps: Vec<u64> = Vec::new();
    for name in data.series_names() {
        if let Some(points) = data.points(name) {
            stamps.extend(points.iter().map(|&(t, _)| t));
        }
    }
    stamps.sort_unstable();
    stamps.dedup();
    let mut alerts = Vec::new();
    for at in stamps {
        for rule in rules {
            if let Some(alert) = rule.evaluate_at(data, at) {
                alerts.push(alert);
            }
        }
    }
    alerts
}

/// Live, edge-triggered evaluation: call [`AlertEngine::tick`] after
/// each scrape and rising edges land in the event journal as `alert`
/// events (falling edges as `alert_resolved`), exactly where every
/// other operational event already lives.
#[derive(Debug)]
pub struct AlertEngine {
    rules: Vec<SloRule>,
    active: Vec<String>,
    fired_total: u64,
}

impl AlertEngine {
    /// An engine over a fixed rule set.
    pub fn new(rules: Vec<SloRule>) -> Self {
        AlertEngine {
            rules,
            active: Vec::new(),
            fired_total: 0,
        }
    }

    /// The rules under evaluation.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Rising-edge firings so far.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Evaluates every rule at `now_ms`, journals edges, and returns
    /// the currently-firing alerts.
    pub fn tick(&mut self, data: &TsdbData, now_ms: u64, events: &EventJournal) -> Vec<Alert> {
        let mut firing = Vec::new();
        for rule in &self.rules {
            let was_active = self.active.iter().any(|n| n == &rule.name);
            match rule.evaluate_at(data, now_ms) {
                Some(alert) => {
                    if !was_active {
                        events.record("alert", alert.detail());
                        self.active.push(rule.name.clone());
                        self.fired_total += 1;
                    }
                    firing.push(alert);
                }
                None => {
                    if was_active {
                        events.record("alert_resolved", rule.name.clone());
                        self.active.retain(|n| n != &rule.name);
                    }
                }
            }
        }
        firing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A history with a clean storm in the middle: errors only between
    /// 4s and 6s, steady traffic throughout.
    fn storm_history() -> TsdbData {
        let mut data = TsdbData::default();
        for tick in 0..100u64 {
            let at = 1000 + tick * 100; // 10 Hz scrapes
            let total = (tick + 1) * 50;
            let errors: u64 = (0..=tick).filter(|t| (40..60).contains(t)).count() as u64 * 5;
            data.push(
                at,
                &[
                    ("req_total".to_string(), total as f64),
                    ("err_total".to_string(), errors as f64),
                ],
            );
        }
        data
    }

    fn rule() -> SloRule {
        // 10s of history standing in for the 6h slow horizon.
        SloRule::availability(
            "availability",
            vec!["err_total".to_string()],
            vec!["req_total".to_string()],
            1e-3,
        )
        .scaled(10_000.0 / (6.0 * 3600.0 * 1000.0))
        .with_min_window(300)
    }

    #[test]
    fn fires_inside_the_storm_and_nowhere_else() {
        let data = storm_history();
        let alerts = evaluate_series(&[rule()], &data);
        assert!(!alerts.is_empty(), "storm must fire the availability rule");
        // The slow pair's short window keeps the page up for a little
        // after the last bad increment (by design: "still happening"
        // is judged at window granularity), so the allowed band is the
        // storm plus one slow-short window.
        for alert in &alerts {
            assert!(
                (4900..=7800).contains(&alert.at_ms),
                "firing at {} ms is outside the storm window",
                alert.at_ms
            );
        }
        // And specifically: quiet before the storm starts.
        assert!(rule().evaluate_at(&data, 4500).is_none());
    }

    #[test]
    fn silent_on_a_clean_history() {
        let mut data = TsdbData::default();
        for tick in 0..50u64 {
            data.push(
                1000 + tick * 100,
                &[
                    ("req_total".to_string(), (tick * 40) as f64),
                    ("err_total".to_string(), 0.0),
                ],
            );
        }
        assert!(evaluate_series(&[rule()], &data).is_empty());
    }

    #[test]
    fn both_windows_of_a_pair_must_burn() {
        // A single ancient error: the long window still remembers it,
        // the short window has recovered — no page.
        let mut data = TsdbData::default();
        data.push(1000, &[("e".to_string(), 0.0), ("t".to_string(), 0.0)]);
        data.push(1100, &[("e".to_string(), 50.0), ("t".to_string(), 100.0)]);
        for tick in 2..40u64 {
            data.push(
                1000 + tick * 100,
                &[
                    ("e".to_string(), 50.0),
                    ("t".to_string(), (100 * tick) as f64),
                ],
            );
        }
        let rule = SloRule {
            name: "avail".into(),
            kind: SloKind::Availability {
                bad: vec!["e".to_string()],
                total: vec!["t".to_string()],
            },
            objective: 1e-2,
            fast: BurnWindow {
                short_ms: 500,
                long_ms: 4000,
                factor: 2.0,
            },
            slow: BurnWindow {
                short_ms: 1000,
                long_ms: 4000,
                factor: 1.5,
            },
        };
        // Right after the burst both windows burn.
        assert!(rule.evaluate_at(&data, 1200).is_some());
        // Long after, only the long window remembers: recovered.
        assert!(rule.evaluate_at(&data, 4800).is_none());
    }

    #[test]
    fn latency_rule_judges_budget_violations() {
        let mut data = TsdbData::default();
        for tick in 0..40u64 {
            let p99 = if (20..30).contains(&tick) {
                900.0
            } else {
                200.0
            };
            data.push(1000 + tick * 100, &[("lat.p99_us".to_string(), p99)]);
        }
        let rule = SloRule::latency("latency", "lat.p99_us", 500.0, 0.05)
            .scaled(4000.0 / (6.0 * 3600.0 * 1000.0))
            .with_min_window(300);
        let alerts = evaluate_series(&[rule], &data);
        assert!(!alerts.is_empty(), "sustained p99 over budget must fire");
        for alert in &alerts {
            assert!(
                alert.at_ms >= 3000 && alert.at_ms <= 4200,
                "{}",
                alert.at_ms
            );
        }
    }

    #[test]
    fn engine_edge_triggers_into_the_journal() {
        let data = storm_history();
        let events = EventJournal::new(64);
        let mut engine = AlertEngine::new(vec![rule()]);
        let mut fired_at = Vec::new();
        for tick in 0..100u64 {
            let at = 1000 + tick * 100;
            if !engine.tick(&data, at, &events).is_empty() {
                fired_at.push(at);
            }
        }
        assert!(engine.fired_total() >= 1);
        let kinds: Vec<String> = events.recent(64).into_iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"alert".to_string()));
        assert!(kinds.contains(&"alert_resolved".to_string()));
        // Edges, not repeats: strictly fewer journal entries than
        // firing ticks (the storm fires for ~2 s of 10 Hz ticks).
        assert!(events.recent(64).len() < fired_at.len());
    }
}
