//! A bounded journal of structured operational events.
//!
//! Metrics answer "how much"; the event journal answers "what
//! happened, when": replica ejections and recoveries, rolling
//! publishes, hot model swaps, WAL flushes, shed decisions. Each event
//! carries a monotonic sequence number (so readers can detect gaps
//! after eviction), a wall-clock timestamp, a `kind` tag and a
//! free-form detail string. The ring is bounded; under an event storm
//! the oldest entries fall off but the sequence numbers keep counting.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One operational event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (1-based; gaps mean eviction).
    pub seq: u64,
    /// Unix milliseconds when recorded.
    pub unix_ms: u64,
    /// Event class: `eject`, `recover`, `publish`, `swap`,
    /// `wal_flush`, `shed`, ...
    pub kind: String,
    /// Human-readable detail (addresses, generations, reasons).
    pub detail: String,
}

/// A bounded, thread-safe ring of recent [`Event`]s.
#[derive(Debug)]
pub struct EventJournal {
    cap: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
}

impl Default for EventJournal {
    fn default() -> Self {
        Self::new(256)
    }
}

impl EventJournal {
    /// A journal retaining at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(cap.max(1))),
        }
    }

    /// Records one event, evicting the oldest at capacity.
    pub fn record(&self, kind: &str, detail: impl Into<String>) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let event = Event {
            seq,
            unix_ms,
            kind: kind.to_string(),
            detail: detail.into(),
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// The most recent `limit` events, oldest first.
    pub fn recent(&self, limit: usize) -> Vec<Event> {
        let ring = self.ring.lock().unwrap();
        ring.iter()
            .skip(ring.len().saturating_sub(limit))
            .cloned()
            .collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_sequence_and_survive_eviction_counting() {
        let j = EventJournal::new(3);
        for i in 0..5 {
            j.record("eject", format!("replica {i}"));
        }
        let recent = j.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 3);
        assert_eq!(recent[2].seq, 5);
        assert_eq!(recent[2].kind, "eject");
        assert_eq!(recent[2].detail, "replica 4");
        assert_eq!(j.total(), 5);
    }

    #[test]
    fn recent_limits_from_the_tail() {
        let j = EventJournal::new(8);
        j.record("publish", "gen 1");
        j.record("swap", "gen 2");
        let tail = j.recent(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].kind, "swap");
    }
}
