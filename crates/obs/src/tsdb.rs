//! Append-only, delta-encoded on-disk time-series store.
//!
//! Everything the telemetry plane measures is a point-in-time snapshot;
//! this module is the retention layer that turns snapshots into
//! history. A [`Scraper`] polls a metrics source on an interval (a
//! local [`crate::Registry`] or a fleet `{"op":"metrics"}` endpoint —
//! the transport is a caller-supplied closure, keeping this crate
//! dependency-free), flattens each snapshot into `(series name, f64)`
//! pairs and appends one *record* per scrape. [`TsdbData`] is the
//! queryable in-memory index: windowed `delta`/`rate` for counters and
//! `quantile`/`avg`/`max`-over-time for gauge-like series.
//!
//! # On-disk format (version 1)
//!
//! ```text
//! file   := "SMTS" 0x01 frame*
//! frame  := len:u32le crc:u32le payload          (crc = CRC32(payload))
//! payload:= varint(delta_ms)                      (first record: absolute unix ms)
//!           varint(n_new) (varint(len) name)*     (new series, ids assigned in order)
//!           varint(n_points) (varint(id) varint(xor))*
//! ```
//!
//! Integers are LEB128 varints. Each point stores the IEEE-754 bits of
//! its value XORed with the previous value of the same series
//! (Gorilla-style): an unchanged counter costs one byte, a slowly
//! moving one a few. Series names are written once, on first
//! appearance, and referenced by dense id thereafter. The frame layout
//! is the WAL-v2 `[len][crc][payload]` idiom from the ingest log, and
//! recovery works the same way: [`TsdbData::parse`] accepts the longest
//! valid prefix, so a crash mid-append costs at most the torn record.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use crate::integrity::crc32;
use crate::registry::{Sample, SampleValue};

/// File magic: the first four bytes of every tsdb file.
pub const TSDB_MAGIC: [u8; 4] = *b"SMTS";
/// Current format version (the byte after the magic).
pub const TSDB_VERSION: u8 = 1;
/// Frames larger than this are treated as corruption, not data.
const MAX_FRAME: u32 = 1 << 26;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Milliseconds since the Unix epoch (the scrape timestamp source).
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Stateful record encoder: owns the series dictionary and per-series
/// previous values that the delta encoding is relative to. Feed it
/// scrapes in time order; it emits one self-contained frame per call.
#[derive(Debug, Default)]
pub struct SeriesEncoder {
    ids: BTreeMap<String, u32>,
    prev: Vec<u64>,
    last_ms: u64,
    started: bool,
}

impl SeriesEncoder {
    /// A fresh encoder (no series known yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the file header (magic + version).
    pub fn header(out: &mut Vec<u8>) {
        out.extend_from_slice(&TSDB_MAGIC);
        out.push(TSDB_VERSION);
    }

    /// Appends one framed record for a scrape at `unix_ms` to `out`.
    pub fn append(&mut self, unix_ms: u64, samples: &[(String, f64)], out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(16 + samples.len() * 3);
        let delta = if self.started {
            unix_ms.saturating_sub(self.last_ms)
        } else {
            unix_ms
        };
        self.started = true;
        self.last_ms = self.last_ms.max(unix_ms);
        put_varint(&mut payload, delta);

        let new: Vec<&str> = samples
            .iter()
            .filter(|(name, _)| !self.ids.contains_key(name))
            .map(|(name, _)| name.as_str())
            .collect();
        put_varint(&mut payload, new.len() as u64);
        for name in new {
            let id = self.ids.len() as u32;
            self.ids.insert(name.to_string(), id);
            self.prev.push(0);
            put_varint(&mut payload, name.len() as u64);
            payload.extend_from_slice(name.as_bytes());
        }

        put_varint(&mut payload, samples.len() as u64);
        for (name, value) in samples {
            let id = self.ids[name];
            let bits = value.to_bits();
            let xor = bits ^ self.prev[id as usize];
            self.prev[id as usize] = bits;
            put_varint(&mut payload, u64::from(id));
            put_varint(&mut payload, xor);
        }

        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
}

/// The queryable in-memory index of a tsdb file: every series with its
/// `(unix_ms, value)` points in time order.
#[derive(Debug, Default, Clone)]
pub struct TsdbData {
    series: BTreeMap<String, Vec<(u64, f64)>>,
}

/// What [`TsdbData::parse`] recovered from raw bytes.
#[derive(Debug)]
pub struct Recovered {
    /// The decoded history (longest valid prefix).
    pub data: TsdbData,
    /// Bytes of the valid prefix, including the header. Anything past
    /// this offset is a torn or corrupt tail.
    pub valid_len: usize,
    /// Encoder state positioned to continue appending after the valid
    /// prefix (same dictionary, same previous values).
    pub encoder: SeriesEncoder,
}

impl TsdbData {
    /// Decodes as much of `bytes` as is well-formed. A missing or
    /// mangled header yields an empty history with `valid_len == 0`;
    /// a bad frame (short, oversized, CRC mismatch, truncated payload)
    /// ends the scan at the last good frame.
    pub fn parse(bytes: &[u8]) -> Recovered {
        let mut data = TsdbData::default();
        let mut enc = SeriesEncoder::new();
        if bytes.len() < 5 || bytes[..4] != TSDB_MAGIC || bytes[4] != TSDB_VERSION {
            return Recovered {
                data,
                valid_len: 0,
                encoder: enc,
            };
        }
        let mut names: Vec<String> = Vec::new();
        let mut offset = 5usize;
        while let Some(head) = bytes.get(offset..offset + 8) {
            let len = u32::from_le_bytes(head[..4].try_into().unwrap());
            let crc = u32::from_le_bytes(head[4..].try_into().unwrap());
            if len > MAX_FRAME {
                break;
            }
            let start = offset + 8;
            let Some(payload) = bytes.get(start..start + len as usize) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            if !Self::decode_record(payload, &mut data, &mut enc, &mut names) {
                break;
            }
            offset = start + len as usize;
        }
        Recovered {
            data,
            valid_len: offset,
            encoder: enc,
        }
    }

    /// Decodes one payload into `data`, advancing the encoder mirror.
    /// Returns false on any malformed field.
    fn decode_record(
        payload: &[u8],
        data: &mut TsdbData,
        enc: &mut SeriesEncoder,
        names: &mut Vec<String>,
    ) -> bool {
        let mut pos = 0usize;
        let Some(delta) = get_varint(payload, &mut pos) else {
            return false;
        };
        let at_ms = if enc.started {
            enc.last_ms.saturating_add(delta)
        } else {
            delta
        };
        let Some(n_new) = get_varint(payload, &mut pos) else {
            return false;
        };
        let mut staged_names: Vec<String> = Vec::with_capacity(n_new as usize);
        for _ in 0..n_new {
            let Some(len) = get_varint(payload, &mut pos) else {
                return false;
            };
            let Some(raw) = payload.get(pos..pos + len as usize) else {
                return false;
            };
            pos += len as usize;
            let Ok(name) = std::str::from_utf8(raw) else {
                return false;
            };
            staged_names.push(name.to_string());
        }
        let Some(n_points) = get_varint(payload, &mut pos) else {
            return false;
        };
        let total_series = names.len() + staged_names.len();
        let mut staged_points: Vec<(u64, u64)> = Vec::with_capacity(n_points as usize);
        for _ in 0..n_points {
            let Some(id) = get_varint(payload, &mut pos) else {
                return false;
            };
            let Some(xor) = get_varint(payload, &mut pos) else {
                return false;
            };
            if id as usize >= total_series {
                return false;
            }
            staged_points.push((id, xor));
        }
        // All fields well-formed: commit atomically so a bad frame
        // never half-applies.
        for name in staged_names {
            let id = enc.ids.len() as u32;
            enc.ids.insert(name.clone(), id);
            enc.prev.push(0);
            names.push(name);
        }
        enc.started = true;
        enc.last_ms = at_ms;
        for (id, xor) in staged_points {
            let bits = enc.prev[id as usize] ^ xor;
            enc.prev[id as usize] = bits;
            data.series
                .entry(names[id as usize].clone())
                .or_default()
                .push((at_ms, f64::from_bits(bits)));
        }
        true
    }

    /// Loads and decodes a tsdb file (tolerating a torn tail).
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<TsdbData> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(Self::parse(&bytes).data)
    }

    /// Appends one scrape directly (the in-memory mirror the live
    /// alerting path uses, bypassing the encode/decode round trip).
    pub fn push(&mut self, unix_ms: u64, samples: &[(String, f64)]) {
        for (name, value) in samples {
            self.series
                .entry(name.clone())
                .or_default()
                .push((unix_ms, *value));
        }
    }

    /// All series names, sorted.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Points of one exact series.
    pub fn points(&self, name: &str) -> Option<&[(u64, f64)]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Timestamp of the earliest point anywhere.
    pub fn start_ms(&self) -> Option<u64> {
        self.series
            .values()
            .filter_map(|p| p.first().map(|&(t, _)| t))
            .min()
    }

    /// Timestamp of the latest point anywhere.
    pub fn end_ms(&self) -> Option<u64> {
        self.series
            .values()
            .filter_map(|p| p.last().map(|&(t, _)| t))
            .max()
    }

    fn matching<'a>(&'a self, selector: &'a str) -> impl Iterator<Item = &'a Vec<(u64, f64)>> + 'a {
        self.series
            .iter()
            .filter(move |(key, _)| selector_matches(selector, key))
            .map(|(_, points)| points)
    }

    /// Sum of the latest values of every series matching `selector`
    /// (counters with label variants sum naturally; a single-series
    /// selector is just its last value). `None` when nothing matches.
    pub fn last(&self, selector: &str) -> Option<f64> {
        let mut sum = 0.0;
        let mut any = false;
        for points in self.matching(selector) {
            if let Some(&(_, v)) = points.last() {
                sum += v;
                any = true;
            }
        }
        any.then_some(sum)
    }

    /// Counter increase over `(t0, t1]`, summed across matching series.
    /// Reset-aware like Prometheus `increase`: a drop in a
    /// monotonically-increasing series counts the post-reset value, not
    /// a negative delta. The baseline is the last point at or before
    /// `t0` (or the first in-window point when the series starts inside
    /// the window).
    pub fn delta(&self, selector: &str, t0: u64, t1: u64) -> f64 {
        let mut sum = 0.0;
        for points in self.matching(selector) {
            let mut prev: Option<f64> = points
                .iter()
                .take_while(|&&(t, _)| t <= t0)
                .last()
                .map(|&(_, v)| v);
            for &(_, v) in points.iter().filter(|&&(t, _)| t > t0 && t <= t1) {
                sum += match prev {
                    Some(p) if v >= p => v - p,
                    Some(_) => v, // counter reset
                    // Series born inside the window (e.g. a labeled
                    // error counter created by its first error): the
                    // whole first value is in-window increase.
                    None => v,
                };
                prev = Some(v);
            }
        }
        sum
    }

    /// Per-second rate of increase over `(t0, t1]`.
    pub fn rate(&self, selector: &str, t0: u64, t1: u64) -> f64 {
        let window_s = t1.saturating_sub(t0) as f64 / 1e3;
        if window_s <= 0.0 {
            return 0.0;
        }
        self.delta(selector, t0, t1) / window_s
    }

    fn window_values(&self, selector: &str, t0: u64, t1: u64) -> Vec<f64> {
        let mut values = Vec::new();
        for points in self.matching(selector) {
            values.extend(
                points
                    .iter()
                    .filter(|&&(t, _)| t >= t0 && t <= t1)
                    .map(|&(_, v)| v),
            );
        }
        values
    }

    /// Nearest-rank `q`-quantile of sampled values in `[t0, t1]` across
    /// matching series. `None` when the window is empty.
    pub fn quantile_over_time(&self, selector: &str, t0: u64, t1: u64, q: f64) -> Option<f64> {
        let mut values = self.window_values(selector, t0, t1);
        if values.is_empty() {
            return None;
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((q.clamp(0.0, 1.0) * values.len() as f64).ceil() as usize).max(1);
        Some(values[rank.min(values.len()) - 1])
    }

    /// Mean of sampled values in `[t0, t1]`.
    pub fn avg_over_time(&self, selector: &str, t0: u64, t1: u64) -> Option<f64> {
        let values = self.window_values(selector, t0, t1);
        if values.is_empty() {
            return None;
        }
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }

    /// Maximum sampled value in `[t0, t1]`.
    pub fn max_over_time(&self, selector: &str, t0: u64, t1: u64) -> Option<f64> {
        self.window_values(selector, t0, t1)
            .into_iter()
            .reduce(f64::max)
    }
}

/// Whether `selector` matches a series `key`. Exact match always wins;
/// a selector without a label block also matches every labeled variant
/// of the same metric and field — `serve_errors_total` matches
/// `serve_errors_total{code="invalid_k"}`, and `serve_latency_us.p99_us`
/// matches `serve_latency_us{shard="0"}.p99_us`.
pub fn selector_matches(selector: &str, key: &str) -> bool {
    if selector == key {
        return true;
    }
    if selector.contains('{') {
        return false;
    }
    match (key.find('{'), key.find('}')) {
        (Some(open), Some(close)) if close > open => {
            selector.len() == key.len() - (close + 1 - open)
                && selector.starts_with(&key[..open])
                && selector.ends_with(&key[close + 1..])
        }
        _ => false,
    }
}

/// Flattens a registry snapshot into scalar series: counters and gauges
/// keep their key, histograms expand into `<key>.<field>` series for
/// both the decaying window (`count`, `p50_us`, `p99_us`, `mean_us`)
/// and the since-start totals (`total_count`, `total_sum_us`,
/// `total_p50_us`, `total_p99_us`).
pub fn flatten_samples(samples: &[Sample]) -> Vec<(String, f64)> {
    let mut flat = Vec::with_capacity(samples.len() * 2);
    for sample in samples {
        match &sample.value {
            SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                flat.push((sample.key.clone(), *v as f64));
            }
            SampleValue::Histogram(h) => {
                let fields: [(&str, f64); 8] = [
                    ("count", h.count as f64),
                    ("p50_us", h.p50_us),
                    ("p99_us", h.p99_us),
                    ("mean_us", h.mean_us),
                    ("total_count", h.total_count as f64),
                    ("total_sum_us", h.total_sum_us as f64),
                    ("total_p50_us", h.total_p50_us),
                    ("total_p99_us", h.total_p99_us),
                ];
                for (field, value) in fields {
                    flat.push((format!("{}.{field}", sample.key), value));
                }
            }
        }
    }
    flat
}

/// A file-backed tsdb: create or recover, then append one record per
/// scrape. Appends are flushed per record so a crash loses at most the
/// in-flight frame — which [`TsdbData::parse`] then drops cleanly.
#[derive(Debug)]
pub struct Tsdb {
    file: File,
    encoder: SeriesEncoder,
    path: PathBuf,
    buf: Vec<u8>,
}

impl Tsdb {
    /// Creates (truncating) a fresh tsdb file.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Tsdb> {
        let mut file = File::create(&path)?;
        let mut header = Vec::with_capacity(5);
        SeriesEncoder::header(&mut header);
        file.write_all(&header)?;
        file.flush()?;
        Ok(Tsdb {
            file,
            encoder: SeriesEncoder::new(),
            path: path.as_ref().to_path_buf(),
            buf: Vec::new(),
        })
    }

    /// Opens an existing file for appending (creating it when missing),
    /// recovering the longest valid prefix: a torn tail from a crashed
    /// writer is truncated away and appending continues after the last
    /// good record. Returns the store plus everything it already held.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<(Tsdb, TsdbData)> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok((Self::create(path)?, TsdbData::default()));
        }
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let recovered = TsdbData::parse(&bytes);
        if recovered.valid_len == 0 {
            // Unrecognized header: refuse to append garbage onto
            // something that was never ours.
            if !bytes.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a tsdb file", path.display()),
                ));
            }
            return Ok((Self::create(path)?, TsdbData::default()));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(recovered.valid_len as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok((
            Tsdb {
                file,
                encoder: recovered.encoder,
                path: path.to_path_buf(),
                buf: Vec::new(),
            },
            recovered.data,
        ))
    }

    /// Appends one scrape record and flushes it.
    pub fn append(&mut self, unix_ms: u64, samples: &[(String, f64)]) -> io::Result<()> {
        self.buf.clear();
        self.encoder.append(unix_ms, samples, &mut self.buf);
        self.file.write_all(&self.buf)?;
        self.file.flush()
    }

    /// The file this store writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The fetch side of a [`Scraper`]: produces one flattened snapshot, or
/// `None` when the source is unreachable this tick.
pub type ScrapeFetch = Box<dyn FnMut() -> Option<Vec<(String, f64)>> + Send>;
/// The sink side: receives `(unix_ms, samples)` for every successful
/// scrape (typically [`Tsdb::append`] plus a [`TsdbData::push`] mirror).
pub type ScrapeSink = Box<dyn FnMut(u64, &[(String, f64)]) + Send>;

/// A background thread that polls `fetch` every `interval` and hands
/// each snapshot to `sink`. [`Scraper::stop`] performs one final scrape
/// before joining, so the history always ends with the terminal state.
#[derive(Debug)]
pub struct Scraper {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Scraper {
    /// Spawns the scrape loop (first scrape fires immediately).
    pub fn spawn(interval: Duration, mut fetch: ScrapeFetch, mut sink: ScrapeSink) -> Scraper {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut scrape = |sink: &mut ScrapeSink| {
                if let Some(samples) = fetch() {
                    sink(unix_ms_now(), &samples);
                }
            };
            loop {
                scrape(&mut sink);
                let tick = Instant::now();
                while tick.elapsed() < interval {
                    if stop_flag.load(Ordering::Relaxed) {
                        scrape(&mut sink);
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                if stop_flag.load(Ordering::Relaxed) {
                    scrape(&mut sink);
                    return;
                }
            }
        });
        Scraper {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the loop, waits for the final scrape, and joins.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Scraper {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_history() -> Vec<(u64, Vec<(String, f64)>)> {
        let s = |n: &str, v: f64| (n.to_string(), v);
        vec![
            (
                1000,
                vec![s("requests_total", 0.0), s("latency.p99_us", 800.0)],
            ),
            (
                1100,
                vec![s("requests_total", 10.0), s("latency.p99_us", 820.0)],
            ),
            (
                1200,
                vec![
                    s("requests_total", 25.0),
                    s("latency.p99_us", 1600.0),
                    s("errors_total{code=\"bad_k\"}", 2.0),
                ],
            ),
        ]
    }

    fn encode(history: &[(u64, Vec<(String, f64)>)]) -> Vec<u8> {
        let mut enc = SeriesEncoder::new();
        let mut out = Vec::new();
        SeriesEncoder::header(&mut out);
        for (at, samples) in history {
            enc.append(*at, samples, &mut out);
        }
        out
    }

    #[test]
    fn round_trips_exact_values_and_timestamps() {
        let bytes = encode(&sample_history());
        let recovered = TsdbData::parse(&bytes);
        assert_eq!(recovered.valid_len, bytes.len());
        let data = recovered.data;
        assert_eq!(
            data.points("requests_total").unwrap(),
            &[(1000, 0.0), (1100, 10.0), (1200, 25.0)]
        );
        assert_eq!(
            data.points("latency.p99_us").unwrap(),
            &[(1000, 800.0), (1100, 820.0), (1200, 1600.0)]
        );
        assert_eq!(
            data.points("errors_total{code=\"bad_k\"}").unwrap(),
            &[(1200, 2.0)]
        );
    }

    #[test]
    fn unchanged_values_cost_one_byte_per_point() {
        let mut enc = SeriesEncoder::new();
        let mut out = Vec::new();
        let samples = vec![("steady_total".to_string(), 42.0)];
        enc.append(1000, &samples, &mut out);
        let first = out.len();
        enc.append(1100, &samples, &mut out);
        // Frame overhead (8) + delta(1) + n_new(1) + n_points(1) +
        // id(1) + xor(1 — value unchanged, so XOR is zero).
        assert_eq!(out.len() - first, 13, "repeat point should be tiny");
    }

    #[test]
    fn torn_tail_and_corrupt_frames_are_dropped() {
        let bytes = encode(&sample_history());
        // Truncate mid-frame: everything before the cut survives.
        let cut = bytes.len() - 3;
        let recovered = TsdbData::parse(&bytes[..cut]);
        assert_eq!(recovered.data.points("requests_total").unwrap().len(), 2);
        assert!(recovered.valid_len < cut);
        // Flip a payload byte in the last frame: CRC catches it.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        let recovered = TsdbData::parse(&flipped);
        assert_eq!(recovered.data.points("requests_total").unwrap().len(), 2);
        // Garbage header: nothing valid at all.
        let recovered = TsdbData::parse(b"not a tsdb");
        assert_eq!(recovered.valid_len, 0);
        assert!(recovered.data.series_names().is_empty());
    }

    #[test]
    fn file_recovery_truncates_and_continues() {
        let dir = std::env::temp_dir().join(format!("smgcn_tsdb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recover.tsdb");
        let s = |v: f64| vec![("c_total".to_string(), v)];
        {
            let mut tsdb = Tsdb::create(&path).unwrap();
            tsdb.append(1000, &s(1.0)).unwrap();
            tsdb.append(1100, &s(2.0)).unwrap();
        }
        // Simulate a crash mid-append: lop bytes off the tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        {
            let (mut tsdb, data) = Tsdb::open(&path).unwrap();
            assert_eq!(data.points("c_total").unwrap(), &[(1000, 1.0)]);
            tsdb.append(1200, &s(5.0)).unwrap();
        }
        let data = TsdbData::load(&path).unwrap();
        assert_eq!(data.points("c_total").unwrap(), &[(1000, 1.0), (1200, 5.0)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn windowed_queries() {
        let bytes = encode(&sample_history());
        let data = TsdbData::parse(&bytes).data;
        // Counter delta across the full window and a sub-window.
        assert_eq!(data.delta("requests_total", 0, 2000), 25.0);
        assert_eq!(data.delta("requests_total", 1000, 1100), 10.0);
        // Rate over (1000, 1200]: 25 increments in 0.2 s.
        assert!((data.rate("requests_total", 1000, 1200) - 125.0).abs() < 1e-9);
        // Label variants fold into the bare selector.
        assert_eq!(data.delta("errors_total", 0, 2000), 2.0);
        assert_eq!(data.last("errors_total"), Some(2.0));
        // Percentile-over-time on a gauge-like series.
        assert_eq!(
            data.quantile_over_time("latency.p99_us", 0, 2000, 1.0),
            Some(1600.0)
        );
        assert_eq!(
            data.quantile_over_time("latency.p99_us", 0, 2000, 0.5),
            Some(820.0)
        );
        assert_eq!(data.max_over_time("latency.p99_us", 0, 1100), Some(820.0));
        assert_eq!(data.avg_over_time("missing", 0, 2000), None);
    }

    #[test]
    fn counter_reset_counts_post_reset_value() {
        let mut data = TsdbData::default();
        let s = |v: f64| vec![("c_total".to_string(), v)];
        data.push(1000, &s(10.0));
        data.push(1100, &s(14.0));
        data.push(1200, &s(3.0)); // process restarted
        data.push(1300, &s(5.0));
        assert_eq!(data.delta("c_total", 1000, 1300), 4.0 + 3.0 + 2.0);
    }

    #[test]
    fn selector_matching_rules() {
        assert!(selector_matches("a_total", "a_total"));
        assert!(selector_matches("a_total", "a_total{code=\"x\"}"));
        assert!(selector_matches("lat.p99_us", "lat{shard=\"0\"}.p99_us"));
        assert!(!selector_matches("a_total", "ab_total{code=\"x\"}"));
        assert!(!selector_matches(
            "a_total{code=\"x\"}",
            "a_total{code=\"y\"}"
        ));
        assert!(!selector_matches("a_total", "a_total.count"));
    }

    #[test]
    fn scraper_collects_and_final_scrape_lands() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        let mut n = 0u64;
        let scraper = Scraper::spawn(
            Duration::from_millis(10),
            Box::new(move || {
                n += 1;
                Some(vec![("ticks_total".to_string(), n as f64)])
            }),
            Box::new(move |at, samples| {
                sink_seen.lock().unwrap().push((at, samples.to_vec()));
            }),
        );
        std::thread::sleep(Duration::from_millis(35));
        scraper.stop();
        let seen = seen.lock().unwrap();
        assert!(
            seen.len() >= 3,
            "expected several scrapes, got {}",
            seen.len()
        );
        let last = &seen[seen.len() - 1].1[0];
        assert_eq!(last.1, seen.len() as f64, "final scrape must land on stop");
    }
}
