//! Per-request tracing: span records, trace-id minting, deterministic
//! sampling, and a bounded in-memory trace journal.
//!
//! A trace is a flat list of named spans that **partitions** the
//! traced process's handle time: each span starts where the previous
//! one ended (the builder enforces monotonic starts) and the final
//! "remainder" span runs to the moment the response is assembled, so
//! `sum(span.dur_us)` equals the observed wall latency by construction.
//! The router splices replica spans into its own timeline by rebasing
//! their offsets, keeping the same invariant at fleet level.
//!
//! Ids are minted as lowercase hex from a process-unique counter seeded
//! off the wall clock, so ids from routers and replicas (even in one
//! test process) never collide in practice. Clients may supply their
//! own `trace_id`; it is echoed verbatim end to end.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One named span: `[start_us, start_us + dur_us)` relative to the
/// trace anchor (request arrival at the traced process).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`parse`, `queue`, `gemm`, ...).
    pub name: String,
    /// Offset from the trace anchor, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// Accumulates a partition of one request's wall time into spans.
#[derive(Debug)]
pub struct TraceBuilder {
    anchor: Instant,
    spans: Vec<SpanRecord>,
}

impl TraceBuilder {
    /// A builder anchored at `anchor` (request arrival).
    pub fn new(anchor: Instant) -> Self {
        Self {
            anchor,
            spans: Vec::with_capacity(8),
        }
    }

    /// Offset of the end of the last span (0 when empty).
    pub fn end_us(&self) -> u64 {
        self.spans
            .last()
            .map(|s| s.start_us + s.dur_us)
            .unwrap_or(0)
    }

    /// Appends a span running from the end of the last span for
    /// `dur_us` microseconds.
    pub fn push(&mut self, name: &str, dur_us: u64) {
        let start_us = self.end_us();
        self.spans.push(SpanRecord {
            name: name.to_string(),
            start_us,
            dur_us,
        });
    }

    /// Appends a span running from the end of the last span up to now.
    pub fn cover_to_now(&mut self, name: &str) {
        let now_us = self.anchor.elapsed().as_micros() as u64;
        let dur = now_us.saturating_sub(self.end_us());
        self.push(name, dur);
    }

    /// Sum of all span durations (== `end_us`, since spans partition).
    pub fn total_us(&self) -> u64 {
        self.spans.iter().map(|s| s.dur_us).sum()
    }

    /// The spans recorded so far.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Consumes the builder, yielding its spans.
    pub fn into_spans(self) -> Vec<SpanRecord> {
        self.spans
    }
}

/// Mints a process-unique trace id (16 lowercase hex chars).
pub fn mint_trace_id() -> String {
    static SEQ: OnceLock<AtomicU64> = OnceLock::new();
    let seq = SEQ.get_or_init(|| {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // Spread the seed so sequential ids from different processes
        // started close together still diverge quickly.
        AtomicU64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    });
    format!(
        "{:016x}",
        seq.fetch_add(0x2545_f491_4f6c_dd1d, Ordering::Relaxed)
    )
}

/// Deterministic 1-in-`every` sampler (0 = never fires).
#[derive(Debug, Default)]
pub struct Sampler {
    every: u64,
    n: AtomicU64,
}

impl Sampler {
    /// Samples one request in `every` (0 disables sampling entirely).
    pub fn new(every: u64) -> Self {
        Self {
            every,
            n: AtomicU64::new(0),
        }
    }

    /// A sampler firing at roughly `rate` (e.g. 0.01 → 1-in-100).
    pub fn from_rate(rate: f64) -> Self {
        if rate <= 0.0 {
            return Self::new(0);
        }
        Self::new((1.0 / rate.min(1.0)).round().max(1.0) as u64)
    }

    /// True when sampling is configured at all.
    pub fn enabled(&self) -> bool {
        self.every > 0
    }

    /// Counts one request; true when this one should be sampled.
    pub fn fire(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.n
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }
}

/// One completed trace held in the journal.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// The trace id (minted or client-supplied).
    pub trace_id: String,
    /// Unix milliseconds when the trace completed.
    pub unix_ms: u64,
    /// Total wall time covered by the spans, microseconds.
    pub wall_us: u64,
    /// The span partition.
    pub spans: Vec<SpanRecord>,
}

/// A bounded ring of recent traces (oldest evicted first).
#[derive(Debug)]
pub struct TraceJournal {
    cap: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<TraceRecord>>,
}

impl TraceJournal {
    /// A journal retaining at most `cap` traces.
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(cap.max(1))),
        }
    }

    /// Appends a trace, evicting the oldest at capacity. Returns true
    /// when an older trace was dropped to make room — callers surface
    /// that as a `traces_dropped_total` counter so overflow is visible
    /// instead of silent.
    pub fn record(&self, trace: TraceRecord) -> bool {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap();
        let evicted = ring.len() == self.cap;
        if evicted {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(trace);
        evicted
    }

    /// The most recent `limit` traces, oldest first.
    pub fn recent(&self, limit: usize) -> Vec<TraceRecord> {
        let ring = self.ring.lock().unwrap();
        ring.iter()
            .skip(ring.len().saturating_sub(limit))
            .cloned()
            .collect()
    }

    /// Total traces ever recorded (including evicted ones).
    pub fn recorded_total(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces evicted from the ring to make room for newer ones.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_partition_and_stay_monotonic() {
        let mut b = TraceBuilder::new(Instant::now());
        b.push("parse", 10);
        b.push("queue", 5);
        b.push("gemm", 20);
        let spans = b.spans();
        assert_eq!(spans[1].start_us, 10);
        assert_eq!(spans[2].start_us, 15);
        assert_eq!(b.total_us(), 35);
        assert_eq!(b.end_us(), 35);
        for w in spans.windows(2) {
            assert!(w[1].start_us >= w[0].start_us);
        }
    }

    #[test]
    fn cover_to_now_closes_the_partition() {
        let anchor = Instant::now();
        let mut b = TraceBuilder::new(anchor);
        b.push("work", 1);
        std::thread::sleep(Duration::from_millis(2));
        b.cover_to_now("finish");
        let wall = anchor.elapsed().as_micros() as u64;
        // Spans sum to (almost exactly) the wall time at close.
        assert!(b.total_us() <= wall);
        assert!(wall - b.total_us() < 2_000, "partition gap too large");
    }

    #[test]
    fn minted_ids_are_unique_hex() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn sampler_fires_deterministically() {
        let s = Sampler::new(3);
        let fired: Vec<bool> = (0..6).map(|_| s.fire()).collect();
        assert_eq!(fired, vec![true, false, false, true, false, false]);
        let never = Sampler::new(0);
        assert!(!never.enabled());
        assert!((0..100).all(|_| !never.fire()));
        assert_eq!(Sampler::from_rate(0.01).every, 100);
    }

    #[test]
    fn journal_is_bounded_and_counts_evictions() {
        let j = TraceJournal::new(2);
        let mut evictions = 0u64;
        for i in 0..5u64 {
            if j.record(TraceRecord {
                trace_id: format!("t{i}"),
                unix_ms: i,
                wall_us: i,
                spans: vec![],
            }) {
                evictions += 1;
            }
        }
        let recent = j.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].trace_id, "t3");
        assert_eq!(recent[1].trace_id, "t4");
        assert_eq!(j.recorded_total(), 5);
        assert_eq!(j.dropped_total(), 3);
        assert_eq!(evictions, 3);
    }
}
