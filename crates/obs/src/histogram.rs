//! Lock-free latency histogram with a decaying window *and* undecayed
//! since-start totals.
//!
//! The router's health probe needs more than liveness: a replica that
//! answers probes but serves requests slowly (cold cache after a
//! restart, noisy neighbour, runaway batch) should be ejected just like
//! a dead one. That requires per-request latency *percentiles* in the
//! stats report, cheap enough to record on every request.
//!
//! [`LatencyHistogram`] keeps power-of-two microsecond buckets behind
//! relaxed atomics: `record` is a couple of arithmetic ops plus a few
//! `fetch_add`s, so the serving hot path never takes a lock for
//! telemetry. Quantiles are answered from a snapshot of the bucket
//! counts and are exact to within one bucket (a factor-of-two bound on
//! the reported value — plenty for an eject/keep decision, which
//! compares against thresholds an order of magnitude apart).
//!
//! The histogram **decays**: every [`DECAY_INTERVAL`] the windowed
//! bucket counts (and the count/sum accumulators) are halved, so the
//! reported percentiles weight recent traffic with an
//! exponentially-fading memory (effective window ≈ 2x the interval at
//! steady rate) instead of averaging over the process lifetime. This is
//! what keeps slow-replica ejection honest *and recoverable*: one
//! historical slow burst stops dominating p99 once fresh observations
//! (including the router's own probe requests) accumulate against the
//! fading residue, so an ejected-for-slowness replica heals within a
//! few decay periods of its latency actually recovering. Decay is
//! triggered lazily from `record`; the halving races benignly with
//! concurrent records (telemetry counts may be off by a handful, never
//! the invariants).
//!
//! Bench runs want the opposite: percentiles over *everything observed
//! since start*, unaffected by when the snapshot happens to land in the
//! decay cycle. A second set of buckets is therefore accumulated in
//! parallel and never halved; [`LatencySnapshot::total_quantile_us`]
//! reads those.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of power-of-two buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` microseconds; the last bucket absorbs everything
/// from ~9 hours up.
const BUCKETS: usize = 45;

/// How often the bucket counts are halved (lazily, from `record`).
pub const DECAY_INTERVAL: std::time::Duration = std::time::Duration::from_secs(10);

/// A fixed-bucket, atomically-updated latency histogram (microseconds)
/// with an exponentially-decaying window plus undecayed totals.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    /// Undecayed since-start parallels of the windowed accumulators.
    total_buckets: [AtomicU64; BUCKETS],
    total_count: AtomicU64,
    total_sum_us: AtomicU64,
    /// Construction time anchor for the decay clock.
    anchor: Instant,
    /// Milliseconds since `anchor` of the last decay pass.
    last_decay_ms: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One consistent read of a [`LatencyHistogram`].
#[derive(Clone, Debug)]
pub struct LatencySnapshot {
    buckets: [u64; BUCKETS],
    total_buckets: [u64; BUCKETS],
    /// Observations in the decaying window.
    pub count: u64,
    /// Sum of windowed latencies, microseconds.
    pub sum_us: u64,
    /// Observations since start (never decayed).
    pub total_count: u64,
    /// Sum of all latencies since start, microseconds.
    pub total_sum_us: u64,
}

impl Default for LatencySnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            total_buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            total_count: 0,
            total_sum_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            total_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_count: AtomicU64::new(0),
            total_sum_us: AtomicU64::new(0),
            anchor: Instant::now(),
            last_decay_ms: AtomicU64::new(0),
        }
    }

    /// Records one observation of `micros` microseconds.
    pub fn record(&self, micros: u64) {
        self.maybe_decay();
        let bucket = (63 - micros.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(micros, Ordering::Relaxed);
        self.total_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_count.fetch_add(1, Ordering::Relaxed);
        self.total_sum_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// Halves every windowed accumulator once per elapsed
    /// [`DECAY_INTERVAL`]. The CAS on the decay clock elects exactly one
    /// caller per period; the halving itself is load/store (racing
    /// increments may survive a halving or be halved with the rest —
    /// noise of a few counts). The `total_*` accumulators are never
    /// touched.
    fn maybe_decay(&self) {
        let now_ms = self.anchor.elapsed().as_millis() as u64;
        let last = self.last_decay_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < DECAY_INTERVAL.as_millis() as u64 {
            return;
        }
        if self
            .last_decay_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return; // another thread is decaying this period
        }
        // If several periods elapsed idle, decay once per period so a
        // long-quiet histogram fades just like a busy one.
        let periods =
            (now_ms.saturating_sub(last) / DECAY_INTERVAL.as_millis() as u64).clamp(1, 63) as u32;
        for b in &self.buckets {
            b.store(b.load(Ordering::Relaxed) >> periods, Ordering::Relaxed);
        }
        self.count.store(
            self.count.load(Ordering::Relaxed) >> periods,
            Ordering::Relaxed,
        );
        self.sum_us.store(
            self.sum_us.load(Ordering::Relaxed) >> periods,
            Ordering::Relaxed,
        );
    }

    /// Snapshots the bucket counts for quantile queries. Concurrent
    /// `record` calls may straddle the snapshot; each observation is
    /// counted at most once per field, which is all percentile reporting
    /// needs.
    pub fn snapshot(&self) -> LatencySnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        let mut total_buckets = [0u64; BUCKETS];
        for (out, b) in total_buckets.iter_mut().zip(&self.total_buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        LatencySnapshot {
            count: buckets.iter().sum(),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            total_count: total_buckets.iter().sum(),
            total_sum_us: self.total_sum_us.load(Ordering::Relaxed),
            buckets,
            total_buckets,
        }
    }
}

fn bucket_quantile(buckets: &[u64; BUCKETS], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return 2f64.powi(i as i32 + 1);
        }
    }
    2f64.powi(BUCKETS as i32)
}

impl LatencySnapshot {
    /// The windowed latency at quantile `q` in `[0, 1]`, microseconds,
    /// as the upper bound of the bucket holding that rank (0 when
    /// empty).
    pub fn quantile_us(&self, q: f64) -> f64 {
        bucket_quantile(&self.buckets, self.count, q)
    }

    /// The since-start (undecayed) latency at quantile `q`, same bucket
    /// semantics as [`LatencySnapshot::quantile_us`].
    pub fn total_quantile_us(&self, q: f64) -> f64 {
        bucket_quantile(&self.total_buckets, self.total_count, q)
    }

    /// Windowed mean latency, microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Since-start mean latency, microseconds (0 when empty).
    pub fn total_mean_us(&self) -> f64 {
        if self.total_count == 0 {
            0.0
        } else {
            self.total_sum_us as f64 / self.total_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile_us(0.5), 0.0);
        assert_eq!(s.mean_us(), 0.0);
        assert_eq!(s.total_count, 0);
        assert_eq!(s.total_quantile_us(0.99), 0.0);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = LatencyHistogram::new();
        // 99 observations at ~100 µs (bucket [64, 128)), one at ~1 s.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.quantile_us(0.50), 128.0);
        assert_eq!(s.quantile_us(0.99), 128.0);
        assert!(s.quantile_us(1.0) >= 1_000_000.0);
        assert!((s.mean_us() - (99.0 * 100.0 + 1_000_000.0) / 100.0).abs() < 1e-9);
        // Window untouched by decay here, so totals agree exactly.
        assert_eq!(s.total_count, 100);
        assert_eq!(s.total_quantile_us(0.50), 128.0);
        assert!((s.total_mean_us() - s.mean_us()).abs() < 1e-9);
    }

    #[test]
    fn zero_and_huge_latencies_clamp_into_range() {
        let h = LatencyHistogram::new();
        h.record(0); // clamps to the [1, 2) bucket
        h.record(u64::MAX); // clamps to the last bucket
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.quantile_us(0.25), 2.0);
        assert!(s.quantile_us(1.0) > 1e9);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(1 + (t * 1000 + i) % 500);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.total_count, 4000);
    }

    #[test]
    fn totals_survive_what_decay_would_halve() {
        // Simulate a decay pass directly: windowed halves, totals hold.
        let h = LatencyHistogram::new();
        for _ in 0..8 {
            h.record(100);
        }
        for b in &h.buckets {
            b.store(b.load(Ordering::Relaxed) >> 1, Ordering::Relaxed);
        }
        h.count
            .store(h.count.load(Ordering::Relaxed) >> 1, Ordering::Relaxed);
        h.sum_us
            .store(h.sum_us.load(Ordering::Relaxed) >> 1, Ordering::Relaxed);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.total_count, 8);
        assert_eq!(s.total_sum_us, 800);
        assert_eq!(s.total_quantile_us(0.99), 128.0);
    }
}
