//! The loadgen determinism contract, property-tested: the same seed
//! must yield a **byte-identical** request schedule and deterministic
//! scenario report across runs and across executor thread counts.
//!
//! This is what makes scenario reports comparable between CI runs (and
//! between a laptop and CI): if the workload fingerprints match, any
//! difference is the stack's behaviour, not the load's.

use proptest::prelude::*;
use smgcn_loadgen::report::{ScenarioReport, WorkloadSummary};
use smgcn_loadgen::slo::SloVerdict;
use smgcn_loadgen::{build, Measured, ScenarioConfig, ScenarioKind};

/// A deterministic report skeleton for a workload (what `--plan` emits:
/// the workload section only, no execution).
fn plan_report(kind: ScenarioKind, config: &ScenarioConfig) -> String {
    ScenarioReport {
        workload: WorkloadSummary::from_workload(&build(kind, config)),
        measured: Measured::default(),
        verdict: SloVerdict {
            violations: Vec::new(),
        },
        metrics_json: None,
        events_json: None,
        tsdb: None,
        profile_json: None,
        experiment_json: None,
    }
    .workload_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn same_seed_byte_identical_schedule_across_runs_and_thread_counts(
        seed in 0u64..1_000_000,
        measure_ms in 200u64..1200,
        workers_a in 1usize..6,
        workers_b in 6usize..40,
    ) {
        for kind in ScenarioKind::all() {
            let config_a = ScenarioConfig {
                seed, measure_ms, workers: workers_a, k: 10, storm_connections: None,
            };
            let config_b = ScenarioConfig { workers: workers_b, ..config_a.clone() };

            // Same run config twice: byte-identical canonical schedule.
            let first = build(kind, &config_a);
            let second = build(kind, &config_a);
            prop_assert_eq!(
                first.schedule.canonical_string(),
                second.schedule.canonical_string(),
                "{} schedule not reproducible", kind.name()
            );

            // Different executor thread count: still byte-identical.
            let wide = build(kind, &config_b);
            prop_assert_eq!(
                first.schedule.canonical_string(),
                wide.schedule.canonical_string(),
                "{} schedule depends on worker count", kind.name()
            );
            prop_assert_eq!(first.schedule.digest(), wide.schedule.digest());

            // And the deterministic scenario report is byte-identical
            // across both axes.
            let report = plan_report(kind, &config_a);
            prop_assert_eq!(&report, &plan_report(kind, &config_a));
            prop_assert_eq!(&report, &plan_report(kind, &config_b));
        }
    }

    #[test]
    fn different_seeds_give_different_schedules(
        seed in 0u64..1_000_000,
    ) {
        let a = ScenarioConfig { seed, measure_ms: 300, ..ScenarioConfig::default() };
        let b = ScenarioConfig { seed: seed ^ 0xdead_beef, ..a.clone() };
        let kind = ScenarioKind::SteadyZipfian;
        prop_assert!(
            build(kind, &a).schedule.digest() != build(kind, &b).schedule.digest(),
            "distinct seeds produced identical schedules"
        );
    }
}

/// End to end: actually *running* the scenario twice must reproduce the
/// deterministic report section byte for byte (measurements differ; the
/// workload section must not).
#[test]
fn executed_runs_reproduce_the_deterministic_report() {
    let config = ScenarioConfig {
        seed: 77,
        measure_ms: 300,
        workers: 4,
        k: 10,
        storm_connections: None,
    };
    let first = smgcn_loadgen::run_scenario(ScenarioKind::SteadyZipfian, &config);
    let wide = smgcn_loadgen::run_scenario(
        ScenarioKind::SteadyZipfian,
        &ScenarioConfig {
            workers: 9,
            ..config.clone()
        },
    );
    assert_eq!(
        first.workload_json(),
        wide.workload_json(),
        "deterministic report section varied across runs/thread counts"
    );
    assert!(
        first.verdict.passed(),
        "steady-zipfian smoke violated its SLO: {:?}",
        first.verdict.violations
    );
    assert_eq!(first.measured.failures, 0);
    // The run captured the fleet's counter deltas: every query the
    // workers sent shows up in the server's own request ledger.
    let requests = first
        .measured
        .counter_deltas
        .iter()
        .find(|(name, _)| name == "serve_requests_total")
        .map(|(_, delta)| *delta)
        .expect("serve_requests_total delta");
    assert!(
        requests >= first.measured.executed as f64,
        "server counted {requests} requests for {} executed",
        first.measured.executed
    );
    assert!(
        first.metrics_json.is_some(),
        "run should capture the final metrics snapshot"
    );
    // The silence half of the alert contract, and proof it is not
    // vacuous: the scenario carries a real burn-rate rule, the scraped
    // history saw real traffic on the rule's total counter, and the
    // rule still never fired on a clean run. (The verdict above would
    // already have failed on a firing — expect_silent is in the SLO.)
    assert!(
        first.measured.alerts_fired.is_empty(),
        "steady-zipfian paged on a clean run: {:?}",
        first.measured.alerts_fired
    );
    let workload = build(ScenarioKind::SteadyZipfian, &config);
    assert!(!workload.alerts.rules.is_empty());
    assert_eq!(workload.alerts.expect_silent, vec!["availability-burn"]);
    let tsdb = first.tsdb.as_ref().expect("scraped history present");
    let history = smgcn_obs::tsdb::TsdbData::parse(tsdb).data;
    assert!(
        history.last("serve_requests_total").unwrap_or(0.0) > 0.0,
        "silence is only meaningful over real traffic: {:?}",
        history.series_names()
    );
}
