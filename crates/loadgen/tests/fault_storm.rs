//! End-to-end fault-storm scenario run.
//!
//! Lives in its own integration-test binary: the engine installs the
//! scenario's fault plan process-globally for the duration of the run,
//! and cargo runs tests within one binary concurrently — any other test
//! sharing the process would see injected faults.
//!
//! This is the issue's headline acceptance run: a seeded storm of link
//! faults plus a corrupted publish against three routed replicas, under
//! the exact-rankings generation invariant, a zero failure budget, and
//! a p99 ceiling — and the deterministic report (schedule + fault-plan
//! digests) must be byte-identical when the workload is rebuilt.

use smgcn_loadgen::{build, run, ScenarioConfig, ScenarioKind, WorkloadSummary};
use smgcn_obs::tsdb::TsdbData;

#[test]
fn fault_storm_holds_slos_under_injected_faults() {
    let config = ScenarioConfig {
        measure_ms: 1500,
        workers: 4,
        ..ScenarioConfig::default()
    };
    let workload = build(ScenarioKind::FaultStorm, &config);
    assert!(workload.fault_plan.is_some());
    let report = run(&workload);

    assert!(
        report.verdict.passed(),
        "fault-storm SLO violations: {:?}",
        report.verdict.violations
    );
    assert!(
        report.measured.faults_injected > 0,
        "the storm must actually inject faults, not just plan them"
    );
    // Both generations served: the boot model and the post-storm clean
    // publish (the corrupted publish must NOT have minted a generation).
    assert_eq!(
        report.measured.generations_seen,
        vec![0, 1],
        "expected exactly the boot generation and the clean publish"
    );

    // The deterministic face survives a rebuild byte for byte — same
    // seed, same schedule digest, same fault-plan digest.
    let rebuilt = WorkloadSummary::from_workload(&build(ScenarioKind::FaultStorm, &config));
    assert_eq!(report.workload, rebuilt);
    assert!(report.workload.fault_plan_digest.is_some());

    // The alert contract: the storm burns the availability budget, so
    // the scenario's burn-rate rule must have paged (the verdict above
    // already failed if it hadn't — this pins the report surface too).
    assert_eq!(
        report.measured.alerts_fired,
        vec!["availability-burn".to_string()],
        "the storm must trip exactly the availability burn-rate rule"
    );
    assert!(report.measured.alert_firings > 0);

    // The scraped history ships in the report, parses cleanly, and can
    // reproduce the headline client p99 from the tsdb alone.
    let tsdb = report.tsdb.as_ref().expect("scraped history present");
    let recovered = TsdbData::parse(tsdb);
    assert_eq!(
        recovered.valid_len,
        tsdb.len(),
        "history must round-trip without a corrupt tail"
    );
    let history = recovered.data;
    assert!(
        history
            .series_names()
            .iter()
            .any(|n| n.starts_with("router_forwarded_total")),
        "router counters must be in the scraped history: {:?}",
        history.series_names()
    );
    let p99_from_history = history
        .last("client_latency_ms.p99")
        .expect("client summary series present");
    let diff = (p99_from_history - report.measured.p99_ms).abs();
    assert!(
        diff <= 0.1 * report.measured.p99_ms.max(1e-9),
        "tsdb-reproduced p99 {p99_from_history} vs report {}",
        report.measured.p99_ms
    );

    let json = report.to_json_string();
    let parsed = smgcn_serve::json::parse(json.trim()).expect("report is valid json");
    assert!(parsed
        .get("workload")
        .and_then(|w| w.get("fault_plan_digest"))
        .and_then(smgcn_serve::json::Json::as_str)
        .is_some());
    assert!(parsed
        .get("measured")
        .and_then(|m| m.get("faults_injected"))
        .and_then(smgcn_serve::json::Json::as_num)
        .is_some_and(|n| n > 0.0));
}
