//! End-to-end fault-storm scenario run.
//!
//! Lives in its own integration-test binary: the engine installs the
//! scenario's fault plan process-globally for the duration of the run,
//! and cargo runs tests within one binary concurrently — any other test
//! sharing the process would see injected faults.
//!
//! This is the issue's headline acceptance run: a seeded storm of link
//! faults plus a corrupted publish against three routed replicas, under
//! the exact-rankings generation invariant, a zero failure budget, and
//! a p99 ceiling — and the deterministic report (schedule + fault-plan
//! digests) must be byte-identical when the workload is rebuilt.

use smgcn_loadgen::{build, run, ScenarioConfig, ScenarioKind, WorkloadSummary};

#[test]
fn fault_storm_holds_slos_under_injected_faults() {
    let config = ScenarioConfig {
        measure_ms: 1500,
        workers: 4,
        ..ScenarioConfig::default()
    };
    let workload = build(ScenarioKind::FaultStorm, &config);
    assert!(workload.fault_plan.is_some());
    let report = run(&workload);

    assert!(
        report.verdict.passed(),
        "fault-storm SLO violations: {:?}",
        report.verdict.violations
    );
    assert!(
        report.measured.faults_injected > 0,
        "the storm must actually inject faults, not just plan them"
    );
    // Both generations served: the boot model and the post-storm clean
    // publish (the corrupted publish must NOT have minted a generation).
    assert_eq!(
        report.measured.generations_seen,
        vec![0, 1],
        "expected exactly the boot generation and the clean publish"
    );

    // The deterministic face survives a rebuild byte for byte — same
    // seed, same schedule digest, same fault-plan digest.
    let rebuilt = WorkloadSummary::from_workload(&build(ScenarioKind::FaultStorm, &config));
    assert_eq!(report.workload, rebuilt);
    assert!(report.workload.fault_plan_digest.is_some());

    let json = report.to_json_string();
    let parsed = smgcn_serve::json::parse(json.trim()).expect("report is valid json");
    assert!(parsed
        .get("workload")
        .and_then(|w| w.get("fault_plan_digest"))
        .and_then(smgcn_serve::json::Json::as_str)
        .is_some());
    assert!(parsed
        .get("measured")
        .and_then(|m| m.get("faults_injected"))
        .and_then(smgcn_serve::json::Json::as_num)
        .is_some_and(|n| n > 0.0));
}
