//! The named scenarios and their deterministic workload construction.
//!
//! Each scenario fixes four things up front, all derived from the seed:
//! the **topology** (single server, routed replicas, or the online
//! pipeline), the **request schedule** (arrival offsets + payloads), the
//! **chaos plan** (which replica dies when, when a publish or refresh
//! fires), and the **SLOs** the run must satisfy. Execution measures;
//! it never decides.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smgcn_bench::harness::zipf_index;
use smgcn_faults::{sites, FaultAction, FaultPlan};
use smgcn_obs::alert::{SloRule, SLOW_PAIR};

use crate::schedule::{Op, Request, Schedule};
use crate::slo::{GenCheck, Slo};

/// Symptom-vocabulary width of the synthetic serving topologies.
pub const N_SYMPTOMS: usize = 64;
/// Herb-vocabulary width of the synthetic serving topologies.
pub const N_HERBS: usize = 256;
/// Embedding width of the synthetic serving topologies.
pub const DIM: usize = 32;

/// The candidate variant name experiment scenarios publish and split
/// traffic toward.
pub const CANDIDATE: &str = "canary";

/// Distinct sticky client identities the `ab-canary` schedule stamps on
/// its queries (`c0`..`c{N-1}`): enough that a 10% split deterministic
/// in the client name assigns several of them to the candidate.
pub const N_CLIENTS: u32 = 24;

/// The eight scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Steady-state load with Zipf-skewed symptom-set popularity against
    /// one server — the baseline serving regime.
    SteadyZipfian,
    /// A burst arrival (flash crowd) against a routed pair of replicas:
    /// the schedule's middle fifth arrives at 10x the base rate.
    FlashCrowd,
    /// Concurrent WAL ingestion + queries against the online pipeline,
    /// with a refresh (delta → finetune → hot swap) firing mid-run.
    IngestHeavy,
    /// A rolling model publish across three routed replicas mid-load;
    /// every response must match the generation it claims.
    RollingPublish,
    /// One of three routed replicas killed mid-load; the router must
    /// hide the failure from clients entirely.
    ReplicaKill,
    /// A seeded fault storm against three routed replicas: injected
    /// delays/drops on the replica links, a corrupted publish that the
    /// fleet must reject wholesale, then a clean publish that must still
    /// land — all under the exact-rankings generation invariant.
    FaultStorm,
    /// An online A/B canary against three routed replicas: a candidate
    /// variant published mid-run, a 90/10 split installed under load,
    /// then halted before the end. Sticky per-client assignment, exact
    /// per-variant rankings/generations and a zero error budget are all
    /// asserted.
    AbCanary,
    /// A connection storm against one reactor server: 10k+ persistent
    /// keep-alive connections held open for the whole run, a slow-writer
    /// cohort dribbling request bytes, and a steady query lane whose p99
    /// must stay within budget. Connections are bounded by file
    /// descriptors (the readiness reactor), not threads — the scenario
    /// asserts every connection opens, zero requests fail, the server
    /// never sheds, and resident memory stays bounded.
    ConnectionStorm,
}

impl ScenarioKind {
    /// All scenarios, in suite order.
    pub fn all() -> [Self; 8] {
        [
            Self::SteadyZipfian,
            Self::FlashCrowd,
            Self::IngestHeavy,
            Self::RollingPublish,
            Self::ReplicaKill,
            Self::FaultStorm,
            Self::AbCanary,
            Self::ConnectionStorm,
        ]
    }

    /// The CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Self::SteadyZipfian => "steady-zipfian",
            Self::FlashCrowd => "flash-crowd",
            Self::IngestHeavy => "ingest-heavy",
            Self::RollingPublish => "rolling-publish-under-load",
            Self::ReplicaKill => "replica-kill",
            Self::FaultStorm => "fault-storm",
            Self::AbCanary => "ab-canary",
            Self::ConnectionStorm => "connection-storm",
        }
    }

    /// Parses a CLI name.
    pub fn from_arg(arg: &str) -> Option<Self> {
        Self::all().into_iter().find(|k| k.name() == arg)
    }

    /// One-line description for `--help` and the README.
    pub fn description(self) -> &'static str {
        match self {
            Self::SteadyZipfian => "steady Zipf-skewed query load against one server",
            Self::FlashCrowd => "10x burst arrival mid-window against 2 routed replicas",
            Self::IngestHeavy => "concurrent WAL ingest + queries, refresh/hot-swap mid-run",
            Self::RollingPublish => "rolling model publish across 3 replicas under load",
            Self::ReplicaKill => "kill 1 of 3 replicas under load (router hides it)",
            Self::FaultStorm => {
                "seeded net-fault storm + corrupt publish across 3 replicas under load"
            }
            Self::AbCanary => "90/10 A/B canary split installed and halted across 3 replicas",
            Self::ConnectionStorm => {
                "10k+ persistent connections + slow writers against 1 reactor server"
            }
        }
    }
}

/// Scenario knobs. Everything the schedule depends on lives here; the
/// executor's worker count deliberately does not affect the schedule.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Schedule/corpus seed.
    pub seed: u64,
    /// Schedule horizon in milliseconds (CI smoke: 2000; soak: 5000).
    pub measure_ms: u64,
    /// Executor worker threads (an execution detail — never changes the
    /// schedule or the deterministic report).
    pub workers: usize,
    /// Ranking depth per query.
    pub k: usize,
    /// Override for the connection-storm cohort size. `None` keeps the
    /// [`StormSpec`] default (10k+). The knob exists for
    /// fd-constrained hosts: one loadgen process holds **both** ends of
    /// every storm socket, so the default cohort needs
    /// `RLIMIT_NOFILE` hard-capped no lower than ~2x the cohort (the
    /// engine raises the soft limit itself).
    pub storm_connections: Option<usize>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            seed: 2020,
            measure_ms: 2000,
            workers: 8,
            k: 10,
            storm_connections: None,
        }
    }
}

/// What stack the engine stands up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// One `smgcn-serve` server, queried directly.
    SingleServer,
    /// N replicas behind an `smgcn-cluster` router.
    Routed {
        /// Replica count.
        replicas: usize,
    },
    /// One server over an `OnlinePipeline`'s model slot (tiny real
    /// corpus + quick-trained model).
    OnlinePipeline,
}

impl Topology {
    /// The report label.
    pub fn describe(self) -> String {
        match self {
            Self::SingleServer => "single-server".to_string(),
            Self::Routed { replicas } => format!("router+{replicas}-replicas"),
            Self::OnlinePipeline => "online-pipeline".to_string(),
        }
    }
}

/// A chaos action fired by the engine at a planned offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// SIGKILL-equivalent: stop replica `i`'s accept loop and join it.
    KillReplica(usize),
    /// Rolling-publish the synthetic model with this tag across the
    /// fleet via the router's `{"op":"publish"}` verb.
    RollingPublish {
        /// Model tag; becomes the new generation's weights and vocab.
        tag: u64,
    },
    /// Run the online pipeline's refresh (delta → finetune → freeze →
    /// hot swap).
    Refresh,
    /// Publish a deliberately bit-flipped artifact for this tag through
    /// the router; the fleet must reject it wholesale (aborted rollout,
    /// zero replicas published, generation unchanged).
    CorruptPublish {
        /// The tag whose valid artifact gets corrupted before publishing.
        tag: u64,
    },
    /// Roll this tag's artifact into every replica's [`CANDIDATE`]
    /// variant slot via the router's `{"op":"experiment"}` publish verb.
    /// Control keeps serving its own generation untouched.
    CandidatePublish {
        /// Model tag the candidate slot will serve.
        tag: u64,
    },
    /// Install a `control:(100-w),canary:w` split plan fleet-wide via
    /// the router. Sticky client routing starts the moment the install
    /// acks.
    InstallSplit {
        /// The candidate's traffic share, percent (1..=99).
        candidate_percent: u32,
    },
    /// Halt the active split fleet-wide: all traffic collapses to
    /// control; the candidate slot stays resident but drains instantly.
    HaltSplit,
}

impl ChaosAction {
    /// The report label.
    pub fn describe(self) -> String {
        match self {
            Self::KillReplica(i) => format!("kill-replica-{i}"),
            Self::RollingPublish { tag } => format!("rolling-publish-tag-{tag}"),
            Self::Refresh => "online-refresh".to_string(),
            Self::CorruptPublish { tag } => format!("corrupt-publish-tag-{tag}"),
            Self::CandidatePublish { tag } => format!("candidate-publish-tag-{tag}"),
            Self::InstallSplit { candidate_percent } => {
                format!("install-split-{CANDIDATE}-{candidate_percent}")
            }
            Self::HaltSplit => "halt-split".to_string(),
        }
    }
}

/// A chaos action plus its planned arrival offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Offset from scenario start, microseconds.
    pub at_us: u64,
    /// What fires.
    pub action: ChaosAction,
}

/// The burn-rate alerting contract of one scenario: the SLO rules the
/// engine evaluates over the run's scraped metrics history, plus which
/// rules the scenario *expects* to fire. A storm that pages nobody is
/// as much a regression as a clean run that pages — both directions are
/// asserted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AlertPlan {
    /// Rules evaluated over the run's tsdb history (post-hoc, at every
    /// scrape timestamp).
    pub rules: Vec<SloRule>,
    /// Rule names that must fire at least once during the run.
    pub expect_fired: Vec<String>,
    /// Rule names that must stay silent for the whole run.
    pub expect_silent: Vec<String>,
}

impl AlertPlan {
    /// Report labels: one `name(expect-fired|expect-silent|observe)`
    /// entry per rule, deterministic per workload.
    pub fn describe(&self) -> Vec<String> {
        self.rules
            .iter()
            .map(|r| {
                let expectation = if self.expect_fired.contains(&r.name) {
                    "expect-fired"
                } else if self.expect_silent.contains(&r.name) {
                    "expect-silent"
                } else {
                    "observe"
                };
                format!("{}({expectation})", r.name)
            })
            .collect()
    }
}

/// The scrape cadence the engine uses for a `measure_ms` horizon — also
/// the resolution floor the scenario alert rules are clamped to.
pub fn scrape_interval_ms(measure_ms: u64) -> u64 {
    (measure_ms / 50).clamp(10, 200)
}

/// An availability burn-rate rule (99.99% objective, canonical SRE
/// window pairs) with its wall-clock windows scaled onto the scenario
/// horizon: the run's full window stands in for the 6-hour slow
/// lookback, and every window is clamped to at least four scrape ticks
/// so it can always see an increment.
fn availability_rule(measure_ms: u64, bad: &[&str], total: &[&str]) -> SloRule {
    SloRule::availability(
        "availability-burn",
        bad.iter().map(ToString::to_string).collect(),
        total.iter().map(ToString::to_string).collect(),
        1e-4,
    )
    .scaled(measure_ms as f64 / SLOW_PAIR.long_ms as f64)
    .with_min_window(scrape_interval_ms(measure_ms) * 4)
}

/// The connection-storm cohort plan: how many persistent keep-alive
/// connections the engine holds open alongside the scheduled query
/// lane, how many opener threads share the dialing, how many of the
/// held connections write their requests one dribbled chunk at a time,
/// and the resident-memory growth budget the run must stay inside.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StormSpec {
    /// Persistent connections held open for the whole measure window.
    pub connections: usize,
    /// Opener threads that share dialing + sweeping the cohort.
    pub openers: usize,
    /// Of `connections`, how many write requests in dribbled chunks
    /// (slowloris-shaped writers; the reactor must not let them pin
    /// buffers or threads). Their latencies are excluded from the
    /// percentile lane but their failures still count.
    pub slow_writers: usize,
    /// Resident-set growth budget (MiB) across the storm, measured
    /// best-effort from `/proc/self/statm`; exceeded → SLO violation.
    pub max_rss_mb: usize,
}

impl Default for StormSpec {
    fn default() -> Self {
        Self {
            connections: 10_240,
            openers: 16,
            slow_writers: 512,
            max_rss_mb: 512,
        }
    }
}

impl StormSpec {
    /// The report label.
    pub fn describe(&self) -> String {
        format!(
            "storm-{}-conns-{}-slow-writers",
            self.connections, self.slow_writers
        )
    }
}

/// A fully-planned scenario run: everything but the measurements.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Which scenario.
    pub kind: ScenarioKind,
    /// The knobs it was built with.
    pub config: ScenarioConfig,
    /// The stack to stand up.
    pub topology: Topology,
    /// The deterministic request schedule.
    pub schedule: Schedule,
    /// Planned chaos, sorted by offset.
    pub chaos: Vec<ChaosEvent>,
    /// Seeded fault plan the engine installs for the run, if the
    /// scenario injects faults. Derived from the seed; replayable.
    pub fault_plan: Option<FaultPlan>,
    /// The run's pass/fail contract.
    pub slo: Slo,
    /// The burn-rate alerting contract evaluated over the run's scraped
    /// metrics history.
    pub alerts: AlertPlan,
    /// The persistent-connection storm cohort, if the scenario holds
    /// one open alongside the scheduled lane.
    pub storm: Option<StormSpec>,
}

/// Builds the deterministic workload for `kind`. Same `config` in, same
/// workload out — byte for byte.
pub fn build(kind: ScenarioKind, config: &ScenarioConfig) -> Workload {
    let horizon_us = config.measure_ms * 1000;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x10ad_9e4e ^ kind_salt(kind));
    let pool = query_pool(&mut rng);
    match kind {
        ScenarioKind::SteadyZipfian => Workload {
            kind,
            config: config.clone(),
            topology: Topology::SingleServer,
            schedule: steady_from_pool(&mut rng, &pool, horizon_us, 400, config.k),
            chaos: Vec::new(),
            fault_plan: None,
            slo: Slo {
                max_p99_ms: 50.0,
                max_failures: 0,
                generation_consistency: GenCheck::ExactRankings,
            },
            // The clean baseline: the availability rule watches the
            // single server's shed/reject/error counters and must stay
            // silent for the whole run.
            alerts: AlertPlan {
                rules: vec![availability_rule(
                    config.measure_ms,
                    &[
                        "serve_sheds_total",
                        "serve_queue_rejections_total",
                        "serve_errors_total",
                    ],
                    &["serve_requests_total"],
                )],
                expect_fired: Vec::new(),
                expect_silent: vec!["availability-burn".to_string()],
            },
            storm: None,
        },
        ScenarioKind::FlashCrowd => {
            let mut requests =
                steady_from_pool(&mut rng, &pool, horizon_us, 150, config.k).requests;
            // The crowd: the middle fifth of the window arrives at 10x
            // the base rate, concentrated on the hot sets (a televised
            // symptom checklist, say).
            let burst_start = horizon_us * 2 / 5;
            let burst_len = horizon_us / 5;
            let n_burst = (1500 * burst_len / 1_000_000) as usize;
            for _ in 0..n_burst {
                requests.push(Request {
                    at_us: burst_start + rng.gen_range(0..burst_len.max(1)),
                    op: Op::Query {
                        symptoms: pool[zipf_index(&mut rng, pool.len(), 8, 0.95)].clone(),
                        k: config.k,
                        client: None,
                    },
                });
            }
            Workload {
                kind,
                config: config.clone(),
                topology: Topology::Routed { replicas: 2 },
                schedule: Schedule::new(requests),
                chaos: Vec::new(),
                fault_plan: None,
                slo: Slo {
                    max_p99_ms: 400.0,
                    max_failures: 0,
                    generation_consistency: GenCheck::ExactRankings,
                },
                alerts: AlertPlan::default(),
                storm: None,
            }
        }
        ScenarioKind::IngestHeavy => {
            let corpus = ingest_corpus(config.seed);
            let corpus_pool: Vec<Vec<u32>> = corpus
                .prescriptions()
                .iter()
                .map(|p| {
                    let mut s = p.symptoms().to_vec();
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect();
            let mut requests =
                steady_from_pool(&mut rng, &corpus_pool, horizon_us, 300, config.k).requests;
            // Ingest lane: unseen prescriptions synthesized over the
            // corpus vocabulary at ~40/s.
            let n_ingest = (40 * horizon_us / 1_000_000) as usize;
            let n_symptoms = corpus.n_symptoms() as u32;
            let n_herbs = corpus.n_herbs() as u32;
            for _ in 0..n_ingest {
                let mut symptoms: Vec<u32> = (0..rng.gen_range(2..5usize))
                    .map(|_| rng.gen_range(0..n_symptoms))
                    .collect();
                symptoms.sort_unstable();
                symptoms.dedup();
                let mut herbs: Vec<u32> = (0..rng.gen_range(2..6usize))
                    .map(|_| rng.gen_range(0..n_herbs))
                    .collect();
                herbs.sort_unstable();
                herbs.dedup();
                requests.push(Request {
                    at_us: rng.gen_range(0..horizon_us.max(1)),
                    op: Op::Ingest { symptoms, herbs },
                });
            }
            Workload {
                kind,
                config: config.clone(),
                topology: Topology::OnlinePipeline,
                schedule: Schedule::new(requests),
                chaos: vec![ChaosEvent {
                    at_us: horizon_us / 2,
                    action: ChaosAction::Refresh,
                }],
                fault_plan: None,
                slo: Slo {
                    max_p99_ms: 400.0,
                    max_failures: 0,
                    generation_consistency: GenCheck::Monotone,
                },
                alerts: AlertPlan::default(),
                storm: None,
            }
        }
        ScenarioKind::RollingPublish => Workload {
            kind,
            config: config.clone(),
            topology: Topology::Routed { replicas: 3 },
            schedule: steady_from_pool(&mut rng, &pool, horizon_us, 300, config.k),
            chaos: vec![ChaosEvent {
                at_us: horizon_us * 2 / 5,
                action: ChaosAction::RollingPublish { tag: 1 },
            }],
            fault_plan: None,
            slo: Slo {
                max_p99_ms: 400.0,
                max_failures: 0,
                generation_consistency: GenCheck::ExactRankings,
            },
            alerts: AlertPlan::default(),
            storm: None,
        },
        ScenarioKind::ReplicaKill => Workload {
            kind,
            config: config.clone(),
            topology: Topology::Routed { replicas: 3 },
            schedule: steady_from_pool(&mut rng, &pool, horizon_us, 300, config.k),
            chaos: vec![ChaosEvent {
                at_us: horizon_us * 2 / 5,
                action: ChaosAction::KillReplica(0),
            }],
            fault_plan: None,
            slo: Slo {
                max_p99_ms: 600.0,
                max_failures: 0,
                generation_consistency: GenCheck::ExactRankings,
            },
            // A killed replica legitimately drives failover retries; no
            // silence contract here (that would assert the chaos away).
            alerts: AlertPlan::default(),
            storm: None,
        },
        ScenarioKind::FaultStorm => Workload {
            kind,
            config: config.clone(),
            topology: Topology::Routed { replicas: 3 },
            schedule: steady_from_pool(&mut rng, &pool, horizon_us, 300, config.k),
            chaos: vec![
                ChaosEvent {
                    at_us: horizon_us / 5,
                    action: ChaosAction::CorruptPublish { tag: 9 },
                },
                ChaosEvent {
                    at_us: horizon_us * 3 / 5,
                    action: ChaosAction::RollingPublish { tag: 1 },
                },
            ],
            fault_plan: Some(storm_plan(config.seed)),
            slo: Slo {
                max_p99_ms: 600.0,
                max_failures: 0,
                generation_consistency: GenCheck::ExactRankings,
            },
            // The storm's dropped forwards surface as router retries;
            // the availability rule must burn hot enough to page. The
            // retry ratio (~5% in the front-loaded band) is orders of
            // magnitude over a 99.99% objective's burn threshold.
            alerts: AlertPlan {
                rules: vec![availability_rule(
                    config.measure_ms,
                    &["router_retries_total", "router_exhausted_total"],
                    &["router_forwarded_total"],
                )],
                expect_fired: vec!["availability-burn".to_string()],
                expect_silent: Vec::new(),
            },
            storm: None,
        },
        ScenarioKind::AbCanary => {
            // Same steady shape as the publish drills, but every query
            // carries a sticky client identity: the split plan keys on
            // the client name, so assignment must hold across
            // connections and workers, not just per socket.
            let mut requests =
                steady_from_pool(&mut rng, &pool, horizon_us, 300, config.k).requests;
            for r in &mut requests {
                if let Op::Query { client, .. } = &mut r.op {
                    *client = Some(rng.gen_range(0..N_CLIENTS));
                }
            }
            Workload {
                kind,
                config: config.clone(),
                topology: Topology::Routed { replicas: 3 },
                schedule: Schedule::new(requests),
                chaos: vec![
                    ChaosEvent {
                        at_us: horizon_us / 5,
                        action: ChaosAction::CandidatePublish { tag: 1 },
                    },
                    ChaosEvent {
                        at_us: horizon_us * 3 / 10,
                        action: ChaosAction::InstallSplit {
                            candidate_percent: 10,
                        },
                    },
                    // Halted with a fifth of the horizon left: the tail
                    // of the run asserts the candidate drains cleanly
                    // (all traffic back on control, zero failures).
                    ChaosEvent {
                        at_us: horizon_us * 4 / 5,
                        action: ChaosAction::HaltSplit,
                    },
                ],
                fault_plan: None,
                slo: Slo {
                    max_p99_ms: 400.0,
                    max_failures: 0,
                    generation_consistency: GenCheck::VariantRankings,
                },
                alerts: AlertPlan::default(),
                storm: None,
            }
        }
        ScenarioKind::ConnectionStorm => Workload {
            kind,
            config: config.clone(),
            topology: Topology::SingleServer,
            // A modest steady lane rides alongside the held-open fleet:
            // its p99 is what proves the reactor keeps serving promptly
            // while 10k sockets sit registered and slow writers dribble.
            schedule: steady_from_pool(&mut rng, &pool, horizon_us, 200, config.k),
            chaos: Vec::new(),
            fault_plan: None,
            slo: Slo {
                max_p99_ms: 500.0,
                max_failures: 0,
                generation_consistency: GenCheck::ExactRankings,
            },
            // At 10k held connections against an fd-bounded server with
            // cap headroom, nothing may shed, reject, or error: the
            // availability rule must stay silent for the whole run.
            alerts: AlertPlan {
                rules: vec![availability_rule(
                    config.measure_ms,
                    &[
                        "serve_sheds_total",
                        "serve_queue_rejections_total",
                        "serve_errors_total",
                    ],
                    &["serve_requests_total"],
                )],
                expect_fired: Vec::new(),
                expect_silent: vec!["availability-burn".to_string()],
            },
            storm: Some(match config.storm_connections {
                Some(connections) => StormSpec {
                    connections,
                    // Keep the slow cohort a fixed fraction when the
                    // fleet shrinks below the stock shape.
                    slow_writers: StormSpec::default().slow_writers.min(connections / 20),
                    ..StormSpec::default()
                },
                None => StormSpec::default(),
            }),
        },
    }
}

/// The fault-storm scenario's seeded injection plan.
///
/// The data path takes low-rate delays and occasional connection drops
/// over a wide hit window — enough to exercise the router's failover
/// walk throughout the run without saturating it. The admin path takes
/// *delays only*: an injected admin drop would fail the scenario's own
/// good publish in transit, which is the fault-injection test binaries'
/// job, not the storm's (the storm pins end-to-end SLOs with zero
/// accepted-then-lost operations).
fn storm_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed ^ 0x5707_2a11);
    // A denser front-loaded drop band: the first ~128 forwards take
    // drops at 8%, so even the shortest smoke horizon accumulates
    // enough retries for the availability burn-rate rule to page
    // (expected ~10 drops; the chance a seed draws zero is ~e^-10).
    // The router retries every drop on the next replica, so the client
    // failure budget still burns nothing.
    plan.inject(sites::POOL_FORWARD_NET, 0..128, 0.08, &[FaultAction::Drop]);
    plan.inject(
        sites::POOL_FORWARD_NET,
        0..4096,
        0.02,
        &[
            FaultAction::Delay { ms: 1 },
            FaultAction::Delay { ms: 3 },
            FaultAction::Drop,
        ],
    );
    plan.inject(
        sites::POOL_ADMIN_NET,
        0..64,
        0.2,
        &[FaultAction::Delay { ms: 2 }],
    );
    plan
}

/// Per-kind RNG salt so scenarios sharing a seed do not share streams.
fn kind_salt(kind: ScenarioKind) -> u64 {
    match kind {
        ScenarioKind::SteadyZipfian => 0x01,
        ScenarioKind::FlashCrowd => 0x02,
        ScenarioKind::IngestHeavy => 0x03,
        ScenarioKind::RollingPublish => 0x04,
        ScenarioKind::ReplicaKill => 0x05,
        ScenarioKind::FaultStorm => 0x06,
        ScenarioKind::AbCanary => 0x07,
        ScenarioKind::ConnectionStorm => 0x08,
    }
}

/// A pool of 200 distinct symptom sets (sizes 1–4) over the synthetic
/// vocabulary; index 0..20 is the "hot" head Zipf draws favour.
fn query_pool(rng: &mut StdRng) -> Vec<Vec<u32>> {
    let mut pool: Vec<Vec<u32>> = Vec::new();
    while pool.len() < 200 {
        let mut set: Vec<u32> = (0..rng.gen_range(1..5usize))
            .map(|_| rng.gen_range(0..N_SYMPTOMS as u32))
            .collect();
        set.sort_unstable();
        set.dedup();
        if !pool.contains(&set) {
            pool.push(set);
        }
    }
    pool
}

/// Uniform-arrival query schedule at `rate_per_s` over `horizon_us`,
/// Zipf-picking sets from `pool` (hot head of 20 at 80%).
fn steady_from_pool(
    rng: &mut StdRng,
    pool: &[Vec<u32>],
    horizon_us: u64,
    rate_per_s: u64,
    k: usize,
) -> Schedule {
    let n = (rate_per_s * horizon_us / 1_000_000) as usize;
    let spacing = horizon_us / n.max(1) as u64;
    let requests = (0..n)
        .map(|i| Request {
            // Evenly paced with ±40% jitter: steady, but not lockstep.
            at_us: i as u64 * spacing + rng.gen_range(0..(spacing * 4 / 5).max(1)),
            op: Op::Query {
                symptoms: pool[zipf_index(rng, pool.len(), 20, 0.8)].clone(),
                k,
                client: None,
            },
        })
        .collect();
    Schedule::new(requests)
}

/// The tiny real corpus behind the ingest-heavy scenario (the online
/// pipeline validates ingested ids against a real vocabulary).
pub fn ingest_corpus(seed: u64) -> smgcn_data::Corpus {
    smgcn_data::SyndromeModel::new(smgcn_data::GeneratorConfig::tiny_scale().with_seed(seed))
        .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in ScenarioKind::all() {
            assert_eq!(ScenarioKind::from_arg(kind.name()), Some(kind));
        }
        assert_eq!(ScenarioKind::from_arg("nope"), None);
    }

    #[test]
    fn same_seed_same_schedule() {
        let config = ScenarioConfig {
            measure_ms: 500,
            ..ScenarioConfig::default()
        };
        for kind in ScenarioKind::all() {
            let a = build(kind, &config);
            let b = build(kind, &config);
            assert_eq!(
                a.schedule.canonical_string(),
                b.schedule.canonical_string(),
                "{} not deterministic",
                kind.name()
            );
            assert_eq!(a.chaos, b.chaos);
            assert_eq!(
                a.fault_plan.as_ref().map(FaultPlan::digest),
                b.fault_plan.as_ref().map(FaultPlan::digest),
                "{} fault plan not deterministic",
                kind.name()
            );
        }
    }

    #[test]
    fn fault_storm_plan_is_seeded_and_admin_safe() {
        let config = ScenarioConfig {
            measure_ms: 500,
            ..ScenarioConfig::default()
        };
        let w = build(ScenarioKind::FaultStorm, &config);
        let plan = w.fault_plan.as_ref().expect("fault-storm carries a plan");
        assert!(!plan.is_empty());
        // The admin plane takes delays only: a dropped admin round trip
        // would break the storm's own good publish mid-flight.
        for fault in plan.faults() {
            if fault.site == sites::POOL_ADMIN_NET {
                assert!(
                    matches!(fault.action, FaultAction::Delay { .. }),
                    "admin site must be delay-only, got {:?}",
                    fault.action
                );
            }
        }
        let other = ScenarioConfig {
            seed: 7,
            ..config.clone()
        };
        assert_ne!(
            build(ScenarioKind::FaultStorm, &other)
                .fault_plan
                .unwrap()
                .digest(),
            plan.digest(),
            "different seeds draw different storms"
        );
    }

    #[test]
    fn worker_count_never_changes_the_schedule() {
        let base = ScenarioConfig {
            measure_ms: 500,
            workers: 2,
            ..ScenarioConfig::default()
        };
        let wide = ScenarioConfig {
            workers: 32,
            ..base.clone()
        };
        for kind in ScenarioKind::all() {
            assert_eq!(
                build(kind, &base).schedule.digest(),
                build(kind, &wide).schedule.digest(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ScenarioConfig {
            measure_ms: 500,
            ..ScenarioConfig::default()
        };
        let b = ScenarioConfig {
            seed: 7,
            ..a.clone()
        };
        assert_ne!(
            build(ScenarioKind::SteadyZipfian, &a).schedule.digest(),
            build(ScenarioKind::SteadyZipfian, &b).schedule.digest()
        );
    }

    #[test]
    fn flash_crowd_bursts_mid_window() {
        let config = ScenarioConfig {
            measure_ms: 1000,
            ..ScenarioConfig::default()
        };
        let w = build(ScenarioKind::FlashCrowd, &config);
        let horizon = config.measure_ms * 1000;
        let in_burst = w
            .schedule
            .requests
            .iter()
            .filter(|r| r.at_us >= horizon * 2 / 5 && r.at_us < horizon * 3 / 5)
            .count();
        // The burst fifth should carry several times the base-rate share.
        assert!(
            in_burst as f64 > w.schedule.requests.len() as f64 * 0.5,
            "burst window holds {in_burst} of {}",
            w.schedule.requests.len()
        );
    }

    #[test]
    fn ab_canary_clients_actually_split() {
        let config = ScenarioConfig {
            measure_ms: 500,
            ..ScenarioConfig::default()
        };
        let w = build(ScenarioKind::AbCanary, &config);
        // Every query carries a sticky client, and all client ids appear
        // (the plan's assignment is per-name, so coverage is what makes
        // the stickiness assertion meaningful).
        let mut seen = std::collections::BTreeSet::new();
        for r in &w.schedule.requests {
            match &r.op {
                Op::Query { client, .. } => {
                    seen.insert(client.expect("ab-canary queries carry clients"));
                }
                Op::Ingest { .. } => panic!("ab-canary has no ingest lane"),
            }
        }
        assert_eq!(seen.len() as u32, N_CLIENTS, "all clients drawn");
        // The canonical default-seed 90/10 plan (what the engine's
        // install verb produces) must map at least one of the scenario's
        // clients to the candidate and keep control in the majority —
        // otherwise the scenario never exercises candidate serving.
        let plan = smgcn_experiment::SplitPlan::new(
            smgcn_experiment::DEFAULT_SPLIT_SEED,
            1,
            &[("control".to_string(), 90), (CANDIDATE.to_string(), 10)],
        )
        .expect("canonical plan");
        let canary = (0..N_CLIENTS)
            .filter(|c| plan.assign(&format!("c{c}")) == CANDIDATE)
            .count();
        assert!(
            canary >= 1 && canary < N_CLIENTS as usize / 2,
            "default split maps {canary} of {N_CLIENTS} clients to {CANDIDATE:?}"
        );
        assert_eq!(w.chaos.len(), 3);
        assert_eq!(w.slo.generation_consistency, GenCheck::VariantRankings);
    }

    #[test]
    fn ingest_heavy_mixes_ops() {
        let config = ScenarioConfig {
            measure_ms: 500,
            ..ScenarioConfig::default()
        };
        let w = build(ScenarioKind::IngestHeavy, &config);
        assert!(w.schedule.query_count() > 0);
        assert!(w.schedule.ingest_count() > 0);
        assert_eq!(w.chaos.len(), 1);
    }
}
