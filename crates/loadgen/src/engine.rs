//! The execution engine: stands up the planned topology, drives the
//! schedule through real sockets, fires the chaos plan, and measures.
//!
//! The contract with [`crate::scenario`]: everything decided here is
//! *when* things actually happened, never *what* happens — the what is
//! the deterministic workload. Workers pace themselves against the
//! schedule's arrival offsets (open-loop up to per-worker serialization)
//! and validate every response inline against the scenario's
//! generation-consistency invariant.

use std::collections::{BTreeSet, HashMap};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smgcn_bench::harness::{
    percentiles_us, spawn_server, spawn_server_slot, synthetic_frozen, synthetic_vocab,
    SpawnedServer,
};
use smgcn_cluster::{PoolConfig, Router, RouterConfig, RouterStopHandle};
use smgcn_obs::alert::evaluate_series;
use smgcn_obs::tsdb::{unix_ms_now, Scraper, SeriesEncoder, TsdbData};
use smgcn_online::{FineTuneConfig, OnlineConfig, OnlinePipeline};
use smgcn_serve::json::{self, Json};
use smgcn_serve::server::flatten_metrics_json;
use smgcn_serve::{BatcherConfig, FrozenModel, ServerConfig, ServingVocab};

use crate::report::{Measured, ScenarioReport, WorkloadSummary};
use crate::scenario::{
    scrape_interval_ms, ChaosAction, ScenarioKind, Topology, Workload, CANDIDATE, DIM, N_HERBS,
    N_SYMPTOMS,
};
use crate::slo::{evaluate, GenCheck, SloInputs};

/// Cap on collected violation samples (the verdict only needs a few).
const MAX_VIOLATIONS: usize = 20;

/// Worker-side read timeout: far above any SLO budget, so a hung stack
/// surfaces as a failed request instead of a hung run.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

fn start_replica(model: FrozenModel, vocab: ServingVocab) -> SpawnedServer {
    spawn_server(
        model,
        vocab,
        ServerConfig {
            max_connections: 64,
            batcher: BatcherConfig {
                max_batch: 64,
                ..BatcherConfig::default()
            },
            ..ServerConfig::default()
        },
    )
}

/// The running stack behind one scenario. Owned by [`run`]'s thread:
/// the online pipeline (not `Send` — it owns the training model) is
/// only ever touched from the control lane, which runs right here.
struct Stack {
    /// Where workers connect (server or router).
    front: SocketAddr,
    /// Routed replicas (None once killed by chaos).
    replicas: Vec<Option<SpawnedServer>>,
    router: Option<(RouterStopHandle, JoinHandle<()>)>,
    server: Option<SpawnedServer>,
    pipeline: Option<OnlinePipeline>,
}

impl Stack {
    fn build(workload: &Workload) -> Self {
        match workload.topology {
            Topology::SingleServer => {
                // A storm scenario holds its whole cohort open at once:
                // the connection cap needs headroom above the held
                // fleet plus the steady lane, because a shed during the
                // storm is itself an SLO violation. The reactor keeps
                // the cap fd-bounded — its worker pool does not grow
                // with the cap.
                let config = match &workload.storm {
                    Some(spec) => ServerConfig {
                        max_connections: spec.connections + 256,
                        ..ServerConfig::default()
                    },
                    None => ServerConfig::default(),
                };
                let server = spawn_server(
                    synthetic_frozen(N_SYMPTOMS, N_HERBS, DIM, 0),
                    synthetic_vocab(N_SYMPTOMS, N_HERBS, 0),
                    config,
                );
                Self {
                    front: server.addr,
                    replicas: Vec::new(),
                    router: None,
                    server: Some(server),
                    pipeline: None,
                }
            }
            Topology::Routed { replicas } => {
                let procs: Vec<Option<SpawnedServer>> = (0..replicas)
                    .map(|_| {
                        Some(start_replica(
                            synthetic_frozen(N_SYMPTOMS, N_HERBS, DIM, 0),
                            synthetic_vocab(N_SYMPTOMS, N_HERBS, 0),
                        ))
                    })
                    .collect();
                let addrs: Vec<SocketAddr> =
                    procs.iter().map(|p| p.as_ref().unwrap().addr).collect();
                let router = Router::bind(
                    "127.0.0.1:0",
                    addrs,
                    RouterConfig {
                        pool: PoolConfig {
                            max_conns_per_replica: 8,
                            eject_base: Duration::from_millis(50),
                            eject_max: Duration::from_millis(500),
                            // Tight transport timeouts: a killed replica's
                            // half-open connections must convert into
                            // failover, not client-visible stalls.
                            connect_timeout: Duration::from_millis(200),
                            replica_timeout: Duration::from_millis(300),
                            ..PoolConfig::default()
                        },
                        probe_interval: Duration::from_millis(100),
                        lease_patience: Duration::from_secs(5),
                        ..RouterConfig::default()
                    },
                )
                .expect("bind router");
                let front = router.local_addr().expect("router addr");
                let stop = router.stop_handle();
                let handle = std::thread::spawn(move || router.run().expect("router run"));
                Self {
                    front,
                    replicas: procs,
                    router: Some((stop, handle)),
                    server: None,
                    pipeline: None,
                }
            }
            Topology::OnlinePipeline => {
                let corpus = crate::scenario::ingest_corpus(workload.config.seed);
                let thresholds = smgcn_graph::SynergyThresholds { x_s: 1, x_h: 1 };
                let ops = smgcn_graph::GraphOperators::from_records(
                    corpus.records(),
                    corpus.n_symptoms(),
                    corpus.n_herbs(),
                    thresholds,
                );
                let model_cfg = smgcn_core::prelude::ModelConfig {
                    embedding_dim: 16,
                    layer_dims: vec![16, 24],
                    ..smgcn_core::prelude::ModelConfig::smgcn()
                };
                let train_cfg = smgcn_core::prelude::TrainConfig {
                    epochs: 2,
                    batch_size: 64,
                    learning_rate: 1e-3,
                    l2_lambda: 1e-4,
                    loss: smgcn_core::prelude::LossKind::MultiLabel,
                    bpr_negatives: 1,
                    weighted_labels: true,
                    seed: workload.config.seed,
                };
                let mut model =
                    smgcn_core::prelude::Recommender::smgcn(&ops, &model_cfg, workload.config.seed);
                smgcn_core::prelude::train(&mut model, &corpus, &train_cfg);
                let mut pipeline = OnlinePipeline::new(
                    corpus,
                    model,
                    OnlineConfig {
                        thresholds,
                        model: model_cfg,
                        train: train_cfg,
                        finetune: FineTuneConfig {
                            max_epochs: 1,
                            target_loss: None,
                            learning_rate: None,
                        },
                        seed: workload.config.seed,
                    },
                );
                let slot = pipeline.slot();
                let server = spawn_server_slot(slot, ServerConfig::default());
                // The pipeline shares the server's registry and journal,
                // so one `{"op":"metrics"}` snapshot covers both the
                // serving and the refresh side of the deployment.
                pipeline.observe(&server.registry, Arc::clone(&server.events));
                Self {
                    front: server.addr,
                    replicas: Vec::new(),
                    router: None,
                    server: Some(server),
                    pipeline: Some(pipeline),
                }
            }
        }
    }

    fn teardown(self) {
        if let Some((stop, handle)) = self.router {
            stop.stop();
            let _ = handle.join();
        }
        for proc in self.replicas.into_iter().flatten() {
            proc.shutdown();
        }
        if let Some(server) = self.server {
            server.shutdown();
        }
    }
}

/// Shared response validation state.
struct Validation {
    check: GenCheck,
    /// `(generation, symptom set) -> expected ranking` for
    /// [`GenCheck::ExactRankings`].
    expected: HashMap<(u64, Vec<u32>), Vec<u32>>,
    /// Generation number -> the artifact tag whose model and vocab it
    /// serves (herb names embed the tag, not the generation number).
    tags: HashMap<u64, u64>,
    /// `variant -> (artifact tag, expected generation)` for
    /// [`GenCheck::VariantRankings`]: control serves the boot artifact
    /// at generation 0, and each candidate slot's first publish also
    /// lands as that slot's own generation 0.
    variant_tags: HashMap<String, (u64, u64)>,
    /// `(variant, symptom set) -> expected ranking` for
    /// [`GenCheck::VariantRankings`].
    variant_expected: HashMap<(String, Vec<u32>), Vec<u32>>,
    /// First variant observed per sticky client: once a split assigns a
    /// client, every later labeled response must agree (stickiness).
    sticky: Mutex<HashMap<String, String>>,
    violations: Mutex<Vec<String>>,
}

impl Validation {
    /// Precomputes expected rankings: generation 0 is the boot model
    /// (tag 0), and each planned rolling publish maps the next
    /// generation number to its artifact tag.
    fn plan(workload: &Workload) -> Self {
        let mut expected = HashMap::new();
        let mut tags = HashMap::new();
        let mut variant_tags = HashMap::new();
        let mut variant_expected = HashMap::new();
        if workload.slo.generation_consistency == GenCheck::ExactRankings {
            tags.insert(0u64, 0u64);
            let mut next_gen = 1;
            for event in &workload.chaos {
                if let ChaosAction::RollingPublish { tag } = event.action {
                    tags.insert(next_gen, tag);
                    next_gen += 1;
                }
            }
            let sets = workload.schedule.distinct_query_sets();
            for (&generation, &tag) in &tags {
                let model = synthetic_frozen(N_SYMPTOMS, N_HERBS, DIM, tag);
                for set in &sets {
                    let ranking = model
                        .recommend(set, workload.config.k)
                        .expect("planned sets are valid");
                    expected.insert((generation, set.clone()), ranking);
                }
            }
        }
        if workload.slo.generation_consistency == GenCheck::VariantRankings {
            variant_tags.insert("control".to_string(), (0u64, 0u64));
            for event in &workload.chaos {
                if let ChaosAction::CandidatePublish { tag } = event.action {
                    // A fresh candidate slot numbers its first publish
                    // as generation 0, independent of control's line.
                    variant_tags.insert(CANDIDATE.to_string(), (tag, 0u64));
                }
            }
            let sets = workload.schedule.distinct_query_sets();
            for (variant, &(tag, _)) in &variant_tags {
                let model = synthetic_frozen(N_SYMPTOMS, N_HERBS, DIM, tag);
                for set in &sets {
                    let ranking = model
                        .recommend(set, workload.config.k)
                        .expect("planned sets are valid");
                    variant_expected.insert((variant.clone(), set.clone()), ranking);
                }
            }
        }
        Self {
            check: workload.slo.generation_consistency,
            expected,
            tags,
            variant_tags,
            variant_expected,
            sticky: Mutex::new(HashMap::new()),
            violations: Mutex::new(Vec::new()),
        }
    }

    fn violation(&self, message: String) {
        let mut v = self.violations.lock().expect("violations lock");
        if v.len() < MAX_VIOLATIONS {
            v.push(message);
        }
    }

    /// Validates one successful response; `last_gen` carries the
    /// connection's monotonicity state, `client` the request's sticky
    /// identity (experiment scenarios only).
    fn validate(&self, symptoms: &[u32], resp: &Json, last_gen: &mut u64, client: Option<&str>) {
        let Some(generation) = resp
            .get("generation")
            .and_then(Json::as_num)
            .map(|g| g as u64)
        else {
            self.violation("response missing generation".to_string());
            return;
        };
        match self.check {
            GenCheck::None => {}
            GenCheck::Monotone => {
                if generation < *last_gen {
                    self.violation(format!(
                        "generation went backwards on one connection: {} -> {generation}",
                        *last_gen
                    ));
                }
                *last_gen = generation.max(*last_gen);
            }
            GenCheck::ExactRankings => {
                let Some(ids) = resp.get("herb_ids").and_then(Json::as_arr).map(|arr| {
                    arr.iter()
                        .filter_map(|v| v.as_num().map(|n| n as u32))
                        .collect::<Vec<u32>>()
                }) else {
                    self.violation("response missing herb_ids".to_string());
                    return;
                };
                match self.expected.get(&(generation, symptoms.to_vec())) {
                    None => {
                        self.violation(format!("response claims unknown generation {generation}"))
                    }
                    Some(want) if *want != ids => self.violation(format!(
                        "ranking does not match generation {generation} for {symptoms:?}: \
                         got {ids:?}, expected {want:?}"
                    )),
                    Some(_) => {}
                }
                // Names must carry the claimed generation's artifact tag
                // too — a mixed response would rank with one model and
                // name with another. (Tag, not generation number: a
                // publish plan may ship any tag as any generation.)
                if let (Some(names), Some(tag)) = (
                    resp.get("herbs").and_then(Json::as_arr),
                    self.tags.get(&generation),
                ) {
                    let prefix = format!("g{tag}-");
                    if names
                        .iter()
                        .any(|n| n.as_str().is_some_and(|s| !s.starts_with(&prefix)))
                    {
                        self.violation(format!(
                            "herb names do not all carry generation {generation}'s tag g{tag}"
                        ));
                    }
                }
            }
            GenCheck::VariantRankings => {
                // Unlabeled responses (before the install, after the
                // halt) are control serving: they must match control's
                // artifact exactly — a candidate still holding traffic
                // after the halt shows up right here.
                let labeled = resp.get("variant").and_then(Json::as_str);
                let variant = labeled.unwrap_or("control");
                if let (Some(variant), Some(client)) = (labeled, client) {
                    let mut sticky = self.sticky.lock().expect("sticky lock");
                    match sticky.get(client) {
                        Some(prev) if prev != variant => self.violation(format!(
                            "client {client:?} flapped variants: {prev} -> {variant}"
                        )),
                        Some(_) => {}
                        None => {
                            sticky.insert(client.to_string(), variant.to_string());
                        }
                    }
                }
                let Some(&(tag, want_gen)) = self.variant_tags.get(variant) else {
                    self.violation(format!("response claims unknown variant {variant:?}"));
                    return;
                };
                if generation != want_gen {
                    self.violation(format!(
                        "variant {variant:?} claims generation {generation}, expected {want_gen}"
                    ));
                }
                let Some(ids) = resp.get("herb_ids").and_then(Json::as_arr).map(|arr| {
                    arr.iter()
                        .filter_map(|v| v.as_num().map(|n| n as u32))
                        .collect::<Vec<u32>>()
                }) else {
                    self.violation("response missing herb_ids".to_string());
                    return;
                };
                match self
                    .variant_expected
                    .get(&(variant.to_string(), symptoms.to_vec()))
                {
                    Some(want) if *want != ids => self.violation(format!(
                        "ranking does not match variant {variant:?} for {symptoms:?}: \
                         got {ids:?}, expected {want:?}"
                    )),
                    _ => {}
                }
                if let Some(names) = resp.get("herbs").and_then(Json::as_arr) {
                    let prefix = format!("g{tag}-");
                    if names
                        .iter()
                        .any(|n| n.as_str().is_some_and(|s| !s.starts_with(&prefix)))
                    {
                        self.violation(format!(
                            "herb names do not all carry variant {variant:?}'s tag g{tag}"
                        ));
                    }
                }
            }
        }
    }
}

struct WorkerResult {
    /// Per-request latency (seconds).
    latencies: Vec<f64>,
    executed: usize,
    failures: usize,
    generations: BTreeSet<u64>,
}

/// The run's scraped metrics history: the queryable in-memory index and
/// the on-disk byte encoding, appended in lockstep so the report can
/// ship exactly what a file-backed tsdb would have persisted.
struct TsdbHistory {
    data: TsdbData,
    encoder: SeriesEncoder,
    bytes: Vec<u8>,
    records: usize,
}

impl TsdbHistory {
    fn new() -> Self {
        let mut bytes = Vec::new();
        SeriesEncoder::header(&mut bytes);
        Self {
            data: TsdbData::default(),
            encoder: SeriesEncoder::new(),
            bytes,
            records: 0,
        }
    }

    fn append(&mut self, at_ms: u64, samples: &[(String, f64)]) {
        self.data.push(at_ms, samples);
        self.encoder.append(at_ms, samples, &mut self.bytes);
        self.records += 1;
    }
}

/// One admin round trip against the front-end with an arbitrary request
/// line: the raw response plus its parse. `None` on any transport
/// hiccup — the run proceeds without the snapshot rather than failing.
fn fetch_admin_line(front: SocketAddr, request: &str) -> Option<(String, Json)> {
    let (mut reader, mut writer) = connect(front).ok()?;
    writeln!(writer, "{request}").ok()?;
    writer.flush().ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let raw = line.trim().to_string();
    let parsed = json::parse(&raw).ok()?;
    Some((raw, parsed))
}

/// Fetches one bare admin verb (see [`fetch_admin_line`]).
fn fetch_admin(front: SocketAddr, op: &str) -> Option<(String, Json)> {
    fetch_admin_line(front, &format!("{{\"op\":\"{op}\"}}"))
}

/// Sends one `{"op":"experiment"}` verb through the router and returns
/// the parsed ack; experiment chaos actions assert on the result (a
/// failed install or halt is a scenario failure, not a shrug).
fn experiment_rpc(front: SocketAddr, request: &str) -> Option<Json> {
    fetch_admin_line(front, request).map(|(_, parsed)| parsed)
}

/// The `{"op":"metrics"}` snapshot (see [`fetch_admin`]).
fn fetch_metrics(front: SocketAddr) -> Option<(String, Json)> {
    fetch_admin(front, "metrics")
}

/// The flat name -> value metric map inside a snapshot: single servers
/// report under `"metrics"`, routers under `"merged"` (the fleet-wide
/// aggregation).
fn metric_map(snapshot: &Json) -> Option<&std::collections::BTreeMap<String, Json>> {
    match snapshot.get("merged").or_else(|| snapshot.get("metrics")) {
        Some(Json::Obj(map)) => Some(map),
        _ => None,
    }
}

/// Nonzero before -> after deltas of every counter (`_total`-suffixed
/// metric, labeled or plain), sorted by name (the map iterates sorted).
fn counter_deltas(before: &Json, after: &Json) -> Vec<(String, f64)> {
    let (Some(before), Some(after)) = (metric_map(before), metric_map(after)) else {
        return Vec::new();
    };
    let mut deltas = Vec::new();
    for (name, value) in after {
        if !(name.ends_with("_total") || name.contains("_total{")) {
            continue;
        }
        let Some(after_v) = value.as_num() else {
            continue;
        };
        let before_v = before.get(name).and_then(Json::as_num).unwrap_or(0.0);
        if after_v != before_v {
            deltas.push((name.clone(), after_v - before_v));
        }
    }
    deltas
}

fn delta_of(deltas: &[(String, f64)], name: &str) -> f64 {
    deltas
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0.0, |(_, d)| *d)
}

/// The server-side error ledger over the run, from counter deltas:
/// non-retryable serve error codes (retryable `queue_full`/`overloaded`
/// blips are the router's problem and don't reach clients), plus —
/// routed — requests the router exhausted entirely, or — fronted by a
/// bare server — sheds and queue rejections, which ARE client-visible.
fn counter_errors(deltas: &[(String, f64)], routed: bool) -> u64 {
    deltas
        .iter()
        .filter(|(name, _)| {
            if let Some(rest) = name.strip_prefix("serve_errors_total") {
                return !(rest.contains("queue_full") || rest.contains("overloaded"));
            }
            if routed {
                name == "router_exhausted_total"
            } else {
                name == "serve_sheds_total" || name == "serve_queue_rejections_total"
            }
        })
        .map(|(_, delta)| delta.max(0.0) as u64)
        .sum()
}

fn connect(front: SocketAddr) -> std::io::Result<(BufReader<TcpStream>, BufWriter<TcpStream>)> {
    let stream = TcpStream::connect(front)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    Ok((BufReader::new(stream.try_clone()?), BufWriter::new(stream)))
}

/// One query lane: executes its schedule slice in arrival order, pacing
/// against `start`, validating every response.
#[allow(clippy::needless_pass_by_value)]
fn query_worker(
    workload: Arc<Workload>,
    lane: Vec<usize>,
    front: SocketAddr,
    validation: Arc<Validation>,
    start: Instant,
) -> WorkerResult {
    let mut result = WorkerResult {
        latencies: Vec::with_capacity(lane.len()),
        executed: 0,
        failures: 0,
        generations: BTreeSet::new(),
    };
    let mut conn = connect(front).ok();
    let mut line = String::new();
    let mut last_gen = 0u64;
    for idx in lane {
        let request = &workload.schedule.requests[idx];
        let crate::schedule::Op::Query {
            symptoms,
            k,
            client,
        } = &request.op
        else {
            continue;
        };
        let target = start + Duration::from_micros(request.at_us);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        // One reconnect attempt per request: a dropped connection is a
        // transport blip, not automatically a failed request.
        if conn.is_none() {
            conn = connect(front).ok();
        }
        let ids: Vec<String> = symptoms.iter().map(ToString::to_string).collect();
        let client_name = client.map(|c| format!("c{c}"));
        let payload = match &client_name {
            Some(name) => format!(
                "{{\"symptom_ids\":[{}],\"k\":{k},\"client\":\"{name}\"}}",
                ids.join(",")
            ),
            None => format!("{{\"symptom_ids\":[{}],\"k\":{k}}}", ids.join(",")),
        };
        let t0 = Instant::now();
        let attempted = conn.is_some();
        let response = match &mut conn {
            Some((reader, writer)) => (|| {
                writeln!(writer, "{payload}").ok()?;
                writer.flush().ok()?;
                line.clear();
                let n = reader.read_line(&mut line).ok()?;
                (n > 0).then(|| line.trim().to_string())
            })(),
            None => None,
        };
        result.executed += 1;
        // A request that never reached the wire (reconnect refused) has
        // no meaningful latency — recording its ~0 µs would deflate the
        // percentiles exactly during the chaos windows they exist to
        // describe. It still counts as executed and failed.
        if attempted {
            result.latencies.push(t0.elapsed().as_secs_f64());
        }
        match response {
            None => {
                result.failures += 1;
                conn = None; // force reconnect next request
            }
            Some(text) => match json::parse(&text) {
                Ok(resp) if resp.get("error").is_none() => {
                    if let Some(g) = resp.get("generation").and_then(Json::as_num) {
                        result.generations.insert(g as u64);
                    }
                    validation.validate(symptoms, &resp, &mut last_gen, client_name.as_deref());
                }
                _ => result.failures += 1,
            },
        }
    }
    result
}

/// One item of the control lane: write-side work (ingests, chaos)
/// executed serially on [`run`]'s own thread in arrival order. The
/// online pipeline is single-writer by design, so merging its ingests
/// with the chaos plan is the production shape — and it keeps the
/// non-`Send` pipeline off worker threads.
enum ControlItem {
    /// Index into the schedule of an ingest op.
    Ingest(usize),
    /// A chaos action.
    Chaos(ChaosAction),
}

/// Executes the merged ingest + chaos timeline; returns the ingest
/// counters and each chaos action's measured duration.
fn control_lane(
    workload: &Workload,
    stack: &mut Stack,
    start: Instant,
) -> (WorkerResult, Vec<(String, f64)>) {
    let mut timeline: Vec<(u64, ControlItem)> = workload
        .schedule
        .ingest_lane()
        .into_iter()
        .map(|idx| {
            (
                workload.schedule.requests[idx].at_us,
                ControlItem::Ingest(idx),
            )
        })
        .chain(
            workload
                .chaos
                .iter()
                .map(|e| (e.at_us, ControlItem::Chaos(e.action))),
        )
        .collect();
    timeline.sort_by_key(|(at_us, _)| *at_us);

    let mut result = WorkerResult {
        latencies: Vec::new(),
        executed: 0,
        failures: 0,
        generations: BTreeSet::new(),
    };
    let mut timings = Vec::new();
    for (at_us, item) in timeline {
        let target = start + Duration::from_micros(at_us);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        match item {
            ControlItem::Ingest(idx) => {
                let crate::schedule::Op::Ingest { symptoms, herbs } =
                    &workload.schedule.requests[idx].op
                else {
                    continue;
                };
                result.executed += 1;
                let pipeline = stack.pipeline.as_mut().expect("online topology");
                if pipeline
                    .ingest_ids(symptoms.clone(), herbs.clone())
                    .is_err()
                {
                    result.failures += 1;
                }
            }
            ControlItem::Chaos(action) => {
                let t0 = Instant::now();
                match action {
                    ChaosAction::KillReplica(i) => {
                        if let Some(victim) = stack.replicas.get_mut(i).and_then(Option::take) {
                            victim.shutdown();
                        }
                    }
                    ChaosAction::RollingPublish { tag } => {
                        let model = synthetic_frozen(N_SYMPTOMS, N_HERBS, DIM, tag);
                        let vocab = synthetic_vocab(N_SYMPTOMS, N_HERBS, tag);
                        let artifact = smgcn_serve::artifact::encode(&model, &vocab);
                        let b64 = smgcn_serve::artifact::to_base64(&artifact);
                        // Through the router so the fleet-serializing
                        // path is the one exercised.
                        let published = (|| {
                            let (mut reader, mut writer) = connect(stack.front).ok()?;
                            writeln!(writer, "{{\"op\":\"publish\",\"artifact\":\"{b64}\"}}")
                                .ok()?;
                            writer.flush().ok()?;
                            let mut line = String::new();
                            reader.read_line(&mut line).ok()?;
                            let ack = json::parse(line.trim()).ok()?;
                            (ack.get("error").is_none()).then_some(())
                        })();
                        assert!(
                            published.is_some(),
                            "rolling publish through the router failed"
                        );
                    }
                    ChaosAction::Refresh => {
                        stack
                            .pipeline
                            .as_mut()
                            .expect("online topology")
                            .refresh()
                            .expect("refresh succeeds");
                    }
                    ChaosAction::CorruptPublish { tag } => {
                        let model = synthetic_frozen(N_SYMPTOMS, N_HERBS, DIM, tag);
                        let vocab = synthetic_vocab(N_SYMPTOMS, N_HERBS, tag);
                        let mut artifact = smgcn_serve::artifact::encode(&model, &vocab);
                        // One flipped bit mid-payload: the CRC trailer
                        // must catch it on every replica.
                        let mid = artifact.len() / 2;
                        artifact[mid] ^= 0x40;
                        let b64 = smgcn_serve::artifact::to_base64(&artifact);
                        let rejected = (|| {
                            let (mut reader, mut writer) = connect(stack.front).ok()?;
                            writeln!(writer, "{{\"op\":\"publish\",\"artifact\":\"{b64}\"}}")
                                .ok()?;
                            writer.flush().ok()?;
                            let mut line = String::new();
                            reader.read_line(&mut line).ok()?;
                            let ack = json::parse(line.trim()).ok()?;
                            Some(
                                ack.get("aborted") == Some(&Json::Bool(true))
                                    && ack.get("published").and_then(Json::as_num) == Some(0.0),
                            )
                        })();
                        assert_eq!(
                            rejected,
                            Some(true),
                            "a corrupt publish must abort with zero replicas published"
                        );
                    }
                    ChaosAction::CandidatePublish { tag } => {
                        let model = synthetic_frozen(N_SYMPTOMS, N_HERBS, DIM, tag);
                        let vocab = synthetic_vocab(N_SYMPTOMS, N_HERBS, tag);
                        let artifact = smgcn_serve::artifact::encode(&model, &vocab);
                        let b64 = smgcn_serve::artifact::to_base64(&artifact);
                        let ack = experiment_rpc(
                            stack.front,
                            &format!(
                                "{{\"op\":\"experiment\",\"action\":\"publish\",\
                                 \"variant\":\"{CANDIDATE}\",\"artifact\":\"{b64}\"}}"
                            ),
                        );
                        assert!(
                            ack.as_ref().is_some_and(|a| a.get("error").is_none()
                                && a.get("aborted") != Some(&Json::Bool(true))),
                            "candidate publish through the router failed: {ack:?}"
                        );
                    }
                    ChaosAction::InstallSplit { candidate_percent } => {
                        let ack = experiment_rpc(
                            stack.front,
                            &format!(
                                "{{\"op\":\"experiment\",\"action\":\"install\",\
                                 \"weights\":\"control:{},{CANDIDATE}:{candidate_percent}\"}}",
                                100 - candidate_percent
                            ),
                        );
                        assert!(
                            ack.as_ref()
                                .is_some_and(|a| a.get("installed") == Some(&Json::Bool(true))),
                            "split install through the router failed: {ack:?}"
                        );
                    }
                    ChaosAction::HaltSplit => {
                        let ack = experiment_rpc(
                            stack.front,
                            "{\"op\":\"experiment\",\"action\":\"halt\"}",
                        );
                        assert!(
                            ack.as_ref()
                                .is_some_and(|a| a.get("halted") == Some(&Json::Bool(true))),
                            "split halt through the router failed: {ack:?}"
                        );
                    }
                }
                timings.push((action.describe(), t0.elapsed().as_secs_f64() * 1e3));
            }
        }
    }
    (result, timings)
}

/// Runs one planned workload end to end and returns the report.
pub fn run(workload: &Workload) -> ScenarioReport {
    let summary = WorkloadSummary::from_workload(workload);
    // Installed before the stack comes up so even boot-time traffic sits
    // under the plan. The plan is process-global: scenario runs with a
    // fault plan belong in their own test binary.
    if let Some(plan) = &workload.fault_plan {
        smgcn_faults::install(plan);
    }
    let mut stack = Stack::build(workload);
    let metrics_before = fetch_metrics(stack.front);
    // The retention layer: a scraper polls the front-end's metrics on
    // the scenario's cadence, appending each snapshot to an in-memory
    // tsdb — both the queryable index (for post-hoc burn-rate alert
    // evaluation) and the exact byte encoding a file-backed tsdb would
    // have persisted (shipped in the report for `smgcn query`).
    let history = Arc::new(Mutex::new(TsdbHistory::new()));
    let scraper = {
        let history = Arc::clone(&history);
        let front = stack.front;
        Scraper::spawn(
            Duration::from_millis(scrape_interval_ms(workload.config.measure_ms)),
            Box::new(move || {
                let (_, snap) = fetch_metrics(front)?;
                let inner = snap.get("merged").or_else(|| snap.get("metrics"))?;
                Some(flatten_metrics_json(inner))
            }),
            Box::new(move |at_ms, samples| {
                history
                    .lock()
                    .expect("tsdb history lock")
                    .append(at_ms, samples);
            }),
        )
    };
    let validation = Arc::new(Validation::plan(workload));
    let workload = Arc::new(workload.clone());
    let lanes = workload.schedule.query_lanes(workload.config.workers);

    let run_start = Instant::now();
    let mut handles: Vec<JoinHandle<WorkerResult>> = Vec::new();
    for lane in lanes.into_iter().filter(|l| !l.is_empty()) {
        let workload = Arc::clone(&workload);
        let validation = Arc::clone(&validation);
        let front = stack.front;
        handles.push(std::thread::spawn(move || {
            query_worker(workload, lane, front, validation, run_start)
        }));
    }

    // The storm cohort rides beside the query lanes on its own thread:
    // it dials the full fleet, holds every connection open until the
    // horizon, and returns its own executed/failure ledger. Its
    // latencies never enter the percentile lane — the steady schedule
    // above is what the p99 budget judges.
    let storm_handle = workload.storm.map(|spec| {
        let front = stack.front;
        let hold_until = run_start + Duration::from_millis(workload.config.measure_ms);
        std::thread::spawn(move || crate::storm::run(front, &spec, hold_until))
    });

    let (control_result, chaos_timings) = control_lane(&workload, &mut stack, run_start);

    let mut latencies = Vec::new();
    let mut executed = control_result.executed;
    let mut failures = control_result.failures;
    let mut generations = BTreeSet::new();
    for handle in handles {
        let result = handle.join().expect("worker thread");
        latencies.extend(result.latencies);
        executed += result.executed;
        failures += result.failures;
        generations.extend(result.generations);
    }
    if let Some(handle) = storm_handle {
        let storm = handle.join().expect("storm thread");
        let spec = workload.storm.expect("storm handle implies a spec");
        executed += storm.executed;
        failures += storm.failures;
        if storm.opened < spec.connections {
            validation.violation(format!(
                "connection storm opened {} of {} planned connections",
                storm.opened, spec.connections
            ));
        }
        match storm.rss_growth_mb {
            Some(growth) if growth > spec.max_rss_mb as f64 => {
                validation.violation(format!(
                    "connection storm grew resident memory by {growth:.0} MiB, \
                     budget {} MiB",
                    spec.max_rss_mb
                ));
            }
            _ => {}
        }
    }
    let wall_s = run_start.elapsed().as_secs_f64();
    let (p50_us, p99_us) = percentiles_us(&mut latencies);
    // Stop lands one final scrape (terminal counter state), then the
    // client-observed summary goes in as its own series: the history
    // alone can reproduce the report's headline latency numbers.
    scraper.stop();
    history.lock().expect("tsdb history lock").append(
        unix_ms_now(),
        &[
            ("client_latency_ms.p50".to_string(), p50_us / 1e3),
            ("client_latency_ms.p99".to_string(), p99_us / 1e3),
            ("client_requests_total".to_string(), executed as f64),
            ("client_failures_total".to_string(), failures as f64),
        ],
    );
    let metrics_after = fetch_metrics(stack.front);
    let events_after = fetch_admin(stack.front, "events");
    let profile_after = fetch_admin(stack.front, "profile");
    // Experiment scenarios also capture the fleet's A/B comparison
    // report (per-variant rates + interleaving verdict) before teardown
    // — duel samples and variant counters survive the halt, so the
    // report covers the whole split window.
    let experiment_after = workload
        .chaos
        .iter()
        .any(|e| matches!(e.action, ChaosAction::InstallSplit { .. }))
        .then(|| {
            fetch_admin_line(
                stack.front,
                "{\"op\":\"experiment\",\"action\":\"compare\"}",
            )
        })
        .flatten();
    let faults_injected = if workload.fault_plan.is_some() {
        let n = smgcn_faults::injected_total();
        smgcn_faults::clear();
        n
    } else {
        0
    };
    stack.teardown();

    let routed = matches!(workload.topology, Topology::Routed { .. });
    let (deltas, cache_hit_rate, counter_errs) = match (&metrics_before, &metrics_after) {
        (Some((_, before)), Some((_, after))) => {
            let deltas = counter_deltas(before, after);
            let hits = delta_of(&deltas, "serve_cache_hits_total");
            let lookups = hits + delta_of(&deltas, "serve_cache_misses_total");
            let rate = if lookups > 0.0 { hits / lookups } else { 0.0 };
            let errs = counter_errors(&deltas, routed);
            (deltas, rate, Some(errs))
        }
        _ => (Vec::new(), 0.0, None),
    };

    // The alert contract: replay the scenario's burn-rate rules over
    // the scraped history, then diff what fired against expectations.
    let history = Arc::try_unwrap(history)
        .unwrap_or_else(|_| panic!("scraper stopped: history has one owner"))
        .into_inner()
        .expect("tsdb history lock");
    let alerts = evaluate_series(&workload.alerts.rules, &history.data);
    let mut alerts_fired: Vec<String> = alerts.iter().map(|a| a.rule.clone()).collect();
    alerts_fired.sort();
    alerts_fired.dedup();
    let mut alert_failures = Vec::new();
    for name in &workload.alerts.expect_fired {
        if !alerts_fired.iter().any(|f| f == name) {
            alert_failures.push(format!(
                "rule {name:?} was expected to fire and stayed silent over \
                 {} scraped record(s)",
                history.records
            ));
        }
    }
    for name in &workload.alerts.expect_silent {
        if alerts_fired.iter().any(|f| f == name) {
            let firings = alerts.iter().filter(|a| &a.rule == name).count();
            alert_failures.push(format!(
                "rule {name:?} was expected to stay silent and fired {firings} time(s)"
            ));
        }
    }
    let tsdb = (history.records > 0).then_some(history.bytes);

    let max_ms = latencies.iter().copied().fold(0.0f64, f64::max) * 1e3;
    let violations = validation
        .violations
        .lock()
        .expect("violations lock")
        .clone();
    let measured = Measured {
        executed,
        failures,
        wall_ms: wall_s * 1e3,
        qps: latencies.len() as f64 / wall_s.max(1e-9),
        p50_ms: p50_us / 1e3,
        p99_ms: p99_us / 1e3,
        max_ms,
        generations_seen: generations.into_iter().collect(),
        chaos_timings,
        workers: workload.config.workers,
        counter_deltas: deltas,
        cache_hit_rate,
        faults_injected,
        alerts_fired,
        alert_firings: alerts.len(),
    };
    let verdict = evaluate(
        &workload.slo,
        &SloInputs {
            executed,
            scheduled: workload.schedule.requests.len(),
            failures,
            p99_ms: measured.p99_ms,
            counter_errors: counter_errs,
            violations,
            alert_failures,
        },
    );
    ScenarioReport {
        workload: summary,
        measured,
        verdict,
        metrics_json: metrics_after.map(|(raw, _)| raw),
        events_json: events_after.map(|(raw, _)| raw),
        tsdb,
        profile_json: profile_after.map(|(raw, _)| raw),
        experiment_json: experiment_after.map(|(raw, _)| raw),
    }
}

/// Builds and runs `kind` under `config` in one call.
pub fn run_scenario(
    kind: ScenarioKind,
    config: &crate::scenario::ScenarioConfig,
) -> ScenarioReport {
    run(&crate::scenario::build(kind, config))
}
