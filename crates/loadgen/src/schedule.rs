//! Deterministic request schedules.
//!
//! A schedule is the full list of operations a scenario will drive —
//! arrival offset plus payload — generated **up front, single-threaded,
//! from one seeded RNG**. Execution (N worker threads, OS jitter, real
//! latencies) never feeds back into the schedule, which is what makes
//! the determinism guarantee honest: the same seed yields a
//! byte-identical schedule regardless of how many threads later execute
//! it or how the run goes.
//!
//! Worker assignment is *derived* (queries round-robin by position,
//! ingests to a dedicated lane), never stored, so the canonical form is
//! independent of the executor's thread count.

/// One operation the load engine can issue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// A recommendation query over a symptom-id set.
    Query {
        /// Sorted, deduplicated symptom ids.
        symptoms: Vec<u32>,
        /// Ranking depth.
        k: usize,
        /// Sticky client identity, sent as the request's `"client"`
        /// field. Experiment scenarios assign these so the split
        /// plan's sticky-key routing is observable across connections;
        /// `None` leaves the field (and the canonical form) untouched.
        client: Option<u32>,
    },
    /// A prescription ingested into the online pipeline.
    Ingest {
        /// Symptom ids.
        symptoms: Vec<u32>,
        /// Herb ids.
        herbs: Vec<u32>,
    },
}

/// One scheduled operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Arrival offset from scenario start, in microseconds.
    pub at_us: u64,
    /// The operation.
    pub op: Op,
}

/// The complete, ordered workload of one scenario run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Requests sorted by arrival offset (ties keep generation order).
    pub requests: Vec<Request>,
}

impl Schedule {
    /// Builds a schedule, sorting by arrival offset (stable, so equal
    /// offsets keep their generation order — determinism again).
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| r.at_us);
        Self { requests }
    }

    /// Number of query operations.
    pub fn query_count(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| matches!(r.op, Op::Query { .. }))
            .count()
    }

    /// Number of ingest operations.
    pub fn ingest_count(&self) -> usize {
        self.requests.len() - self.query_count()
    }

    /// Schedule horizon: the last arrival offset.
    pub fn horizon_us(&self) -> u64 {
        self.requests.last().map_or(0, |r| r.at_us)
    }

    /// The distinct query symptom sets (sorted), for precomputing
    /// expected rankings.
    pub fn distinct_query_sets(&self) -> Vec<Vec<u32>> {
        let mut sets: Vec<Vec<u32>> = self
            .requests
            .iter()
            .filter_map(|r| match &r.op {
                Op::Query { symptoms, .. } => Some(symptoms.clone()),
                Op::Ingest { .. } => None,
            })
            .collect();
        sets.sort();
        sets.dedup();
        sets
    }

    /// Indices of query requests for each of `workers` lanes
    /// (round-robin over queries in arrival order), preserving order
    /// within a lane. Ingests are excluded — they go to the ingest lane.
    pub fn query_lanes(&self, workers: usize) -> Vec<Vec<usize>> {
        let workers = workers.max(1);
        let mut lanes = vec![Vec::new(); workers];
        for (lane, idx) in self
            .requests
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.op, Op::Query { .. }))
            .map(|(i, _)| i)
            .enumerate()
            .map(|(q, i)| (q % workers, i))
        {
            lanes[lane].push(idx);
        }
        lanes
    }

    /// Indices of ingest requests, in arrival order.
    pub fn ingest_lane(&self) -> Vec<usize> {
        self.requests
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.op, Op::Ingest { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// The canonical text form: one line per request, fixed field order.
    /// Two schedules are identical iff their canonical forms are.
    pub fn canonical_string(&self) -> String {
        let mut out = String::with_capacity(self.requests.len() * 32);
        for r in &self.requests {
            match &r.op {
                Op::Query {
                    symptoms,
                    k,
                    client,
                } => match client {
                    None => out.push_str(&format!("{} q {:?} k={}\n", r.at_us, symptoms, k)),
                    Some(c) => {
                        out.push_str(&format!("{} q {:?} k={} c={}\n", r.at_us, symptoms, k, c));
                    }
                },
                Op::Ingest { symptoms, herbs } => {
                    out.push_str(&format!("{} i {:?} => {:?}\n", r.at_us, symptoms, herbs));
                }
            }
        }
        out
    }

    /// FNV-1a digest of the canonical form — the schedule fingerprint
    /// embedded in scenario reports so two runs are comparable at a
    /// glance.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.canonical_string().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule::new(vec![
            Request {
                at_us: 20,
                op: Op::Ingest {
                    symptoms: vec![1],
                    herbs: vec![2, 3],
                },
            },
            Request {
                at_us: 0,
                op: Op::Query {
                    symptoms: vec![0, 1],
                    k: 10,
                    client: None,
                },
            },
            Request {
                at_us: 10,
                op: Op::Query {
                    symptoms: vec![2],
                    k: 10,
                    client: Some(3),
                },
            },
            Request {
                at_us: 10,
                op: Op::Query {
                    symptoms: vec![0, 1],
                    k: 10,
                    client: None,
                },
            },
        ])
    }

    #[test]
    fn sorts_by_arrival_and_counts() {
        let s = sample();
        assert!(s.requests.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert_eq!(s.query_count(), 3);
        assert_eq!(s.ingest_count(), 1);
        assert_eq!(s.horizon_us(), 20);
    }

    #[test]
    fn lanes_cover_all_queries_disjointly_for_any_worker_count() {
        let s = sample();
        for workers in 1..5 {
            let lanes = s.query_lanes(workers);
            let mut all: Vec<usize> = lanes.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all.len(), 3, "workers={workers}");
            all.dedup();
            assert_eq!(all.len(), 3, "workers={workers}: duplicated index");
        }
        assert_eq!(s.ingest_lane().len(), 1);
    }

    #[test]
    fn canonical_form_is_stable_and_digested() {
        let a = sample();
        let b = sample();
        assert_eq!(a.canonical_string(), b.canonical_string());
        assert_eq!(a.digest(), b.digest());
        let mut c = sample();
        c.requests[0].at_us += 1;
        let c = Schedule::new(c.requests);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn distinct_sets_dedupe() {
        assert_eq!(sample().distinct_query_sets(), vec![vec![0, 1], vec![2]]);
    }
}
