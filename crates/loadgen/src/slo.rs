//! Per-scenario SLO contracts and their evaluation.
//!
//! Three classes of assertion, mirroring what production cares about:
//!
//! - **latency budget** — client-observed p99 under the scenario's
//!   ceiling (budgets are smoke-safe: generous enough for a loaded CI
//!   runner, tight enough that a 2x serving regression trips them);
//! - **error budget** — client-visible failures; every scenario's budget
//!   is zero (the router/retry machinery exists precisely so bursts,
//!   publishes and replica kills never surface to clients);
//! - **generation consistency** — every response matches the model
//!   generation it claims (exact precomputed rankings for synthetic
//!   topologies, per-connection monotonicity under live refreshes).

/// How generation consistency is checked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenCheck {
    /// No generation invariant (no publishes possible).
    None,
    /// Generations must be non-decreasing per connection (live refresh:
    /// exact rankings are not precomputable, mixing still is detectable).
    Monotone,
    /// Every response's ranking must equal the precomputed ranking of
    /// the generation it claims, and its herb names must carry that
    /// generation's tag.
    ExactRankings,
    /// Experiment mode: every response is validated against the
    /// *variant* it claims (control when unlabeled) — exact rankings,
    /// herb names carrying the variant's artifact tag, the variant's
    /// expected generation — and a client's assigned variant must never
    /// flap for the lifetime of the split.
    VariantRankings,
}

impl GenCheck {
    /// The report label.
    pub fn name(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Monotone => "monotone",
            Self::ExactRankings => "exact-rankings",
            Self::VariantRankings => "variant-rankings",
        }
    }
}

/// One scenario's pass/fail contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slo {
    /// Client-observed p99 ceiling, milliseconds.
    pub max_p99_ms: f64,
    /// Failed-request budget (zero everywhere: error budget must not
    /// burn at all during planned chaos).
    pub max_failures: usize,
    /// The generation invariant in force.
    pub generation_consistency: GenCheck,
}

/// What execution measured, as the SLO evaluator needs it.
#[derive(Clone, Debug, Default)]
pub struct SloInputs {
    /// Requests that completed (success or failure).
    pub executed: usize,
    /// Requests the schedule planned.
    pub scheduled: usize,
    /// Client-visible failures (error responses, transport failures).
    pub failures: usize,
    /// Client-observed p99, milliseconds.
    pub p99_ms: f64,
    /// Server-side error count derived from the fleet's metric counters
    /// (non-retryable serve errors plus requests the router exhausted);
    /// `None` when no metrics snapshot was available. This is the
    /// server's own ledger — it must agree with the client-side
    /// `failures` view, so it shares the same budget.
    pub counter_errors: Option<u64>,
    /// Invariant violations collected by workers (bounded sample).
    pub violations: Vec<String>,
    /// Burn-rate alerting contract failures: a rule the scenario
    /// expected to fire that stayed silent, or one it expected silent
    /// that paged. Empty when the alert plan held (or had no rules).
    pub alert_failures: Vec<String>,
}

/// The verdict: empty `violations` means the SLO held.
#[derive(Clone, Debug)]
pub struct SloVerdict {
    /// Every violated assertion, human-readable, machine-greppable.
    pub violations: Vec<String>,
}

impl SloVerdict {
    /// True when the scenario met its contract.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Evaluates `inputs` against `slo`.
pub fn evaluate(slo: &Slo, inputs: &SloInputs) -> SloVerdict {
    let mut violations = Vec::new();
    if inputs.executed < inputs.scheduled {
        violations.push(format!(
            "incomplete run: executed {} of {} scheduled requests",
            inputs.executed, inputs.scheduled
        ));
    }
    if inputs.failures > slo.max_failures {
        violations.push(format!(
            "error budget burned: {} failed request(s), budget {}",
            inputs.failures, slo.max_failures
        ));
    }
    if let Some(errors) = inputs.counter_errors {
        if errors as usize > slo.max_failures {
            violations.push(format!(
                "counter error budget burned: metric counters recorded {errors} \
                 server-side error(s), budget {}",
                slo.max_failures
            ));
        }
    }
    if inputs.p99_ms > slo.max_p99_ms {
        violations.push(format!(
            "latency budget blown: p99 {:.2} ms > {:.2} ms",
            inputs.p99_ms, slo.max_p99_ms
        ));
    }
    for v in &inputs.violations {
        violations.push(format!(
            "{} violated: {v}",
            slo.generation_consistency.name()
        ));
    }
    for f in &inputs.alert_failures {
        violations.push(format!("alert contract violated: {f}"));
    }
    SloVerdict { violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo() -> Slo {
        Slo {
            max_p99_ms: 100.0,
            max_failures: 0,
            generation_consistency: GenCheck::ExactRankings,
        }
    }

    fn clean(scheduled: usize) -> SloInputs {
        SloInputs {
            executed: scheduled,
            scheduled,
            failures: 0,
            p99_ms: 10.0,
            counter_errors: Some(0),
            violations: Vec::new(),
            alert_failures: Vec::new(),
        }
    }

    #[test]
    fn clean_run_passes() {
        assert!(evaluate(&slo(), &clean(100)).passed());
    }

    #[test]
    fn each_budget_trips_independently() {
        let mut slow = clean(100);
        slow.p99_ms = 101.0;
        let v = evaluate(&slo(), &slow);
        assert!(!v.passed());
        assert!(v.violations[0].contains("latency"));

        let mut failing = clean(100);
        failing.failures = 1;
        assert!(evaluate(&slo(), &failing)
            .violations
            .iter()
            .any(|v| v.contains("error budget")));

        let mut short = clean(100);
        short.executed = 99;
        assert!(evaluate(&slo(), &short)
            .violations
            .iter()
            .any(|v| v.contains("incomplete")));

        let mut leaky = clean(100);
        leaky.counter_errors = Some(2);
        assert!(evaluate(&slo(), &leaky)
            .violations
            .iter()
            .any(|v| v.contains("counter error budget")));
        // No snapshot means no counter assertion, not a violation.
        let mut blind = clean(100);
        blind.counter_errors = None;
        assert!(evaluate(&slo(), &blind).passed());

        let mut mixed = clean(100);
        mixed.violations.push("gen 1 ranking != expected".into());
        assert!(evaluate(&slo(), &mixed)
            .violations
            .iter()
            .any(|v| v.contains("exact-rankings violated")));

        let mut paged = clean(100);
        paged
            .alert_failures
            .push("rule \"availability-burn\" fired on a clean run".into());
        assert!(evaluate(&slo(), &paged)
            .violations
            .iter()
            .any(|v| v.contains("alert contract violated")));
    }
}
