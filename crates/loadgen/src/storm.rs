//! The connection-storm cohort: a fleet of persistent keep-alive
//! connections held open against one reactor server for the whole
//! measure window.
//!
//! The cohort exists to prove the fd-bounded claim of the readiness
//! reactor: ten thousand registered sockets must cost the server file
//! descriptors and per-connection buffers, not threads — while a
//! steady query lane (driven separately by the engine) keeps its p99
//! inside budget. Three sub-cohorts:
//!
//! - **openers** — threads that share the dialing, then sweep their
//!   connections round-robin with one request in flight each, so every
//!   held socket stays genuinely active;
//! - **slow writers** — connections whose requests arrive a few bytes
//!   at a time with sleeps in between (slowloris-shaped). The reactor
//!   must buffer the partial lines without dedicating a thread or
//!   starving the fast lanes; their latencies are never mixed into the
//!   percentile lane but their failures still count;
//! - the **resident-memory probe** — `/proc/self/statm` sampled before
//!   dialing and at peak hold, bounding the whole storm's RSS growth
//!   (client and server share this process, so the bound covers both
//!   sides of every socket).
//!
//! Everything here measures; the [`crate::scenario::StormSpec`] decides.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use smgcn_serve::json;

use crate::scenario::StormSpec;

/// Per-connection read timeout: generous, so a wedged server surfaces
/// as failed requests rather than a hung cohort.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Bytes per dribbled slow-writer write.
const SLOW_CHUNK: usize = 3;

/// Sleep between slow-writer chunk rounds.
const SLOW_PAUSE: Duration = Duration::from_millis(5);

/// What the cohort measured.
#[derive(Clone, Copy, Debug, Default)]
pub struct StormResult {
    /// Connections that actually dialed and stayed up.
    pub opened: usize,
    /// Requests completed across the cohort (success or failure).
    pub executed: usize,
    /// Failed requests (transport errors or error responses).
    pub failures: usize,
    /// Resident-set growth across the held window, MiB. `None` when
    /// `/proc/self/statm` is unavailable (non-Linux).
    pub rss_growth_mb: Option<f64>,
}

/// Best-effort `RLIMIT_NOFILE` raise to the hard limit: one process
/// holds both ends of every storm socket, so the default soft limit
/// (often 1024) is far below the ~2x`connections` descriptors needed.
#[cfg(target_os = "linux")]
fn raise_nofile_limit() {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    const RLIMIT_NOFILE: i32 = 7;
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: plain-old-data out-param matching the kernel ABI struct.
    unsafe {
        if getrlimit(RLIMIT_NOFILE, &mut lim) == 0 && lim.cur < lim.max {
            lim.cur = lim.max;
            let _ = setrlimit(RLIMIT_NOFILE, &lim);
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn raise_nofile_limit() {}

/// Resident set size in MiB from `/proc/self/statm` (best effort; the
/// conventional 4 KiB page size is assumed — a bound this coarse does
/// not need `sysconf`).
#[cfg(target_os = "linux")]
fn rss_mb() -> Option<f64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: f64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096.0 / (1024.0 * 1024.0))
}

#[cfg(not(target_os = "linux"))]
fn rss_mb() -> Option<f64> {
    None
}

/// A deterministic two-symptom query for cohort connection `i`, sweep
/// round `round` — distinct enough to exercise the scoring path, no RNG
/// needed.
fn query_line(i: usize, round: usize) -> String {
    let a = (i * 7 + round) % crate::scenario::N_SYMPTOMS;
    let b = (a + 1 + (round % 3)) % crate::scenario::N_SYMPTOMS;
    if a == b {
        format!("{{\"symptom_ids\":[{a}],\"k\":10}}")
    } else {
        format!("{{\"symptom_ids\":[{a},{b}],\"k\":10}}")
    }
}

/// True when `line` is a well-formed non-error response.
fn response_ok(line: &str) -> bool {
    json::parse(line.trim()).is_ok_and(|resp| resp.get("error").is_none())
}

/// One fd per held connection: reads go through the `BufReader`, writes
/// through its `get_mut()` — cloning the stream for a second handle
/// would double the cohort's descriptor bill.
fn dial(front: SocketAddr) -> std::io::Result<BufReader<TcpStream>> {
    let stream = TcpStream::connect(front)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    Ok(BufReader::new(stream))
}

/// Opener-thread body: dial `share` connections, bump `opened` for each
/// that lands, then sweep them round-robin (send, read, next) until
/// `hold_until`, keeping every socket open the whole time.
fn opener_loop(
    front: SocketAddr,
    share: usize,
    base_index: usize,
    opened: Arc<AtomicUsize>,
    hold_until: Instant,
) -> (usize, usize) {
    let mut conns = Vec::with_capacity(share);
    for i in 0..share {
        if let Ok(reader) = dial(front) {
            opened.fetch_add(1, Ordering::Relaxed);
            conns.push((base_index + i, reader));
        }
    }
    let (mut executed, mut failures) = (0usize, 0usize);
    let mut line = String::new();
    let mut round = 0usize;
    'sweep: loop {
        for (index, reader) in &mut conns {
            if Instant::now() >= hold_until {
                break 'sweep;
            }
            executed += 1;
            let ok = (|| {
                writeln!(reader.get_mut(), "{}", query_line(*index, round)).ok()?;
                line.clear();
                reader.read_line(&mut line).ok()?;
                response_ok(&line).then_some(())
            })()
            .is_some();
            if !ok {
                failures += 1;
            }
        }
        if conns.is_empty() {
            break;
        }
        round += 1;
        // Held-open is the point, not throughput: pause between sweeps
        // so the cohort idles registered rather than hammering.
        std::thread::sleep(Duration::from_millis(50));
    }
    // Conns drop (close) here — after the hold window, by construction.
    (executed, failures)
}

/// Slow-writer-thread body: dial `share` connections, then run waves
/// until `hold_until`. Each wave writes every connection's request a
/// few bytes at a time with sleeps between chunk rounds — the server
/// sits on partial lines across the whole wave — then collects the
/// responses.
fn slow_writer_loop(
    front: SocketAddr,
    share: usize,
    base_index: usize,
    opened: Arc<AtomicUsize>,
    hold_until: Instant,
) -> (usize, usize) {
    let mut conns = Vec::with_capacity(share);
    for i in 0..share {
        if let Ok(reader) = dial(front) {
            opened.fetch_add(1, Ordering::Relaxed);
            conns.push((base_index + i, reader));
        }
    }
    let (mut executed, mut failures) = (0usize, 0usize);
    let mut line = String::new();
    let mut round = 0usize;
    while Instant::now() < hold_until && !conns.is_empty() {
        let payloads: Vec<Vec<u8>> = conns
            .iter()
            .map(|(index, _)| {
                let mut bytes = query_line(*index, round).into_bytes();
                bytes.push(b'\n');
                bytes
            })
            .collect();
        let longest = payloads.iter().map(Vec::len).max().unwrap_or(0);
        // Dribble: one chunk per connection per round, a sleep between
        // rounds, so every partial line sits buffered server-side for
        // tens of milliseconds.
        let mut offset = 0;
        while offset < longest {
            for ((_, reader), payload) in conns.iter_mut().zip(&payloads) {
                let end = (offset + SLOW_CHUNK).min(payload.len());
                if offset < end {
                    let _ = reader.get_mut().write_all(&payload[offset..end]);
                }
            }
            offset += SLOW_CHUNK;
            std::thread::sleep(SLOW_PAUSE);
        }
        for (_, reader) in &mut conns {
            executed += 1;
            line.clear();
            let ok = reader.read_line(&mut line).is_ok() && response_ok(&line);
            if !ok {
                failures += 1;
            }
        }
        round += 1;
    }
    (executed, failures)
}

/// Runs the whole cohort against `front`, holding every connection
/// open until `hold_until`. Blocks for the full window; the engine
/// runs it on its own thread beside the query lanes.
pub fn run(front: SocketAddr, spec: &StormSpec, hold_until: Instant) -> StormResult {
    raise_nofile_limit();
    let rss_before = rss_mb();
    let opened = Arc::new(AtomicUsize::new(0));
    let openers = spec.openers.max(1);
    let slow_threads = if spec.slow_writers > 0 {
        (openers / 4).max(1)
    } else {
        0
    };
    let fast_total = spec.connections.saturating_sub(spec.slow_writers);

    let mut handles = Vec::new();
    for t in 0..openers {
        // Spread the remainder across the first few openers.
        let share = fast_total / openers + usize::from(t < fast_total % openers);
        let base_index = t * (fast_total / openers + 1);
        let opened = Arc::clone(&opened);
        handles.push(std::thread::spawn(move || {
            opener_loop(front, share, base_index, opened, hold_until)
        }));
    }
    for t in 0..slow_threads {
        let share =
            spec.slow_writers / slow_threads + usize::from(t < spec.slow_writers % slow_threads);
        let base_index = fast_total + t * (spec.slow_writers / slow_threads + 1);
        let opened = Arc::clone(&opened);
        handles.push(std::thread::spawn(move || {
            slow_writer_loop(front, share, base_index, opened, hold_until)
        }));
    }

    // Sample peak RSS while the fleet is fully dialed and still held:
    // wait for every connection to land (or the window to near its
    // end), then read the probe with the sockets all open.
    let sample_by = hold_until
        .checked_sub(Duration::from_millis(100))
        .unwrap_or(hold_until);
    while Instant::now() < sample_by && opened.load(Ordering::Relaxed) < spec.connections {
        std::thread::sleep(Duration::from_millis(10));
    }
    let rss_peak = rss_mb();

    let (mut executed, mut failures) = (0usize, 0usize);
    for handle in handles {
        let (e, f) = handle.join().expect("storm thread");
        executed += e;
        failures += f;
    }
    StormResult {
        opened: opened.load(Ordering::Relaxed),
        executed,
        failures,
        rss_growth_mb: match (rss_before, rss_peak) {
            (Some(before), Some(peak)) => Some((peak - before).max(0.0)),
            _ => None,
        },
    }
}
