//! Scenario reports: a deterministic workload section plus a measured
//! section.
//!
//! The split is the honesty mechanism. Everything derived from the seed
//! — scenario, schedule digest, request counts, topology, chaos plan,
//! SLO contract — lands in `workload`, and [`ScenarioReport::workload_json`]
//! is **byte-identical** for the same seed across runs and thread counts
//! (property-tested). Everything the wall clock touched — latencies,
//! qps, chaos timings, violations — lands in `measured`, which varies
//! run to run and says so. Tooling that wants to compare two runs checks
//! the workload digests match first, then diffs the measurements.

use smgcn_serve::json::Json;

use crate::scenario::{StormSpec, Workload};
use crate::slo::SloVerdict;

/// Execution measurements for one scenario run.
#[derive(Clone, Debug, Default)]
pub struct Measured {
    /// Requests that completed (success or failure).
    pub executed: usize,
    /// Client-visible failures.
    pub failures: usize,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Completed queries per second over the run.
    pub qps: f64,
    /// Client-observed latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// p99, milliseconds.
    pub p99_ms: f64,
    /// Worst single request, milliseconds.
    pub max_ms: f64,
    /// Distinct model generations observed in responses, sorted.
    pub generations_seen: Vec<u64>,
    /// Chaos actions with their measured durations (label, ms).
    pub chaos_timings: Vec<(String, f64)>,
    /// Executor worker threads (an execution detail, hence here).
    pub workers: usize,
    /// Before/after deltas of the front-end's `_total` metric counters
    /// over the run (name, delta), nonzero entries only, sorted by name.
    /// Empty when no metrics snapshot was available.
    pub counter_deltas: Vec<(String, f64)>,
    /// Cache hit rate over the run derived from the counter deltas
    /// (hits / lookups; 0 when the run touched no cache).
    pub cache_hit_rate: f64,
    /// Faults the installed plan actually injected over the run (0 when
    /// the scenario carries no plan).
    pub faults_injected: u64,
    /// Names of burn-rate alert rules that fired at least once over the
    /// run's scraped history, sorted and deduplicated.
    pub alerts_fired: Vec<String>,
    /// Total rule firings across all evaluation instants (one rule
    /// firing at many scrape timestamps counts each).
    pub alert_firings: usize,
}

/// A complete scenario run: the plan and what happened.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// The deterministic plan.
    pub workload: WorkloadSummary,
    /// The measurements.
    pub measured: Measured,
    /// The SLO verdict.
    pub verdict: SloVerdict,
    /// The front-end's raw `{"op":"metrics"}` response captured at the
    /// end of the run (before teardown), for artifact upload. Not part
    /// of the report JSON — tooling writes it alongside.
    pub metrics_json: Option<String>,
    /// The front-end's raw `{"op":"events"}` journal captured the same
    /// way (fault recoveries, publishes, deadline sheds — the forensic
    /// record of what the run's chaos actually did).
    pub events_json: Option<String>,
    /// The scraped metrics history in the on-disk tsdb format
    /// (`smgcn_obs::tsdb`), one record per scrape plus the client-side
    /// summary record. Tooling writes it as `TSDB_<scenario>.bin`;
    /// `smgcn query` reads it back. `None` when no scrape succeeded.
    pub tsdb: Option<Vec<u8>>,
    /// The front-end's raw `{"op":"profile"}` response captured at the
    /// end of the run: cumulative folded stacks plus the wall-time
    /// coverage accounting.
    pub profile_json: Option<String>,
    /// The fleet's raw A/B comparison report (`{"op":"experiment",
    /// "action":"compare"}`) for experiment scenarios: per-variant
    /// request/error/latency rates plus the team-draft interleaving
    /// verdict. Tooling writes it as `EXPERIMENT_<scenario>.json`;
    /// `None` for scenarios without a split.
    pub experiment_json: Option<String>,
}

/// The deterministic face of a workload (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSummary {
    /// Scenario name.
    pub scenario: String,
    /// Seed the schedule derives from.
    pub seed: u64,
    /// Schedule horizon, milliseconds.
    pub measure_ms: u64,
    /// Ranking depth.
    pub k: usize,
    /// Query count planned.
    pub n_queries: usize,
    /// Ingest count planned.
    pub n_ingests: usize,
    /// FNV-1a fingerprint of the canonical schedule, hex.
    pub schedule_digest: String,
    /// Topology label.
    pub topology: String,
    /// Chaos plan labels with offsets ("kill-replica-0@800000us").
    pub chaos: Vec<String>,
    /// FNV-1a fingerprint of the canonical fault plan, hex; `None` when
    /// the scenario injects no faults.
    pub fault_plan_digest: Option<String>,
    /// Burn-rate alert rules with their expectations
    /// (`name(expect-fired|expect-silent|observe)`), deterministic per
    /// workload.
    pub alert_rules: Vec<String>,
    /// Connection-storm cohort label
    /// (`storm-<conns>-conns-<slow>-slow-writers`); `None` when the
    /// scenario holds no cohort open.
    pub storm: Option<String>,
    /// SLO contract rendering.
    pub slo_p99_ms: f64,
    /// Failure budget.
    pub slo_max_failures: usize,
    /// Generation-consistency mode name.
    pub slo_generation: String,
}

impl WorkloadSummary {
    /// Summarises a built workload.
    pub fn from_workload(w: &Workload) -> Self {
        Self {
            scenario: w.kind.name().to_string(),
            seed: w.config.seed,
            measure_ms: w.config.measure_ms,
            k: w.config.k,
            n_queries: w.schedule.query_count(),
            n_ingests: w.schedule.ingest_count(),
            schedule_digest: format!("{:016x}", w.schedule.digest()),
            topology: w.topology.describe(),
            chaos: w
                .chaos
                .iter()
                .map(|c| format!("{}@{}us", c.action.describe(), c.at_us))
                .collect(),
            fault_plan_digest: w
                .fault_plan
                .as_ref()
                .map(|p| format!("{:016x}", p.digest())),
            alert_rules: w.alerts.describe(),
            storm: w.storm.as_ref().map(StormSpec::describe),
            slo_p99_ms: w.slo.max_p99_ms,
            slo_max_failures: w.slo.max_failures,
            slo_generation: w.slo.generation_consistency.name().to_string(),
        }
    }

    fn to_json_lines(&self) -> String {
        let chaos = Json::Arr(self.chaos.iter().map(|c| Json::Str(c.clone())).collect());
        let fault_plan = self
            .fault_plan_digest
            .as_ref()
            .map_or(Json::Null, |d| Json::Str(d.clone()));
        let alert_rules = Json::Arr(
            self.alert_rules
                .iter()
                .map(|r| Json::Str(r.clone()))
                .collect(),
        );
        let storm = self
            .storm
            .as_ref()
            .map_or(Json::Null, |s| Json::Str(s.clone()));
        format!(
            "{{\n    \"scenario\": {},\n    \"seed\": {},\n    \"measure_ms\": {},\n    \
             \"k\": {},\n    \"n_queries\": {},\n    \"n_ingests\": {},\n    \
             \"schedule_digest\": {},\n    \"topology\": {},\n    \"chaos\": {chaos},\n    \
             \"fault_plan_digest\": {fault_plan},\n    \"alert_rules\": {alert_rules},\n    \
             \"storm\": {storm},\n    \
             \"slo\": {{\"max_p99_ms\": {}, \"max_failures\": {}, \"generation_consistency\": {}}}\n  }}",
            Json::Str(self.scenario.clone()),
            self.seed,
            self.measure_ms,
            self.k,
            self.n_queries,
            self.n_ingests,
            Json::Str(self.schedule_digest.clone()),
            Json::Str(self.topology.clone()),
            self.slo_p99_ms,
            self.slo_max_failures,
            Json::Str(self.slo_generation.clone()),
        )
    }
}

impl ScenarioReport {
    /// The deterministic report: byte-identical for the same seed and
    /// scenario config, independent of execution (run it twice, diff it).
    pub fn workload_json(&self) -> String {
        format!(
            "{{\n  \"workload\": {}\n}}\n",
            self.workload.to_json_lines()
        )
    }

    /// The full report: the deterministic workload section verbatim,
    /// plus the run's measurements and verdict.
    pub fn to_json_string(&self) -> String {
        let m = &self.measured;
        let generations = Json::Arr(
            m.generations_seen
                .iter()
                .map(|&g| Json::Num(g as f64))
                .collect(),
        );
        let chaos = Json::Arr(
            m.chaos_timings
                .iter()
                .map(|(label, ms)| {
                    Json::Arr(vec![
                        Json::Str(label.clone()),
                        Json::Num((*ms * 1e3).round() / 1e3),
                    ])
                })
                .collect(),
        );
        let violations = Json::Arr(
            self.verdict
                .violations
                .iter()
                .map(|v| Json::Str(v.clone()))
                .collect(),
        );
        let deltas = Json::Obj(
            m.counter_deltas
                .iter()
                .map(|(name, delta)| (name.clone(), Json::Num(*delta)))
                .collect(),
        );
        let alerts = Json::Arr(
            m.alerts_fired
                .iter()
                .map(|name| Json::Str(name.clone()))
                .collect(),
        );
        format!(
            "{{\n  \"workload\": {},\n  \"measured\": {{\n    \"executed\": {},\n    \
             \"failures\": {},\n    \"wall_ms\": {:.3},\n    \"qps\": {:.1},\n    \
             \"p50_ms\": {:.3},\n    \"p99_ms\": {:.3},\n    \"max_ms\": {:.3},\n    \
             \"generations_seen\": {generations},\n    \"chaos_timings_ms\": {chaos},\n    \
             \"workers\": {},\n    \"counter_deltas\": {deltas},\n    \
             \"cache_hit_rate\": {:.4},\n    \"faults_injected\": {},\n    \
             \"alerts_fired\": {alerts},\n    \"alert_firings\": {}\n  }},\n  \
             \"slo_passed\": {},\n  \
             \"violations\": {violations}\n}}\n",
            self.workload.to_json_lines(),
            m.executed,
            m.failures,
            m.wall_ms,
            m.qps,
            m.p50_ms,
            m.p99_ms,
            m.max_ms,
            m.workers,
            m.cache_hit_rate,
            m.faults_injected,
            m.alert_firings,
            self.verdict.passed(),
        )
    }

    /// One-line human summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<28} {:>6} reqs  {:>8.0} qps  p50 {:>7.2} ms  p99 {:>7.2} ms  failed {}  gens {:?}  {}",
            self.workload.scenario,
            self.measured.executed,
            self.measured.qps,
            self.measured.p50_ms,
            self.measured.p99_ms,
            self.measured.failures,
            self.measured.generations_seen,
            if self.verdict.passed() { "SLO OK" } else { "SLO VIOLATED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build, ScenarioConfig, ScenarioKind};
    use crate::slo::SloVerdict;

    fn report() -> ScenarioReport {
        let w = build(
            ScenarioKind::SteadyZipfian,
            &ScenarioConfig {
                measure_ms: 300,
                ..ScenarioConfig::default()
            },
        );
        ScenarioReport {
            workload: WorkloadSummary::from_workload(&w),
            measured: Measured {
                executed: 1,
                workers: 8,
                counter_deltas: vec![("serve_requests_total".to_string(), 42.0)],
                cache_hit_rate: 0.5,
                ..Measured::default()
            },
            verdict: SloVerdict {
                violations: Vec::new(),
            },
            metrics_json: None,
            events_json: None,
            tsdb: None,
            profile_json: None,
            experiment_json: None,
        }
    }

    #[test]
    fn workload_json_is_deterministic_and_parses() {
        let a = report();
        let b = report();
        assert_eq!(a.workload_json(), b.workload_json());
        smgcn_serve::json::parse(a.workload_json().trim()).expect("valid json");
    }

    #[test]
    fn full_report_parses_and_embeds_workload() {
        let r = report();
        let parsed = smgcn_serve::json::parse(r.to_json_string().trim()).expect("valid json");
        assert!(parsed.get("workload").is_some());
        let measured = parsed.get("measured").expect("measured section");
        assert_eq!(parsed.get("slo_passed"), Some(&Json::Bool(true)));
        let deltas = measured.get("counter_deltas").expect("counter deltas");
        assert_eq!(
            deltas.get("serve_requests_total").and_then(Json::as_num),
            Some(42.0)
        );
        assert_eq!(
            measured.get("cache_hit_rate").and_then(Json::as_num),
            Some(0.5)
        );
    }

    #[test]
    fn workload_json_excludes_execution_details() {
        // Worker count and metric deltas are execution details; the
        // deterministic section must not mention them (the determinism
        // guarantee spans thread counts and wall clocks).
        assert!(!report().workload_json().contains("workers"));
        assert!(!report().workload_json().contains("counter_deltas"));
    }
}
