//! # smgcn-loadgen — deterministic multi-scenario load & chaos engine
//!
//! PRs 1–4 built the serving stack (frozen models, micro-batching, hot
//! swap, replicated routing); this crate is how we *believe* it. A
//! scenario is a seeded, fully-deterministic plan — request schedule,
//! topology, chaos events, SLO contract — executed against the real
//! stack over real sockets, with every response validated inline:
//!
//! - [`scenario`] — the named scenarios (`steady-zipfian`,
//!   `flash-crowd`, `ingest-heavy`, `rolling-publish-under-load`,
//!   `replica-kill`, `fault-storm`, `ab-canary`, `connection-storm`)
//!   and their deterministic construction, including each scenario's
//!   seeded fault-injection plan (the `fault-storm` scenario installs
//!   one via `smgcn-faults`);
//! - [`schedule`] — the request schedule: generated single-threaded
//!   from the seed, byte-identical across runs and thread counts,
//!   fingerprinted (FNV-1a) into every report;
//! - [`slo`] — per-scenario SLO assertions: p99 latency budget, a
//!   zero-burn error budget, and the generation-consistency invariant
//!   (exact precomputed rankings, or per-connection monotonicity under
//!   live refreshes);
//! - [`engine`] — stands the topology up in-process (servers, router,
//!   online pipeline), drives the schedule from paced worker threads,
//!   fires the chaos plan, measures;
//! - [`storm`] — the connection-storm cohort: 10k+ persistent
//!   keep-alive connections plus a slow-writer sub-cohort, held open
//!   against the reactor server for the whole window;
//! - [`report`] — the machine-readable scenario report, split into a
//!   deterministic `workload` section (byte-identical per seed) and a
//!   `measured` section (wall-clock truth, varies run to run).
//!
//! Drive it via `smgcn loadgen <scenario>` (see the CLI) or
//! [`engine::run_scenario`]. CI runs the full suite in smoke mode; the
//! nightly soak workflow runs it at 2.5x the horizon.

#![warn(missing_docs)]

pub mod engine;
pub mod report;
pub mod scenario;
pub mod schedule;
pub mod slo;
pub mod storm;

pub use engine::{run, run_scenario};
pub use report::{Measured, ScenarioReport, WorkloadSummary};
pub use scenario::{
    build, scrape_interval_ms, AlertPlan, ScenarioConfig, ScenarioKind, StormSpec, Topology,
    Workload,
};
pub use schedule::{Op, Request, Schedule};
pub use slo::{GenCheck, Slo, SloVerdict};
