//! # smgcn-faults — seeded, deterministic fault injection
//!
//! The serving stack claims to tolerate torn WAL tails, corrupt publish
//! artifacts and flaky replica links; this crate is how those claims are
//! *exercised* instead of trusted. Production code is threaded with
//! named **injection sites** (`wal.append.write`, `artifact.decode`,
//! `pool.forward.net`, …) that consult a process-global [`FaultPlan`]:
//!
//! - **Zero cost when disabled.** Every site check starts with one
//!   relaxed atomic load (the same pattern as `smgcn-core`'s epoch
//!   observer); with no plan installed the branch is never taken and
//!   nothing else runs.
//! - **Seeded and replayable.** A plan is generated single-threaded from
//!   a seed, exactly like `smgcn-loadgen` schedules: the set of
//!   `(site, hit-index, action)` entries — and therefore
//!   [`FaultPlan::canonical_string`] — is byte-identical for a given
//!   seed. Which *wall-clock moment* a fault fires at depends on when
//!   traffic reaches the site, but *which hits* fault never does.
//! - **Accounted.** Every fired fault lands in an in-process log
//!   ([`injected`], [`injected_total`]) so harnesses can assert
//!   "N faults were injected and all N were tolerated".
//!
//! Five action kinds cover the failure modes the stack hardens against:
//! I/O errors, short (torn) writes, single-byte corruption, delays, and
//! connection drops. A call site matches on the [`FaultAction`] variants
//! it can simulate and ignores the rest.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use rand::{Rng, SeedableRng, StdRng};

/// Canonical injection-site names. Sites are plain strings so new ones
/// need no central registration, but the well-known ones live here so
/// plans and call sites can't drift apart on spelling.
pub mod sites {
    /// The ingest WAL's append path (frame write + flush).
    pub const WAL_APPEND_WRITE: &str = "wal.append.write";
    /// The ingest WAL's replay path (frame reads during recovery).
    pub const WAL_REPLAY_READ: &str = "wal.replay.read";
    /// Publish-artifact decoding on the receiving replica.
    pub const ARTIFACT_DECODE: &str = "artifact.decode";
    /// Router→replica query round trips (the data-plane link).
    pub const POOL_FORWARD_NET: &str = "pool.forward.net";
    /// Router→replica admin round trips (`{"op":"publish"}` etc.).
    pub const POOL_ADMIN_NET: &str = "pool.admin.net";
}

/// One concrete fault, materialized with all its parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with an injected `std::io::Error`.
    IoError,
    /// Write only the first `keep` bytes of the payload, then fail —
    /// the classic crash-mid-append torn tail.
    ShortWrite {
        /// Bytes of the attempted write that reach the medium.
        keep: u32,
    },
    /// Flip one byte: `payload[offset % len] ^= xor` (silent corruption).
    Corrupt {
        /// Byte position, taken modulo the payload length.
        offset: u32,
        /// Nonzero XOR mask applied to that byte.
        xor: u8,
    },
    /// Stall the operation for `ms` milliseconds before letting it
    /// proceed (injected network/disk latency).
    Delay {
        /// Stall duration in milliseconds.
        ms: u32,
    },
    /// Sever the connection / abandon the operation mid-flight.
    Drop,
}

impl FaultAction {
    /// The stable textual form used by [`FaultPlan::canonical_string`].
    pub fn canonical(&self) -> String {
        match self {
            FaultAction::IoError => "io-error".to_string(),
            FaultAction::ShortWrite { keep } => format!("short-write:{keep}"),
            FaultAction::Corrupt { offset, xor } => format!("corrupt:{offset}:{xor}"),
            FaultAction::Delay { ms } => format!("delay:{ms}"),
            FaultAction::Drop => "drop".to_string(),
        }
    }
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// One scheduled fault: on the `hit`-th time (0-based) traffic reaches
/// `site`, `action` fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedFault {
    /// Injection-site name (see [`sites`]).
    pub site: String,
    /// 0-based per-site hit index at which the fault fires.
    pub hit: u64,
    /// What happens on that hit.
    pub action: FaultAction,
}

/// A seeded, deterministic schedule of faults.
///
/// Built single-threaded — every [`FaultPlan::inject`] call draws from
/// the plan's own seeded generator in call order, so the same seed and
/// the same build code produce byte-identical plans
/// ([`FaultPlan::canonical_string`], [`FaultPlan::digest`]).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<PlannedFault>,
    rng: StdRng,
}

impl FaultPlan {
    /// An empty plan whose scheduling draws derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xfa17_fa17_fa17_fa17),
        }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedules `action` on exactly the `hit`-th arrival at `site`.
    pub fn push(&mut self, site: &str, hit: u64, action: FaultAction) {
        self.faults.push(PlannedFault {
            site: site.to_string(),
            hit,
            action,
        });
    }

    /// Seeded scheduling: for each hit index in `hits`, with probability
    /// `rate`, fire one action drawn uniformly from `menu`.
    pub fn inject(
        &mut self,
        site: &str,
        hits: std::ops::Range<u64>,
        rate: f64,
        menu: &[FaultAction],
    ) {
        for hit in hits {
            if !menu.is_empty() && self.rng.gen_bool(rate.clamp(0.0, 1.0)) {
                let action = menu[self.rng.gen_range(0..menu.len())];
                self.push(site, hit, action);
            }
        }
    }

    /// A deterministic draw from the plan's generator — for builders
    /// that need seeded parameters (corruption offsets, delay jitter)
    /// without carrying a second RNG.
    pub fn draw(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.rng.gen_range(range)
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The byte-reproducible plan text: one `site\thit\taction` line per
    /// scheduled fault, preceded by a seed header. Two runs with the
    /// same seed produce identical bytes — this is what "replayable
    /// failure" means operationally.
    pub fn canonical_string(&self) -> String {
        let mut out = format!("fault-plan seed={}\n", self.seed);
        for f in &self.faults {
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                f.site,
                f.hit,
                f.action.canonical()
            ));
        }
        out
    }

    /// FNV-1a fingerprint of [`FaultPlan::canonical_string`].
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.canonical_string().as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// The canonical "storm" plan: a modest seeded mix across every
    /// well-known site — io errors and torn writes on the WAL, corrupt
    /// artifact bytes, delays and drops on the replica links. Used by
    /// the fault-seeded CI smoke run ([`init_from_env`]) and as the
    /// fault-storm scenario's baseline.
    pub fn storm(seed: u64) -> Self {
        let mut plan = Self::new(seed);
        plan.inject(
            sites::WAL_APPEND_WRITE,
            0..64,
            0.15,
            &[
                FaultAction::IoError,
                FaultAction::ShortWrite { keep: 3 },
                FaultAction::ShortWrite { keep: 9 },
            ],
        );
        let offset = plan.draw(0..512) as u32;
        let xor = plan.draw(1..256) as u8;
        plan.inject(
            sites::WAL_REPLAY_READ,
            0..32,
            0.1,
            &[FaultAction::Corrupt { offset, xor }],
        );
        let offset = plan.draw(0..4096) as u32;
        let xor = plan.draw(1..256) as u8;
        plan.inject(
            sites::ARTIFACT_DECODE,
            0..16,
            0.25,
            &[FaultAction::Corrupt { offset, xor }],
        );
        plan.inject(
            sites::POOL_FORWARD_NET,
            0..512,
            0.04,
            &[
                FaultAction::Delay { ms: 2 },
                FaultAction::Delay { ms: 5 },
                FaultAction::Drop,
            ],
        );
        plan.inject(
            sites::POOL_ADMIN_NET,
            0..8,
            0.25,
            &[FaultAction::Delay { ms: 5 }],
        );
        plan
    }
}

/// One fault that actually fired at runtime.
#[derive(Clone, Debug)]
pub struct InjectedFault {
    /// Global 0-based firing order.
    pub seq: u64,
    /// The site it fired at.
    pub site: String,
    /// The per-site hit index it fired on.
    pub hit: u64,
    /// The action that fired.
    pub action: FaultAction,
}

struct SiteState {
    hits: u64,
    planned: BTreeMap<u64, FaultAction>,
}

struct ActivePlan {
    sites: HashMap<String, SiteState>,
    injected: Vec<InjectedFault>,
}

// The fast path is one relaxed load of ENABLED; ACTIVE is only locked
// once a plan is installed (test harnesses and chaos runs), never on the
// production no-plan path.
static ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE: Mutex<Option<ActivePlan>> = Mutex::new(None);
static TEST_GUARD: Mutex<()> = Mutex::new(());

/// Installs `plan` process-globally, replacing any previous plan and
/// resetting all hit counters and the injected-fault log.
pub fn install(plan: &FaultPlan) {
    let mut sites: HashMap<String, SiteState> = HashMap::new();
    for f in plan.faults() {
        sites
            .entry(f.site.clone())
            .or_insert_with(|| SiteState {
                hits: 0,
                planned: BTreeMap::new(),
            })
            .planned
            .insert(f.hit, f.action);
    }
    let mut guard = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
    *guard = Some(ActivePlan {
        sites,
        injected: Vec::new(),
    });
    ENABLED.store(true, Ordering::Release);
}

/// Uninstalls the active plan; every site check returns to the
/// single-atomic-load no-op path.
pub fn clear() {
    ENABLED.store(false, Ordering::Release);
    let mut guard = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
    *guard = None;
}

/// Whether a plan is currently installed (one relaxed atomic load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The site check: counts this arrival at `site` and returns the
/// planned action for this hit, if any.
///
/// Disabled path: one relaxed atomic load, no lock, always `None`.
#[inline]
pub fn at(site: &str) -> Option<FaultAction> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    at_slow(site)
}

fn at_slow(site: &str) -> Option<FaultAction> {
    let mut guard = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
    let plan = guard.as_mut()?;
    let state = plan.sites.get_mut(site)?;
    let hit = state.hits;
    state.hits += 1;
    let action = state.planned.get(&hit).copied()?;
    let seq = plan.injected.len() as u64;
    plan.injected.push(InjectedFault {
        seq,
        site: site.to_string(),
        hit,
        action,
    });
    Some(action)
}

/// The `std::io::Error` an injected [`FaultAction::IoError`] or torn
/// [`FaultAction::ShortWrite`] surfaces as.
pub fn injected_io_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {site}"))
}

/// Convenience for pure-I/O sites: sleeps on `Delay`, errors on
/// `IoError`, ignores actions the caller can't simulate.
pub fn fail_io(site: &str) -> std::io::Result<()> {
    match at(site) {
        Some(FaultAction::IoError) => Err(injected_io_error(site)),
        Some(FaultAction::Delay { ms }) => {
            std::thread::sleep(std::time::Duration::from_millis(u64::from(ms)));
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Convenience for buffer sites: applies a planned `Corrupt` to `bytes`
/// in place, returning `true` if a byte was flipped.
pub fn corrupt_buf(site: &str, bytes: &mut [u8]) -> bool {
    if let Some(FaultAction::Corrupt { offset, xor }) = at(site) {
        if !bytes.is_empty() && xor != 0 {
            let i = offset as usize % bytes.len();
            bytes[i] ^= xor;
            return true;
        }
    }
    false
}

/// Faults fired so far under the active plan (empty when disabled).
pub fn injected() -> Vec<InjectedFault> {
    let guard = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
    guard.as_ref().map_or_else(Vec::new, |p| p.injected.clone())
}

/// Count of faults fired so far under the active plan.
pub fn injected_total() -> u64 {
    let guard = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
    guard.as_ref().map_or(0, |p| p.injected.len() as u64)
}

/// Runs `f` with `plan` installed, serializing against every other
/// [`with_plan`] caller in the process (the plan is a process-global —
/// concurrent tests would otherwise consume each other's hit counters).
/// The plan is cleared afterwards even if `f` panics.
pub fn with_plan<T>(plan: &FaultPlan, f: impl FnOnce() -> T) -> T {
    let _guard = TEST_GUARD.lock().unwrap_or_else(|p| p.into_inner());
    install(plan);
    let out = catch_unwind(AssertUnwindSafe(f));
    clear();
    match out {
        Ok(v) => v,
        Err(payload) => resume_unwind(payload),
    }
}

/// CI hook: installs [`FaultPlan::storm`] when `SMGCN_FAULT_SEED` is set
/// to a nonzero integer and no plan is active yet. Robustness test
/// binaries call this first so the fault-seeded smoke job exercises
/// every injection site without changing the tests' invariants.
/// Returns the seed when a plan was installed.
pub fn init_from_env() -> Option<u64> {
    if enabled() {
        return None;
    }
    let seed: u64 = std::env::var("SMGCN_FAULT_SEED").ok()?.parse().ok()?;
    if seed == 0 {
        return None;
    }
    install(&FaultPlan::storm(seed));
    Some(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_is_inert() {
        clear();
        assert!(!enabled());
        assert_eq!(at("wal.append.write"), None);
        assert!(fail_io("wal.append.write").is_ok());
        let mut buf = [1u8, 2, 3];
        assert!(!corrupt_buf("artifact.decode", &mut buf));
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(injected_total(), 0);
    }

    #[test]
    fn same_seed_reproduces_the_plan_byte_for_byte() {
        let a = FaultPlan::storm(42);
        let b = FaultPlan::storm(42);
        assert_eq!(a.canonical_string(), b.canonical_string());
        assert_eq!(a.digest(), b.digest());
        assert!(!a.is_empty(), "a storm plan must schedule something");
        let c = FaultPlan::storm(43);
        assert_ne!(
            a.canonical_string(),
            c.canonical_string(),
            "different seeds must differ"
        );
    }

    #[test]
    fn hits_fire_in_planned_order_and_are_logged() {
        let mut plan = FaultPlan::new(7);
        plan.push("x.y", 1, FaultAction::IoError);
        plan.push("x.y", 3, FaultAction::Delay { ms: 0 });
        with_plan(&plan, || {
            assert_eq!(at("x.y"), None, "hit 0 is clean");
            assert_eq!(at("x.y"), Some(FaultAction::IoError), "hit 1 faults");
            assert_eq!(at("x.y"), None, "hit 2 is clean");
            assert_eq!(at("x.y"), Some(FaultAction::Delay { ms: 0 }));
            assert_eq!(at("unplanned.site"), None);
            let log = injected();
            assert_eq!(log.len(), 2);
            assert_eq!(log[0].hit, 1);
            assert_eq!(log[1].hit, 3);
            assert_eq!(injected_total(), 2);
        });
        assert!(!enabled(), "with_plan must clear on exit");
    }

    #[test]
    fn corrupt_buf_flips_exactly_one_byte() {
        let mut plan = FaultPlan::new(1);
        plan.push(
            "buf",
            0,
            FaultAction::Corrupt {
                offset: 10,
                xor: 0xff,
            },
        );
        with_plan(&plan, || {
            let mut bytes = vec![0u8; 4];
            assert!(corrupt_buf("buf", &mut bytes));
            // offset 10 % len 4 == 2
            assert_eq!(bytes, vec![0, 0, 0xff, 0]);
        });
    }

    #[test]
    fn inject_respects_rate_bounds() {
        let mut all = FaultPlan::new(5);
        all.inject("s", 0..10, 1.0, &[FaultAction::Drop]);
        assert_eq!(all.len(), 10);
        let mut none = FaultPlan::new(5);
        none.inject("s", 0..10, 0.0, &[FaultAction::Drop]);
        assert!(none.is_empty());
    }
}
