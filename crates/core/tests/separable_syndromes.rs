//! Semantic end-to-end test: on a corpus with two cleanly separated
//! "syndromes" (disjoint symptom and herb blocks), a trained SMGCN must
//! rank within-block herbs above cross-block herbs — the minimal version of
//! the paper's claim that syndrome induction routes symptom sets to the
//! right herb sets.

use smgcn_core::prelude::*;
use smgcn_data::{Corpus, Prescription, Vocabulary};
use smgcn_graph::{GraphOperators, SynergyThresholds};

/// Block A: symptoms 0-3 treat with herbs 0-4; block B: symptoms 4-7 with
/// herbs 5-9. Mild within-block variation so the model sees sets, not one
/// fixed prescription.
fn separable_corpus() -> Corpus {
    let mut prescriptions = Vec::new();
    let block_a: [(&[u32], &[u32]); 3] = [
        (&[0, 1], &[0, 1, 2]),
        (&[1, 2, 3], &[1, 2, 3]),
        (&[0, 2], &[0, 3, 4]),
    ];
    let block_b: [(&[u32], &[u32]); 3] = [
        (&[4, 5], &[5, 6, 7]),
        (&[5, 6, 7], &[6, 7, 8]),
        (&[4, 6], &[5, 8, 9]),
    ];
    for _ in 0..40 {
        for (s, h) in block_a.iter().chain(block_b.iter()) {
            prescriptions.push(Prescription::new(s.to_vec(), h.to_vec()));
        }
    }
    Corpus::new(
        Vocabulary::from_names((0..8).map(|i| format!("s{i}"))),
        Vocabulary::from_names((0..10).map(|i| format!("h{i}"))),
        prescriptions,
    )
}

fn trained_model() -> (Corpus, Recommender) {
    let corpus = separable_corpus();
    let ops = GraphOperators::from_records(
        corpus.records(),
        corpus.n_symptoms(),
        corpus.n_herbs(),
        SynergyThresholds { x_s: 2, x_h: 2 },
    );
    let model_cfg = ModelConfig {
        embedding_dim: 12,
        layer_dims: vec![12, 16],
        dropout: 0.0,
        use_sge: true,
        use_si_mlp: true,
    };
    let mut model = Recommender::smgcn(&ops, &model_cfg, 1);
    let train_cfg = TrainConfig {
        epochs: 30,
        batch_size: 48,
        learning_rate: 5e-3,
        l2_lambda: 1e-4,
        ..TrainConfig::smgcn()
    };
    let history = train(&mut model, &corpus, &train_cfg);
    assert!(history.improved(), "training must reduce the loss");
    (corpus, model)
}

#[test]
fn block_a_symptoms_surface_block_a_herbs() {
    let (_, model) = trained_model();
    let scores = model.predict(&[&[0, 1, 2]]);
    let row = scores.row(0);
    let min_block_a = row[..5].iter().cloned().fold(f32::INFINITY, f32::min);
    let max_block_b = row[5..].iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    assert!(
        min_block_a > max_block_b,
        "every block-A herb ({min_block_a}) must outrank every block-B herb ({max_block_b})"
    );
}

#[test]
fn block_b_symptoms_surface_block_b_herbs() {
    let (_, model) = trained_model();
    let top = model.recommend(&[4, 5, 6], 5);
    for h in &top {
        assert!(
            *h >= 5,
            "block-B query must only surface herbs 5-9, got {top:?}"
        );
    }
}

#[test]
fn unseen_set_composition_generalises() {
    // {0, 3} never co-occurs as a full symptom set in training; the model
    // must still route it to block A through the shared embeddings.
    let (_, model) = trained_model();
    let top = model.recommend(&[0, 3], 3);
    for h in &top {
        assert!(
            *h < 5,
            "unseen block-A composition must stay in block A, got {top:?}"
        );
    }
}

#[test]
fn all_models_separate_blocks() {
    let corpus = separable_corpus();
    let ops = GraphOperators::from_records(
        corpus.records(),
        corpus.n_symptoms(),
        corpus.n_herbs(),
        SynergyThresholds { x_s: 2, x_h: 2 },
    );
    let model_cfg = ModelConfig {
        embedding_dim: 12,
        layer_dims: vec![12, 16],
        dropout: 0.0,
        use_sge: true,
        use_si_mlp: true,
    };
    let train_cfg = TrainConfig {
        epochs: 30,
        batch_size: 48,
        learning_rate: 5e-3,
        l2_lambda: 1e-4,
        ..TrainConfig::smgcn()
    };
    for kind in [ModelKind::PinSage, ModelKind::HeteGcn, ModelKind::Ngcf] {
        let mut model = build_model(kind, &ops, &model_cfg, 2);
        train(&mut model, &corpus, &train_cfg);
        let top = model.recommend(&[0, 1], 3);
        let in_block = top.iter().filter(|&&h| h < 5).count();
        assert!(
            in_block >= 2,
            "{kind:?}: at least 2 of the top-3 must be block-A herbs, got {top:?}"
        );
    }
}
