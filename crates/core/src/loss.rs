//! Loss assembly on the tape.
//!
//! The multi-label path realises Eqs. 13–15: weighted MSE between the
//! predicted score vector and the multi-hot ground-truth herb set, with
//! per-herb imbalance weights. The BPR path is the Table VIII comparison
//! objective. The L2 term of Eq. 13 is handled by the optimizer as weight
//! decay `2λ_Θ` (see `smgcn_tensor::optim`), keeping the tape free of a
//! per-parameter regularisation fan-in.

use std::sync::Arc;

use rand::rngs::StdRng;
use smgcn_tensor::{Tape, Var};

use crate::batch::{sample_bpr_pairs, Batch};
use crate::config::LossKind;

/// Attaches the configured training objective to `scores` (`B x H`) and
/// returns the scalar loss node.
#[allow(clippy::too_many_arguments)] // mirrors the objective's actual arity
pub fn attach_loss(
    tape: &mut Tape<'_>,
    scores: Var,
    batch: &Batch,
    kind: LossKind,
    herb_weights: &Arc<Vec<f32>>,
    n_herbs: usize,
    bpr_negatives: usize,
    rng: &mut StdRng,
) -> Var {
    match kind {
        LossKind::MultiLabel => {
            let target = Arc::new(batch.targets.clone());
            tape.weighted_mse(scores, target, herb_weights.clone())
        }
        LossKind::Bpr => {
            let pairs = sample_bpr_pairs(&batch.herb_sets, n_herbs, bpr_negatives, rng);
            tape.bpr_loss(scores, Arc::new(pairs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::make_batch;
    use rand::SeedableRng;
    use smgcn_data::Prescription;
    use smgcn_tensor::{Matrix, ParamStore};

    fn batch() -> Batch {
        let p1 = Prescription::new(vec![0, 1], vec![0, 2]);
        let p2 = Prescription::new(vec![2], vec![1]);
        make_batch(&[&p1, &p2], 3, 4)
    }

    #[test]
    fn multilabel_prefers_correct_predictions() {
        let b = batch();
        let weights = Arc::new(vec![1.0f32; 4]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut loss_of = |pred: Matrix| -> f32 {
            let mut store = ParamStore::new();
            let id = store.add("p", pred);
            let mut tape = Tape::new(&store);
            let v = tape.param(id);
            let loss = attach_loss(
                &mut tape,
                v,
                &b,
                LossKind::MultiLabel,
                &weights,
                4,
                1,
                &mut rng,
            );
            tape.value(loss).get(0, 0)
        };
        let perfect = loss_of(b.targets.clone());
        let wrong = loss_of(b.targets.map(|v| 1.0 - v));
        assert!(perfect < 1e-9);
        assert!(wrong > perfect);
    }

    #[test]
    fn bpr_prefers_ranked_positives() {
        let b = batch();
        let weights = Arc::new(vec![1.0f32; 4]);
        let mut rng = StdRng::seed_from_u64(2);
        let loss_of = |pred: Matrix, rng: &mut StdRng| -> f32 {
            let mut store = ParamStore::new();
            let id = store.add("p", pred);
            let mut tape = Tape::new(&store);
            let v = tape.param(id);
            let loss = attach_loss(&mut tape, v, &b, LossKind::Bpr, &weights, 4, 2, rng);
            tape.value(loss).get(0, 0)
        };
        // Positives scored high ⇒ small loss; inverted ⇒ large loss.
        let good = loss_of(b.targets.scale(5.0), &mut rng);
        let bad = loss_of(b.targets.map(|v| (1.0 - v) * 5.0), &mut rng);
        assert!(good < bad, "good {good} vs bad {bad}");
    }
}
