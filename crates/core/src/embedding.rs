//! The embedding-layer abstraction every model implements.
//!
//! The paper's framework (Fig. 2) separates a *multi-graph embedding layer*
//! — anything that produces symptom and herb embeddings — from the shared
//! *syndrome-aware prediction layer*. Table IV's comparison aligns all GNN
//! baselines under exactly this split ("we modify GC-MC, PinSage and NGCF
//! by adding the SI part and employing multi-label loss"), so the trait
//! boundary here is the paper's own experimental protocol.

use rand::rngs::StdRng;
use smgcn_tensor::{Tape, Var};

/// Per-forward-pass context: training mode and the RNG driving message
/// dropout and any sampling.
pub struct ForwardCtx<'r> {
    /// True during optimisation; enables message dropout.
    pub training: bool,
    /// Message-dropout rate applied to aggregated neighborhood embeddings.
    pub dropout: f32,
    /// RNG for dropout masks.
    pub rng: &'r mut StdRng,
}

impl<'r> ForwardCtx<'r> {
    /// An inference context (no dropout regardless of rate).
    pub fn inference(rng: &'r mut StdRng) -> Self {
        Self {
            training: false,
            dropout: 0.0,
            rng,
        }
    }

    /// A training context with the given message-dropout rate.
    pub fn training(dropout: f32, rng: &'r mut StdRng) -> Self {
        Self {
            training: true,
            dropout,
            rng,
        }
    }

    /// Applies message dropout to a node if in training mode.
    pub fn apply_dropout(&mut self, tape: &mut Tape<'_>, x: Var) -> Var {
        if self.training && self.dropout > 0.0 {
            tape.dropout(x, self.dropout, self.rng)
        } else {
            x
        }
    }
}

/// A model's embedding layer: computes symptom and herb embeddings on a
/// tape whose [`smgcn_tensor::ParamStore`] registered this layer's
/// parameters.
pub trait EmbeddingLayer {
    /// Display name used in reports (Table IV row labels).
    fn name(&self) -> &'static str;

    /// Dimension of the produced embeddings.
    fn output_dim(&self) -> usize;

    /// Computes `(symptom_embeddings [S x d], herb_embeddings [H x d])`.
    fn embed(&self, tape: &mut Tape<'_>, ctx: &mut ForwardCtx<'_>) -> (Var, Var);
}

#[cfg(test)]
mod tests {
    use super::*;
    use smgcn_tensor::prelude::*;

    #[test]
    fn inference_ctx_never_drops() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Matrix::filled(4, 4, 1.0));
        let mut rng = seeded_rng(1);
        let mut ctx = ForwardCtx::inference(&mut rng);
        let y = ctx.apply_dropout(&mut tape, x);
        assert_eq!(y, x, "inference must not insert dropout nodes");
    }

    #[test]
    fn training_ctx_drops_when_rate_positive() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Matrix::filled(16, 16, 1.0));
        let mut rng = seeded_rng(1);
        let mut ctx = ForwardCtx::training(0.5, &mut rng);
        let y = ctx.apply_dropout(&mut tape, x);
        assert_ne!(y, x);
        let zeros = tape
            .value(y)
            .as_slice()
            .iter()
            .filter(|&&v| v == 0.0)
            .count();
        assert!(zeros > 0, "dropout should zero some entries");
    }

    #[test]
    fn training_ctx_with_zero_rate_is_identity() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Matrix::filled(4, 4, 1.0));
        let mut rng = seeded_rng(1);
        let mut ctx = ForwardCtx::training(0.0, &mut rng);
        assert_eq!(ctx.apply_dropout(&mut tape, x), x);
    }
}
