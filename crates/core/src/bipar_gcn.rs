//! Bipartite Graph Convolution Network (§IV-A).
//!
//! Bipar-GCN propagates over the symptom–herb graph with **type-specific**
//! weights: symptom-oriented propagation uses `T_s^k` / `W_s^k`, and
//! herb-oriented propagation uses `T_h^k` / `W_h^k`. Per layer `k`:
//!
//! - message merge (Eqs. 2/3/7/9): `b_N^{k-1} = tanh(mean_{n∈N} b_n^{k-1} · T^k)`
//!   realised as `spmm(row_normalised_adjacency, b^{k-1} T^k)` then `tanh`;
//! - aggregation (Eqs. 4/5/6/8, the GraphSAGE concat aggregator):
//!   `b^k = tanh(W^k · (b^{k-1} || b_N^{k-1}))`.
//!
//! Message dropout, when enabled, hits the aggregated neighborhood
//! embeddings (§V-E-3: "we only employ message dropout on the aggregated
//! neighborhood embeddings").

use rand::rngs::StdRng;
use rand::SeedableRng;
use smgcn_graph::GraphOperators;
use smgcn_tensor::init::xavier_uniform;
use smgcn_tensor::{ParamId, ParamStore, SharedCsr, Tape, Var};

use crate::config::ModelConfig;
use crate::embedding::{EmbeddingLayer, ForwardCtx};

/// One propagation layer's type-specific parameters.
#[derive(Clone, Copy, Debug)]
struct BiparLayer {
    /// `T_s^k`: transforms herb embeddings into symptom-bound messages.
    t_s: ParamId,
    /// `T_h^k`: transforms symptom embeddings into herb-bound messages.
    t_h: ParamId,
    /// `W_s^k`: symptom aggregation over `(b_s || b_Ns)`.
    w_s: ParamId,
    /// `W_h^k`: herb aggregation over `(b_h || b_Nh)`.
    w_h: ParamId,
}

/// The Bipar-GCN embedding layer.
pub struct BiparGcn {
    /// Initial symptom embeddings `e_s` (`S x d_0`).
    e_s: ParamId,
    /// Initial herb embeddings `e_h` (`H x d_0`).
    e_h: ParamId,
    layers: Vec<BiparLayer>,
    sh_mean: SharedCsr,
    hs_mean: SharedCsr,
    output_dim: usize,
}

impl BiparGcn {
    /// Registers all Bipar-GCN parameters in `store` and captures the
    /// bipartite operators.
    pub fn init(
        store: &mut ParamStore,
        ops: &GraphOperators,
        config: &ModelConfig,
        rng: &mut StdRng,
    ) -> Self {
        config.assert_valid();
        let d0 = config.embedding_dim;
        let e_s = store.add("bipar.e_s", xavier_uniform(ops.n_symptoms, d0, rng));
        let e_h = store.add("bipar.e_h", xavier_uniform(ops.n_herbs, d0, rng));
        let mut layers = Vec::with_capacity(config.layer_dims.len());
        let mut in_dim = d0;
        for (k, &out_dim) in config.layer_dims.iter().enumerate() {
            layers.push(BiparLayer {
                t_s: store.add(
                    format!("bipar.t_s.{k}"),
                    xavier_uniform(in_dim, in_dim, rng),
                ),
                t_h: store.add(
                    format!("bipar.t_h.{k}"),
                    xavier_uniform(in_dim, in_dim, rng),
                ),
                w_s: store.add(
                    format!("bipar.w_s.{k}"),
                    xavier_uniform(2 * in_dim, out_dim, rng),
                ),
                w_h: store.add(
                    format!("bipar.w_h.{k}"),
                    xavier_uniform(2 * in_dim, out_dim, rng),
                ),
            });
            in_dim = out_dim;
        }
        Self {
            e_s,
            e_h,
            layers,
            sh_mean: ops.sh_mean.clone(),
            hs_mean: ops.hs_mean.clone(),
            output_dim: config.final_dim(),
        }
    }

    /// Handle to the initial symptom embedding table (shared with SGE).
    pub fn initial_symptom_embeddings(&self) -> ParamId {
        self.e_s
    }

    /// Handle to the initial herb embedding table (shared with SGE).
    pub fn initial_herb_embeddings(&self) -> ParamId {
        self.e_h
    }

    /// Number of propagation layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl EmbeddingLayer for BiparGcn {
    fn name(&self) -> &'static str {
        "Bipar-GCN"
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn embed(&self, tape: &mut Tape<'_>, ctx: &mut ForwardCtx<'_>) -> (Var, Var) {
        let mut b_s = tape.param(self.e_s);
        let mut b_h = tape.param(self.e_h);
        for layer in &self.layers {
            // Symptom-oriented: herb messages through T_s^k, mean-merged.
            let t_s = tape.param(layer.t_s);
            let herb_msgs = tape.matmul(b_h, t_s);
            let merged_s = tape.spmm(&self.sh_mean, herb_msgs);
            let merged_s = tape.tanh(merged_s);
            let merged_s = ctx.apply_dropout(tape, merged_s);
            // Herb-oriented: symptom messages through T_h^k, mean-merged.
            let t_h = tape.param(layer.t_h);
            let sym_msgs = tape.matmul(b_s, t_h);
            let merged_h = tape.spmm(&self.hs_mean, sym_msgs);
            let merged_h = tape.tanh(merged_h);
            let merged_h = ctx.apply_dropout(tape, merged_h);
            // GraphSAGE concat aggregation with type-specific W.
            let cat_s = tape.concat_cols(b_s, merged_s);
            let w_s = tape.param(layer.w_s);
            let lin_s = tape.matmul(cat_s, w_s);
            b_s = tape.tanh(lin_s);
            let cat_h = tape.concat_cols(b_h, merged_h);
            let w_h = tape.param(layer.w_h);
            let lin_h = tape.matmul(cat_h, w_h);
            b_h = tape.tanh(lin_h);
        }
        (b_s, b_h)
    }
}

/// Convenience: a deterministic RNG for model construction in tests.
pub fn construction_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smgcn_graph::SynergyThresholds;
    use smgcn_tensor::Matrix;

    fn toy_ops() -> GraphOperators {
        let records: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![0, 1], vec![0, 1]),
            (vec![1, 2], vec![1, 2]),
            (vec![0, 2], vec![0, 3]),
        ];
        GraphOperators::from_records(
            records.iter().map(|(s, h)| (s.as_slice(), h.as_slice())),
            3,
            4,
            SynergyThresholds { x_s: 0, x_h: 0 },
        )
    }

    fn config() -> ModelConfig {
        ModelConfig {
            embedding_dim: 8,
            layer_dims: vec![12, 16],
            dropout: 0.0,
            use_sge: false,
            use_si_mlp: false,
        }
    }

    #[test]
    fn shapes_follow_layer_dims() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = BiparGcn::init(&mut store, &ops, &config(), &mut construction_rng(1));
        assert_eq!(model.depth(), 2);
        assert_eq!(model.output_dim(), 16);
        let mut tape = Tape::new(&store);
        let mut rng = construction_rng(2);
        let mut ctx = ForwardCtx::inference(&mut rng);
        let (s, h) = model.embed(&mut tape, &mut ctx);
        assert_eq!(tape.value(s).shape(), (3, 16));
        assert_eq!(tape.value(h).shape(), (4, 16));
        assert!(tape.value(s).all_finite());
    }

    #[test]
    fn parameter_count_matches_formula() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let cfg = config();
        let _ = BiparGcn::init(&mut store, &ops, &cfg, &mut construction_rng(1));
        // e_s + e_h + per layer (t_s, t_h, w_s, w_h).
        assert_eq!(store.len(), 2 + 4 * cfg.layer_dims.len());
        let expected: usize = 3 * 8
            + 4 * 8
            + (8 * 8 + 8 * 8 + 16 * 12 + 16 * 12)
            + (12 * 12 + 12 * 12 + 24 * 16 + 24 * 16);
        assert_eq!(store.scalar_count(), expected);
    }

    #[test]
    fn forward_is_deterministic_in_inference() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = BiparGcn::init(&mut store, &ops, &config(), &mut construction_rng(1));
        let run = || -> Matrix {
            let mut tape = Tape::new(&store);
            let mut rng = construction_rng(9);
            let mut ctx = ForwardCtx::inference(&mut rng);
            let (s, _) = model.embed(&mut tape, &mut ctx);
            tape.value(s).clone()
        };
        assert!(run().approx_eq(&run(), 0.0));
    }

    #[test]
    fn dropout_changes_training_forward() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = BiparGcn::init(&mut store, &ops, &config(), &mut construction_rng(1));
        let mut tape1 = Tape::new(&store);
        let mut rng1 = construction_rng(5);
        let mut ctx1 = ForwardCtx::training(0.5, &mut rng1);
        let (s1, _) = model.embed(&mut tape1, &mut ctx1);
        let mut tape2 = Tape::new(&store);
        let mut rng2 = construction_rng(6);
        let mut ctx2 = ForwardCtx::training(0.5, &mut rng2);
        let (s2, _) = model.embed(&mut tape2, &mut ctx2);
        assert!(!tape1.value(s1).approx_eq(tape2.value(s2), 1e-9));
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = BiparGcn::init(&mut store, &ops, &config(), &mut construction_rng(1));
        let mut tape = Tape::new(&store);
        let mut rng = construction_rng(3);
        let mut ctx = ForwardCtx::inference(&mut rng);
        let (s, h) = model.embed(&mut tape, &mut ctx);
        let h3 = tape_transpose_hack(&mut tape, h);
        let cat = tape.concat_cols(s, h3);
        let loss = tape.sum_squares(cat);
        let grads = tape.backward(loss);
        assert_eq!(
            grads.present_count(),
            store.len(),
            "every parameter must receive gradient"
        );
    }

    /// Helper: makes herb embeddings row-compatible with symptom embeddings
    /// for a single scalar loss (3 symptom rows vs 4 herb rows).
    fn tape_transpose_hack(tape: &mut Tape<'_>, h: Var) -> Var {
        // Reduce herbs to a 3-row view by gathering three rows.
        tape.gather_rows(h, std::sync::Arc::new(vec![0, 1, 2]))
    }
}
