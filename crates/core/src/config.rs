//! Model and training configuration.
//!
//! Defaults reproduce Table III's optimal settings for SMGCN: embedding
//! size 64, first GCN layer 128, last layer 256 (2 layers), `lr = 2e-4`,
//! `λ_Θ = 7e-3`, dropout 0, thresholds `x_s = 5`, `x_h = 40`, batch 1024,
//! Xavier + Adam.

use serde::{Deserialize, Serialize};

/// Which training objective to use (Table VIII compares the two).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// The paper's weighted multi-label MSE (Eqs. 13–15).
    MultiLabel,
    /// Pair-wise Bayesian Personalised Ranking.
    Bpr,
}

/// Architecture hyperparameters shared by SMGCN and its ablations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Initial embedding size `d_0` (the paper fixes 64).
    pub embedding_dim: usize,
    /// Output dimension of each Bipar-GCN layer; `len()` is the GCN depth.
    /// Paper optimum: `[128, 256]`.
    pub layer_dims: Vec<usize>,
    /// Message dropout rate on aggregated neighborhood embeddings.
    pub dropout: f32,
    /// Include the Synergy Graph Encoding component (`SS`/`HH` GCNs).
    pub use_sge: bool,
    /// Apply the syndrome-induction MLP after mean pooling. When false the
    /// model reduces to the "Bipar-GCN" ablation row (average pooling only).
    pub use_si_mlp: bool,
}

impl ModelConfig {
    /// Table III's optimal SMGCN configuration.
    pub fn smgcn() -> Self {
        Self {
            embedding_dim: 64,
            layer_dims: vec![128, 256],
            dropout: 0.0,
            use_sge: true,
            use_si_mlp: true,
        }
    }

    /// The "Bipar-GCN" ablation (no SGE, mean-only syndrome induction).
    pub fn bipar_gcn() -> Self {
        Self {
            use_sge: false,
            use_si_mlp: false,
            ..Self::smgcn()
        }
    }

    /// The "Bipar-GCN w/ SGE" ablation.
    pub fn bipar_gcn_with_sge() -> Self {
        Self {
            use_sge: true,
            use_si_mlp: false,
            ..Self::smgcn()
        }
    }

    /// The "Bipar-GCN w/ SI" ablation.
    pub fn bipar_gcn_with_si() -> Self {
        Self {
            use_sge: false,
            use_si_mlp: true,
            ..Self::smgcn()
        }
    }

    /// Layer dimensions for a given depth and final dimension, following
    /// the paper's scheme (first output layer 128, last layer `last_dim`,
    /// any middle layers 128). Used by the Table VI/VII sweeps.
    pub fn layer_dims_for(depth: usize, last_dim: usize) -> Vec<usize> {
        assert!(depth >= 1, "GCN depth must be at least 1");
        match depth {
            1 => vec![last_dim],
            d => {
                let mut dims = vec![128; d - 1];
                dims.push(last_dim);
                dims
            }
        }
    }

    /// The GCN depth.
    pub fn depth(&self) -> usize {
        self.layer_dims.len()
    }

    /// The output (final) embedding dimension.
    pub fn final_dim(&self) -> usize {
        *self.layer_dims.last().expect("at least one layer")
    }

    /// Scales dimensions down for fast smoke experiments while keeping the
    /// architecture shape.
    pub fn smoke(mut self) -> Self {
        self.embedding_dim = 32;
        self.layer_dims = self.layer_dims.iter().map(|&d| (d / 4).max(16)).collect();
        self
    }

    fn validate(&self) {
        assert!(self.embedding_dim > 0, "embedding_dim must be positive");
        assert!(!self.layer_dims.is_empty(), "need at least one GCN layer");
        assert!(
            (0.0..1.0).contains(&self.dropout),
            "dropout must be in [0, 1)"
        );
    }

    /// Panics if the configuration is inconsistent.
    pub fn assert_valid(&self) {
        self.validate();
    }
}

/// Optimisation hyperparameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training prescriptions.
    pub epochs: usize,
    /// Mini-batch size (paper: 1024).
    pub batch_size: usize,
    /// Adam learning rate (paper SMGCN optimum: 2e-4).
    pub learning_rate: f32,
    /// L2 coefficient `λ_Θ` of Eq. 13 (paper SMGCN optimum: 7e-3).
    pub l2_lambda: f32,
    /// Objective (Table VIII).
    pub loss: LossKind,
    /// Negative samples per positive herb for BPR.
    pub bpr_negatives: usize,
    /// Apply Eq. 15's inverse-frequency label weights. Disabling this is
    /// the loss-weighting ablation (all herbs weighted equally).
    pub weighted_labels: bool,
    /// RNG seed for shuffling, dropout and negative sampling.
    pub seed: u64,
}

impl TrainConfig {
    /// Table III's optimal SMGCN training setup (epochs chosen for the
    /// reproduction corpus; the paper does not report its epoch budget).
    pub fn smgcn() -> Self {
        Self {
            epochs: 30,
            batch_size: 1024,
            learning_rate: 2e-4,
            l2_lambda: 7e-3,
            loss: LossKind::MultiLabel,
            bpr_negatives: 1,
            weighted_labels: true,
            seed: 42,
        }
    }

    /// A fast configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        Self {
            epochs: 8,
            batch_size: 256,
            learning_rate: 1e-3,
            ..Self::smgcn()
        }
    }

    /// Override the learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Override the L2 strength.
    pub fn with_l2(mut self, lambda: f32) -> Self {
        self.l2_lambda = lambda;
        self
    }

    /// Override the loss kind.
    pub fn with_loss(mut self, loss: LossKind) -> Self {
        self.loss = loss;
        self
    }

    /// Override the epoch budget.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smgcn_defaults_match_table_iii() {
        let m = ModelConfig::smgcn();
        assert_eq!(m.embedding_dim, 64);
        assert_eq!(m.layer_dims, vec![128, 256]);
        assert_eq!(m.depth(), 2);
        assert_eq!(m.final_dim(), 256);
        assert!(m.use_sge && m.use_si_mlp);
        let t = TrainConfig::smgcn();
        assert!((t.learning_rate - 2e-4).abs() < 1e-9);
        assert!((t.l2_lambda - 7e-3).abs() < 1e-9);
        assert_eq!(t.batch_size, 1024);
    }

    #[test]
    fn ablation_configs_toggle_components() {
        assert!(!ModelConfig::bipar_gcn().use_sge);
        assert!(!ModelConfig::bipar_gcn().use_si_mlp);
        assert!(ModelConfig::bipar_gcn_with_sge().use_sge);
        assert!(!ModelConfig::bipar_gcn_with_sge().use_si_mlp);
        assert!(!ModelConfig::bipar_gcn_with_si().use_sge);
        assert!(ModelConfig::bipar_gcn_with_si().use_si_mlp);
    }

    #[test]
    fn layer_dims_scheme() {
        assert_eq!(ModelConfig::layer_dims_for(1, 256), vec![256]);
        assert_eq!(ModelConfig::layer_dims_for(2, 256), vec![128, 256]);
        assert_eq!(ModelConfig::layer_dims_for(3, 512), vec![128, 128, 512]);
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn zero_depth_rejected() {
        let _ = ModelConfig::layer_dims_for(0, 64);
    }

    #[test]
    fn smoke_shrinks_dims() {
        let m = ModelConfig::smgcn().smoke();
        assert_eq!(m.embedding_dim, 32);
        assert_eq!(m.layer_dims, vec![32, 64]);
        m.assert_valid();
    }
}
