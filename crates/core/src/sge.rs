//! Synergy Graph Encoding (§IV-B).
//!
//! A one-layer GCN with **sum** aggregation over the thresholded synergy
//! graphs (Eq. 10):
//!
//! ```text
//! r_s = tanh( Σ_{k ∈ N_s^SS} e_k · V_s )
//! r_h = tanh( Σ_{q ∈ N_h^HH} e_q · V_h )
//! ```
//!
//! The paper chooses the sum (not mean) aggregator deliberately: the
//! synergy graphs are much sparser than the bipartite graph, and summing
//! keeps the two fused signals on comparable scales (§IV-B-2). Inputs are
//! the *initial* embedding tables `e`, shared with Bipar-GCN.

use rand::rngs::StdRng;
use smgcn_graph::GraphOperators;
use smgcn_tensor::init::xavier_uniform;
use smgcn_tensor::{ParamId, ParamStore, SharedCsr, Tape, Var};

/// The SGE component: synergy operators plus `V_s` / `V_h`.
pub struct SynergyGraphEncoding {
    /// Initial symptom embeddings (shared with Bipar-GCN).
    e_s: ParamId,
    /// Initial herb embeddings (shared with Bipar-GCN).
    e_h: ParamId,
    /// `V_s`: `d_0 x d_out`.
    v_s: ParamId,
    /// `V_h`: `d_0 x d_out`.
    v_h: ParamId,
    ss_sum: SharedCsr,
    hh_sum: SharedCsr,
    output_dim: usize,
}

impl SynergyGraphEncoding {
    /// Registers `V_s`/`V_h` and captures the synergy operators. The
    /// embedding tables are shared with the Bipar-GCN component, so their
    /// ids are taken, not re-created.
    pub fn init(
        store: &mut ParamStore,
        ops: &GraphOperators,
        e_s: ParamId,
        e_h: ParamId,
        embedding_dim: usize,
        output_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let v_s = store.add("sge.v_s", xavier_uniform(embedding_dim, output_dim, rng));
        let v_h = store.add("sge.v_h", xavier_uniform(embedding_dim, output_dim, rng));
        Self {
            e_s,
            e_h,
            v_s,
            v_h,
            ss_sum: ops.ss_sum.clone(),
            hh_sum: ops.hh_sum.clone(),
            output_dim,
        }
    }

    /// Output dimension (matches Bipar-GCN's final layer for Eq. 11 fusion).
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Computes `(r_s, r_h)` per Eq. 10.
    pub fn encode(&self, tape: &mut Tape<'_>) -> (Var, Var) {
        let e_s = tape.param(self.e_s);
        let e_h = tape.param(self.e_h);
        // Sum aggregation: the raw 0/1 synergy adjacency, no normalisation.
        let agg_s = tape.spmm(&self.ss_sum, e_s);
        let v_s = tape.param(self.v_s);
        let lin_s = tape.matmul(agg_s, v_s);
        let r_s = tape.tanh(lin_s);
        let agg_h = tape.spmm(&self.hh_sum, e_h);
        let v_h = tape.param(self.v_h);
        let lin_h = tape.matmul(agg_h, v_h);
        let r_h = tape.tanh(lin_h);
        (r_s, r_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smgcn_graph::SynergyThresholds;
    use smgcn_tensor::init::seeded_rng;
    use smgcn_tensor::Matrix;

    fn toy_ops() -> GraphOperators {
        let records: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![0, 1], vec![0, 1]),
            (vec![0, 1], vec![0, 1]),
            (vec![2], vec![2, 3]),
        ];
        GraphOperators::from_records(
            records.iter().map(|(s, h)| (s.as_slice(), h.as_slice())),
            3,
            4,
            SynergyThresholds { x_s: 0, x_h: 0 },
        )
    }

    fn build() -> (ParamStore, SynergyGraphEncoding) {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let mut rng = seeded_rng(1);
        let e_s = store.add("e_s", xavier_uniform(3, 8, &mut rng));
        let e_h = store.add("e_h", xavier_uniform(4, 8, &mut rng));
        let sge = SynergyGraphEncoding::init(&mut store, &ops, e_s, e_h, 8, 16, &mut rng);
        (store, sge)
    }

    #[test]
    fn output_shapes() {
        let (store, sge) = build();
        let mut tape = Tape::new(&store);
        let (r_s, r_h) = sge.encode(&mut tape);
        assert_eq!(tape.value(r_s).shape(), (3, 16));
        assert_eq!(tape.value(r_h).shape(), (4, 16));
        assert_eq!(sge.output_dim(), 16);
    }

    #[test]
    fn isolated_nodes_get_zero_encoding() {
        // Symptom 2 has no SS edges (it never co-occurs with another
        // symptom): sum aggregation yields a zero row, tanh(0 @ V) = 0.
        let (store, sge) = build();
        let mut tape = Tape::new(&store);
        let (r_s, _) = sge.encode(&mut tape);
        assert!(tape.value(r_s).row(2).iter().all(|&v| v == 0.0));
        // Connected symptom 0 is non-zero.
        assert!(tape.value(r_s).row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gradients_reach_shared_embeddings_and_v() {
        let (store, sge) = build();
        let mut tape = Tape::new(&store);
        let (r_s, r_h) = sge.encode(&mut tape);
        let gathered = tape.gather_rows(r_h, std::sync::Arc::new(vec![0, 1, 2]));
        let merged = tape.add(r_s, gathered);
        let loss = tape.sum_squares(merged);
        let grads = tape.backward(loss);
        // e_s, e_h, v_s, v_h all participate... except embeddings of nodes
        // with no synergy edges still receive zero gradient rows (but the
        // tensors themselves are present).
        assert_eq!(grads.present_count(), 4);
    }

    #[test]
    fn sum_aggregation_scales_with_degree() {
        // Duplicate a neighbor edge structure: node with two neighbors gets
        // the sum, not the mean. Verify by comparing against a manual
        // computation on a fixed store.
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let e_s = store.add("e_s", Matrix::filled(3, 2, 1.0));
        let e_h = store.add("e_h", Matrix::filled(4, 2, 1.0));
        let mut rng = seeded_rng(2);
        let sge = SynergyGraphEncoding::init(&mut store, &ops, e_s, e_h, 2, 2, &mut rng);
        // Overwrite V_h with identity to observe raw sums.
        let v_h_id = store.iter().find(|(_, n, _)| *n == "sge.v_h").unwrap().0;
        *store.get_mut(v_h_id) = Matrix::identity(2);
        let mut tape = Tape::new(&store);
        let (_, r_h) = sge.encode(&mut tape);
        // Herb 0 and 1 co-occur twice; herbs 2,3 once. With threshold 0 all
        // pairs are edges. Herb 0 has exactly one HH neighbor (herb 1), so
        // its pre-activation sum is [1, 1] -> tanh(1).
        let expect = 1.0f32.tanh();
        assert!((tape.value(r_h).get(0, 0) - expect).abs() < 1e-6);
    }
}
