//! The training loop: Adam + weighted multi-label loss over shuffled
//! mini-batches of prescriptions (§IV-E).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use smgcn_data::{herb_frequencies, herb_loss_weights, Corpus};
use smgcn_tensor::optim::{Adam, Optimizer};
use smgcn_tensor::{BufferPool, Tape};

use crate::batch::{epoch_batches, make_batch};
use crate::config::TrainConfig;
use crate::embedding::ForwardCtx;
use crate::loss::attach_loss;
use crate::model::Recommender;

/// Per-epoch phase timings (microseconds, summed over the epoch's
/// batches), delivered to the observer installed with
/// [`set_epoch_observer`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochPhases {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Batch selection + dense batch assembly.
    pub prep_us: u64,
    /// Forward pass + loss attachment.
    pub forward_us: u64,
    /// Backward pass (gradient computation + tape recycling).
    pub backward_us: u64,
    /// Optimizer step (+ gradient-buffer recycling).
    pub step_us: u64,
}

/// The epoch-phase observer callback type.
pub type EpochObserver = Arc<dyn Fn(&EpochPhases) + Send + Sync>;

static OBSERVER_ENABLED: AtomicBool = AtomicBool::new(false);
static OBSERVER: Mutex<Option<EpochObserver>> = Mutex::new(None);

/// Installs (or with `None` removes) a process-wide observer that
/// receives per-epoch phase timings from every training run.
///
/// Timing is strictly zero-cost when no observer is installed: the hot
/// loop checks one relaxed atomic per run and takes no `Instant::now`
/// readings. The timers never touch the RNG or the computation itself,
/// so observed and unobserved runs stay bit-identical. The hook is
/// process-global — concurrent observed trainings share it, so install
/// a callback that tolerates interleaved runs (e.g. histogram records).
pub fn set_epoch_observer(observer: Option<EpochObserver>) {
    let mut slot = OBSERVER.lock().expect("epoch observer lock");
    OBSERVER_ENABLED.store(observer.is_some(), Ordering::SeqCst);
    *slot = observer;
}

/// Phase stopwatch: every `lap` adds the time since the previous lap to
/// an accumulator. Disabled, it never reads the clock.
struct PhaseTimer {
    last: Option<Instant>,
}

impl PhaseTimer {
    fn start(enabled: bool) -> Self {
        Self {
            last: enabled.then(Instant::now),
        }
    }

    fn lap(&mut self, acc: &mut u64) {
        if let Some(last) = self.last {
            let now = Instant::now();
            *acc += now.duration_since(last).as_micros() as u64;
            self.last = Some(now);
        }
    }
}

/// Per-epoch training diagnostics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean batch loss.
    pub mean_loss: f32,
    /// Mean global gradient norm across batches.
    pub mean_grad_norm: f32,
}

/// The complete loss trajectory of a run.
#[derive(Clone, Debug, Default)]
pub struct TrainingHistory {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainingHistory {
    /// Final epoch's mean loss (NaN when never trained).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(f32::NAN, |e| e.mean_loss)
    }

    /// True when the loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.epochs.first(), self.epochs.last()) {
            (Some(a), Some(b)) => b.mean_loss < a.mean_loss,
            _ => false,
        }
    }
}

/// Trains `model` on `train` with the paper's optimisation setup, invoking
/// `on_epoch` after each epoch (for eval hooks / progress reporting).
///
/// The hot loop draws every tape and gradient buffer from a step-scoped
/// [`BufferPool`]: after the first step has populated the pool, steady-
/// state steps perform no heap allocation for tensor data. Pooling is
/// bit-for-bit neutral — [`train_unpooled`] runs the identical
/// computation without the pool and the test suite asserts equal
/// histories.
pub fn train_with_callback(
    model: &mut Recommender,
    train: &Corpus,
    cfg: &TrainConfig,
    mut on_epoch: impl FnMut(&EpochStats, &Recommender),
) -> TrainingHistory {
    train_impl(model, train, cfg, true, |stats, model| {
        on_epoch(stats, model);
        false
    })
}

/// Trains without a callback.
pub fn train(model: &mut Recommender, train: &Corpus, cfg: &TrainConfig) -> TrainingHistory {
    train_with_callback(model, train, cfg, |_, _| {})
}

/// Trains until `stop` returns `true` (checked after every epoch) or the
/// `cfg.epochs` budget runs out, whichever comes first.
///
/// This is the warm-start fine-tuning entry point: a model resumed from a
/// checkpoint starts near its plateau, so online refreshes give a small
/// epoch budget and stop as soon as the loss reaches a target instead of
/// paying the full cold-training schedule. Optimizer state (Adam moments)
/// is fresh, exactly as in a cold run — determinism is per-call.
pub fn train_until(
    model: &mut Recommender,
    train: &Corpus,
    cfg: &TrainConfig,
    stop: impl FnMut(&EpochStats, &Recommender) -> bool,
) -> TrainingHistory {
    train_impl(model, train, cfg, true, stop)
}

/// Reference training path that allocates fresh buffers for every tape op
/// (the pre-pooling behavior). Exists for validation — it must produce a
/// bit-identical [`TrainingHistory`] to [`train`] — and as the baseline
/// for the `train_throughput` benchmark.
pub fn train_unpooled(
    model: &mut Recommender,
    train: &Corpus,
    cfg: &TrainConfig,
) -> TrainingHistory {
    train_impl(model, train, cfg, false, |_, _| false)
}

fn train_impl(
    model: &mut Recommender,
    train: &Corpus,
    cfg: &TrainConfig,
    pooled: bool,
    mut on_epoch: impl FnMut(&EpochStats, &Recommender) -> bool,
) -> TrainingHistory {
    assert!(!train.is_empty(), "train: empty training corpus");
    // Eq. 15 imbalance weights from *training* herb frequencies (or flat
    // weights for the loss-weighting ablation).
    let weights = if cfg.weighted_labels {
        Arc::new(herb_loss_weights(&herb_frequencies(train)))
    } else {
        Arc::new(vec![1.0f32; train.n_herbs()])
    };
    // Eq. 13's λ‖Θ‖² has gradient 2λΘ — realised as weight decay.
    let mut opt = Adam::new(cfg.learning_rate).with_weight_decay(2.0 * cfg.l2_lambda);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let prescriptions = train.prescriptions();
    let n_symptoms = train.n_symptoms();
    let n_herbs = train.n_herbs();
    let mut history = TrainingHistory::default();
    let pool = BufferPool::new();
    // Snapshot the observer once per run: the hot loop pays one branch
    // per phase when observing and nothing (no clock reads) otherwise.
    let observer = if OBSERVER_ENABLED.load(Ordering::Relaxed) {
        OBSERVER.lock().expect("epoch observer lock").clone()
    } else {
        None
    };
    let observing = observer.is_some();

    for epoch in 0..cfg.epochs {
        let mut loss_sum = 0.0f64;
        let mut grad_sum = 0.0f64;
        let mut phases = EpochPhases {
            epoch,
            ..EpochPhases::default()
        };
        let batches = epoch_batches(prescriptions.len(), cfg.batch_size, &mut rng);
        let n_batches = batches.len();
        for indices in batches {
            let mut timer = PhaseTimer::start(observing);
            let selected: Vec<&smgcn_data::Prescription> =
                indices.iter().map(|&i| &prescriptions[i]).collect();
            let batch = make_batch(&selected, n_symptoms, n_herbs);
            timer.lap(&mut phases.prep_us);
            let grads = {
                let mut tape = if pooled {
                    Tape::with_pool(model.store(), &pool)
                } else {
                    Tape::new(model.store())
                };
                let mut ctx = ForwardCtx::training(model.dropout(), &mut rng);
                let scores = model.forward_scores(&mut tape, &batch.set_pool, &mut ctx);
                let loss = attach_loss(
                    &mut tape,
                    scores,
                    &batch,
                    cfg.loss,
                    &weights,
                    n_herbs,
                    cfg.bpr_negatives,
                    ctx.rng,
                );
                loss_sum += tape.value(loss).get(0, 0) as f64;
                timer.lap(&mut phases.forward_us);
                let grads = tape.backward(loss);
                // Hand the tape's node buffers back to the pool for the
                // next step.
                tape.recycle();
                timer.lap(&mut phases.backward_us);
                grads
            };
            grad_sum += grads.l2_norm() as f64;
            opt.step(model.store_mut(), &grads);
            if pooled {
                grads.recycle_into(&pool);
            }
            timer.lap(&mut phases.step_us);
        }
        if let Some(observer) = &observer {
            observer(&phases);
        }
        let stats = EpochStats {
            epoch,
            mean_loss: (loss_sum / n_batches as f64) as f32,
            mean_grad_norm: (grad_sum / n_batches as f64) as f32,
        };
        history.epochs.push(stats);
        if on_epoch(&stats, model) {
            break;
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LossKind, ModelConfig};
    use crate::model::Recommender;
    use smgcn_data::{GeneratorConfig, SyndromeModel};
    use smgcn_graph::{GraphOperators, SynergyThresholds};

    fn tiny_setup() -> (Corpus, GraphOperators) {
        let corpus = SyndromeModel::new(GeneratorConfig::tiny_scale()).generate();
        let ops = GraphOperators::from_records(
            corpus.records(),
            corpus.n_symptoms(),
            corpus.n_herbs(),
            SynergyThresholds { x_s: 1, x_h: 1 },
        );
        (corpus, ops)
    }

    fn tiny_model_cfg() -> ModelConfig {
        ModelConfig {
            embedding_dim: 16,
            layer_dims: vec![16, 24],
            dropout: 0.0,
            use_sge: true,
            use_si_mlp: true,
        }
    }

    #[test]
    fn loss_decreases_on_tiny_corpus() {
        let (corpus, ops) = tiny_setup();
        let mut model = Recommender::smgcn(&ops, &tiny_model_cfg(), 1);
        let cfg = TrainConfig {
            epochs: 5,
            batch_size: 64,
            learning_rate: 5e-3,
            l2_lambda: 1e-4,
            loss: LossKind::MultiLabel,
            bpr_negatives: 1,
            weighted_labels: true,
            seed: 2,
        };
        let history = train(&mut model, &corpus, &cfg);
        assert_eq!(history.epochs.len(), 5);
        assert!(
            history.improved(),
            "loss must decrease: {:?}",
            history.epochs
        );
        assert!(model.store().all_finite(), "parameters must stay finite");
    }

    #[test]
    fn bpr_training_also_decreases() {
        let (corpus, ops) = tiny_setup();
        let mut model = Recommender::smgcn(&ops, &tiny_model_cfg(), 1);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 64,
            learning_rate: 5e-3,
            l2_lambda: 1e-4,
            loss: LossKind::Bpr,
            bpr_negatives: 1,
            weighted_labels: true,
            seed: 2,
        };
        let history = train(&mut model, &corpus, &cfg);
        assert!(history.improved(), "{:?}", history.epochs);
    }

    #[test]
    fn training_is_seed_deterministic() {
        let (corpus, ops) = tiny_setup();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 64,
            learning_rate: 1e-3,
            l2_lambda: 1e-4,
            loss: LossKind::MultiLabel,
            bpr_negatives: 1,
            weighted_labels: true,
            seed: 3,
        };
        let run = || {
            let mut model = Recommender::smgcn(&ops, &tiny_model_cfg(), 1);
            train(&mut model, &corpus, &cfg).final_loss()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pooled_training_is_bit_identical_to_unpooled() {
        let (corpus, ops) = tiny_setup();
        // Positive dropout so pooled dropout masks are exercised too.
        let mut model_cfg = tiny_model_cfg();
        model_cfg.dropout = 0.3;
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 64,
            learning_rate: 5e-3,
            l2_lambda: 1e-4,
            loss: LossKind::MultiLabel,
            bpr_negatives: 1,
            weighted_labels: true,
            seed: 9,
        };
        let mut pooled = Recommender::smgcn(&ops, &model_cfg, 5);
        let mut unpooled = Recommender::smgcn(&ops, &model_cfg, 5);
        let hp = train(&mut pooled, &corpus, &cfg);
        let hu = train_unpooled(&mut unpooled, &corpus, &cfg);
        assert_eq!(hp.epochs.len(), hu.epochs.len());
        for (a, b) in hp.epochs.iter().zip(&hu.epochs) {
            assert_eq!(
                a.mean_loss.to_bits(),
                b.mean_loss.to_bits(),
                "epoch {} loss diverged: {} vs {}",
                a.epoch,
                a.mean_loss,
                b.mean_loss
            );
            assert_eq!(
                a.mean_grad_norm.to_bits(),
                b.mean_grad_norm.to_bits(),
                "epoch {} grad norm diverged",
                a.epoch
            );
        }
        for ((_, name, pa), (_, _, pb)) in pooled.store().iter().zip(unpooled.store().iter()) {
            for (i, (x, y)) in pa.as_slice().iter().zip(pb.as_slice()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "param {name} diverged at {i}");
            }
        }
    }

    #[test]
    fn train_until_stops_early() {
        let (corpus, ops) = tiny_setup();
        let mut model = Recommender::smgcn(&ops, &tiny_model_cfg(), 1);
        let cfg = TrainConfig {
            epochs: 50,
            batch_size: 64,
            learning_rate: 5e-3,
            l2_lambda: 1e-4,
            loss: LossKind::MultiLabel,
            bpr_negatives: 1,
            weighted_labels: true,
            seed: 2,
        };
        let history = train_until(&mut model, &corpus, &cfg, |stats, _| stats.epoch >= 2);
        assert_eq!(history.epochs.len(), 3, "stops right after the signal");
    }

    #[test]
    fn warm_start_resumes_and_supports_grown_vocab() {
        let (corpus, ops) = tiny_setup();
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 64,
            learning_rate: 5e-3,
            l2_lambda: 1e-4,
            loss: LossKind::MultiLabel,
            bpr_negatives: 1,
            weighted_labels: true,
            seed: 2,
        };
        let mut base = Recommender::smgcn(&ops, &tiny_model_cfg(), 1);
        train(&mut base, &corpus, &cfg);

        // Same-shape warm start restores every parameter verbatim.
        let resumed =
            Recommender::warm_start_smgcn(&ops, &tiny_model_cfg(), 1, base.store()).unwrap();
        for ((_, name, a), (_, _, b)) in resumed.store().iter().zip(base.store().iter()) {
            assert_eq!(a.as_slice(), b.as_slice(), "param {name} must resume");
        }

        // Grown vocabulary: two extra symptoms, one extra herb.
        let grown_records: Vec<(Vec<u32>, Vec<u32>)> = corpus
            .records()
            .map(|(s, h)| (s.to_vec(), h.to_vec()))
            .chain(std::iter::once((
                vec![corpus.n_symptoms() as u32, corpus.n_symptoms() as u32 + 1],
                vec![corpus.n_herbs() as u32],
            )))
            .collect();
        let grown_ops = smgcn_graph::GraphOperators::from_records(
            grown_records
                .iter()
                .map(|(s, h)| (s.as_slice(), h.as_slice())),
            corpus.n_symptoms() + 2,
            corpus.n_herbs() + 1,
            SynergyThresholds { x_s: 1, x_h: 1 },
        );
        let grown =
            Recommender::warm_start_smgcn(&grown_ops, &tiny_model_cfg(), 1, base.store()).unwrap();
        assert_eq!(grown.n_symptoms(), corpus.n_symptoms() + 2);
        assert_eq!(grown.n_herbs(), corpus.n_herbs() + 1);
        // Scores over the old vocabulary region stay finite and the model
        // can immediately rank over the grown herb set.
        let ranking = grown.recommend(&[0, 1], corpus.n_herbs() + 1);
        assert_eq!(ranking.len(), corpus.n_herbs() + 1);
        assert!(grown.store().all_finite());
    }

    #[test]
    fn epoch_observer_times_phases_without_perturbing_training() {
        let (corpus, ops) = tiny_setup();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 64,
            learning_rate: 5e-3,
            l2_lambda: 1e-4,
            loss: LossKind::MultiLabel,
            bpr_negatives: 1,
            weighted_labels: true,
            seed: 7,
        };
        let run = || {
            let mut model = Recommender::smgcn(&ops, &tiny_model_cfg(), 1);
            train(&mut model, &corpus, &cfg).final_loss()
        };
        let baseline = run();
        let seen: Arc<Mutex<Vec<EpochPhases>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        set_epoch_observer(Some(Arc::new(move |p: &EpochPhases| {
            sink.lock().unwrap().push(*p);
        })));
        let observed = run();
        set_epoch_observer(None);
        assert_eq!(
            observed.to_bits(),
            baseline.to_bits(),
            "observing must not change the computation"
        );
        let seen = seen.lock().unwrap();
        // The hook is process-global, so concurrently-running tests may
        // contribute entries too; this run's two epochs must be there.
        for epoch in 0..2 {
            assert!(
                seen.iter()
                    .any(|p| p.epoch == epoch && p.forward_us > 0 && p.backward_us > 0),
                "epoch {epoch} phases missing or empty: {seen:?}"
            );
        }
    }

    #[test]
    fn callback_sees_every_epoch() {
        let (corpus, ops) = tiny_setup();
        let mut model = Recommender::smgcn(&ops, &tiny_model_cfg(), 1);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 128,
            learning_rate: 1e-3,
            l2_lambda: 0.0,
            loss: LossKind::MultiLabel,
            bpr_negatives: 1,
            weighted_labels: true,
            seed: 4,
        };
        let mut seen = Vec::new();
        train_with_callback(&mut model, &corpus, &cfg, |stats, m| {
            seen.push(stats.epoch);
            assert!(m.store().all_finite());
        });
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
