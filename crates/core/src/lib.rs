//! # smgcn-core — the SMGCN model and aligned baselines
//!
//! Implements the paper's primary contribution on top of `smgcn-tensor`
//! (autograd substrate) and `smgcn-graph` (graph operators):
//!
//! - [`bipar_gcn`] — Bipartite GCN with type-specific weights (§IV-A);
//! - [`sge`] — Synergy Graph Encoding over `SS`/`HH` (§IV-B);
//! - [`syndrome`] — the MLP-based Syndrome Induction head (§IV-D);
//! - [`model`] — the fused SMGCN embedding (Eq. 11) and the shared
//!   [`model::Recommender`] prediction layer (Eq. 13);
//! - [`baselines`] — GC-MC, PinSage, NGCF and HeteGCN, aligned per §V-C;
//! - [`zoo`] — one constructor per Table IV/V row;
//! - [`loss`] — weighted multi-label MSE (Eqs. 14–15) and BPR;
//! - [`trainer`] — the Adam mini-batch loop with Eq. 13's L2 term;
//! - [`batch`] / [`config`] — batch assembly and Table III hyperparameters.
//!
//! ## Quickstart
//!
//! ```
//! use smgcn_core::prelude::*;
//! use smgcn_data::{GeneratorConfig, SyndromeModel};
//! use smgcn_graph::{GraphOperators, SynergyThresholds};
//!
//! let corpus = SyndromeModel::new(GeneratorConfig::tiny_scale()).generate();
//! let ops = GraphOperators::from_records(
//!     corpus.records(),
//!     corpus.n_symptoms(),
//!     corpus.n_herbs(),
//!     SynergyThresholds { x_s: 1, x_h: 1 },
//! );
//! let config = ModelConfig { embedding_dim: 16, layer_dims: vec![16], ..ModelConfig::smgcn() };
//! let mut model = Recommender::smgcn(&ops, &config, 42);
//! let train_cfg = TrainConfig { epochs: 2, batch_size: 128, ..TrainConfig::smoke() };
//! let history = train(&mut model, &corpus, &train_cfg);
//! assert!(history.final_loss().is_finite());
//! let top5 = model.recommend(corpus.prescriptions()[0].symptoms(), 5);
//! assert_eq!(top5.len(), 5);
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod batch;
pub mod bipar_gcn;
pub mod config;
pub mod embedding;
pub mod loss;
pub mod model;
pub mod sge;
pub mod syndrome;
pub mod trainer;
pub mod zoo;

pub use config::{LossKind, ModelConfig, TrainConfig};
pub use embedding::{EmbeddingLayer, ForwardCtx};
pub use model::{top_k_indices, Recommender, SmgcnEmbedding};
pub use trainer::{
    set_epoch_observer, train, train_unpooled, train_until, train_with_callback, EpochObserver,
    EpochPhases, EpochStats, TrainingHistory,
};
pub use zoo::{build_model, ModelKind};

/// Common imports for experiment code.
pub mod prelude {
    pub use crate::config::{LossKind, ModelConfig, TrainConfig};
    pub use crate::embedding::{EmbeddingLayer, ForwardCtx};
    pub use crate::model::{top_k_indices, Recommender};
    pub use crate::trainer::{
        train, train_unpooled, train_until, train_with_callback, TrainingHistory,
    };
    pub use crate::zoo::{build_model, ModelKind};
}
