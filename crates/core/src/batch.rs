//! Mini-batch assembly: set-pooling operators, multi-hot targets, BPR pair
//! sampling and the shuffled batch iterator.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use smgcn_data::Prescription;
use smgcn_tensor::{CsrMatrix, Matrix, SharedCsr};

/// One training batch: the symptom-set pooling operator plus targets.
pub struct Batch {
    /// `B x S` row-normalised incidence matrix: row `b` averages the fused
    /// embeddings of prescription `b`'s symptom set (Eq. 12's mean pooling).
    pub set_pool: SharedCsr,
    /// `B x H` multi-hot ground-truth herb sets (`hc'` in Eq. 13).
    pub targets: Matrix,
    /// The prescriptions behind the batch (for negative sampling).
    pub herb_sets: Vec<Vec<u32>>,
}

/// Builds the `B x S` mean-pooling operator for a batch of symptom sets.
///
/// # Panics
/// Panics if a set is empty or references a symptom outside `n_symptoms`.
pub fn set_pool_matrix(sets: &[&[u32]], n_symptoms: usize) -> CsrMatrix {
    let mut triplets = Vec::new();
    for (b, set) in sets.iter().enumerate() {
        assert!(
            !set.is_empty(),
            "set_pool_matrix: empty symptom set at row {b}"
        );
        let w = 1.0 / set.len() as f32;
        for &s in *set {
            assert!(
                (s as usize) < n_symptoms,
                "set_pool_matrix: symptom {s} out of range {n_symptoms}"
            );
            triplets.push((b as u32, s, w));
        }
    }
    CsrMatrix::from_triplets(sets.len(), n_symptoms, &triplets)
}

/// Builds the `B x H` multi-hot target matrix.
pub fn multi_hot_targets(herb_sets: &[&[u32]], n_herbs: usize) -> Matrix {
    let mut m = Matrix::zeros(herb_sets.len(), n_herbs);
    for (b, set) in herb_sets.iter().enumerate() {
        for &h in *set {
            assert!(
                (h as usize) < n_herbs,
                "multi_hot_targets: herb {h} out of range {n_herbs}"
            );
            m.set(b, h as usize, 1.0);
        }
    }
    m
}

/// Assembles a batch from prescriptions.
pub fn make_batch(prescriptions: &[&Prescription], n_symptoms: usize, n_herbs: usize) -> Batch {
    let symptom_sets: Vec<&[u32]> = prescriptions.iter().map(|p| p.symptoms()).collect();
    let herb_sets_slices: Vec<&[u32]> = prescriptions.iter().map(|p| p.herbs()).collect();
    Batch {
        set_pool: SharedCsr::new(set_pool_matrix(&symptom_sets, n_symptoms)),
        targets: multi_hot_targets(&herb_sets_slices, n_herbs),
        herb_sets: prescriptions.iter().map(|p| p.herbs().to_vec()).collect(),
    }
}

/// Samples BPR pairs `(batch_row, positive, negative)`: for every positive
/// herb of every prescription, `negatives_per_pos` herbs outside the
/// prescription's herb set, uniformly.
pub fn sample_bpr_pairs(
    herb_sets: &[Vec<u32>],
    n_herbs: usize,
    negatives_per_pos: usize,
    rng: &mut StdRng,
) -> Vec<(u32, u32, u32)> {
    let mut pairs = Vec::new();
    for (b, herbs) in herb_sets.iter().enumerate() {
        debug_assert!(herbs.len() < n_herbs, "herb set covers whole vocabulary");
        for &pos in herbs {
            for _ in 0..negatives_per_pos {
                // Rejection sampling; herb sets are tiny relative to |H|.
                let neg = loop {
                    let cand = rng.gen_range(0..n_herbs as u32);
                    if herbs.binary_search(&cand).is_err() {
                        break cand;
                    }
                };
                pairs.push((b as u32, pos, neg));
            }
        }
    }
    pairs
}

/// Yields shuffled mini-batches of prescription indices for one epoch.
pub fn epoch_batches(n: usize, batch_size: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "epoch_batches: batch_size must be positive");
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    order.chunks(batch_size).map(<[usize]>::to_vec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn set_pool_rows_average() {
        let sets: Vec<&[u32]> = vec![&[0, 2], &[1]];
        let m = set_pool_matrix(&sets, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!((m.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((m.get(0, 2) - 0.5).abs() < 1e-6);
        assert!((m.get(1, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty symptom set")]
    fn set_pool_rejects_empty() {
        let sets: Vec<&[u32]> = vec![&[]];
        let _ = set_pool_matrix(&sets, 3);
    }

    #[test]
    fn multi_hot_marks_members() {
        let sets: Vec<&[u32]> = vec![&[1, 3], &[0]];
        let m = multi_hot_targets(&sets, 4);
        assert_eq!(m.row(0), &[0.0, 1.0, 0.0, 1.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn batch_assembly() {
        let p1 = Prescription::new(vec![0, 1], vec![2, 0]);
        let p2 = Prescription::new(vec![2], vec![1]);
        let batch = make_batch(&[&p1, &p2], 3, 3);
        assert_eq!(batch.set_pool.shape(), (2, 3));
        assert_eq!(batch.targets.shape(), (2, 3));
        assert_eq!(batch.targets.row(0), &[1.0, 0.0, 1.0]);
        assert_eq!(batch.herb_sets, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn bpr_pairs_avoid_positives() {
        let herb_sets = vec![vec![0, 1], vec![2]];
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = sample_bpr_pairs(&herb_sets, 10, 2, &mut rng);
        assert_eq!(pairs.len(), (2 + 1) * 2);
        for &(b, pos, neg) in &pairs {
            let set = &herb_sets[b as usize];
            assert!(set.contains(&pos));
            assert!(
                !set.contains(&neg),
                "negative {neg} is a positive of row {b}"
            );
        }
    }

    #[test]
    fn epoch_batches_cover_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let batches = epoch_batches(10, 4, &mut rng);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        let mut all: Vec<usize> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn epoch_batches_shuffle_deterministically() {
        let a = epoch_batches(20, 5, &mut StdRng::seed_from_u64(1));
        let b = epoch_batches(20, 5, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
        let c = epoch_batches(20, 5, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, c);
    }
}
