//! NGCF baseline (Wang et al., SIGIR 2019 — *Neural Graph Collaborative
//! Filtering*), applied to the joint symptom∪herb node set.
//!
//! One embedding table covers all `S + H` nodes. With
//! `L = D^{-1/2} A D^{-1/2}` the symmetric-normalised joint adjacency,
//! each layer computes
//!
//! ```text
//! E^{l+1} = LeakyReLU( (L + I) E^l W_1 + (L E^l) ⊙ E^l W_2 )
//! ```
//!
//! and the final representation concatenates every layer's output
//! (`E^0 || E^1 || ... || E^L`), as in the original model.

use rand::rngs::StdRng;
use smgcn_graph::GraphOperators;
use smgcn_tensor::init::xavier_uniform;
use smgcn_tensor::{CsrMatrix, ParamId, ParamStore, SharedCsr, Tape, Var};

use crate::embedding::{EmbeddingLayer, ForwardCtx};

const LEAKY_SLOPE: f32 = 0.2;

/// Builds the symmetric-normalised joint adjacency
/// `L = D^{-1/2} A D^{-1/2}` over `S + H` nodes, where `A`'s off-diagonal
/// blocks are the bipartite interactions.
pub fn joint_normalized_adjacency(ops: &GraphOperators) -> CsrMatrix {
    let s = ops.n_symptoms;
    let h = ops.n_herbs;
    let n = s + h;
    let mut degree = vec![0f64; n];
    for (r, c, _) in ops.sh_raw.iter() {
        degree[r as usize] += 1.0;
        degree[s + c as usize] += 1.0;
    }
    let inv_sqrt: Vec<f64> = degree
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut triplets = Vec::with_capacity(2 * ops.sh_raw.nnz());
    for (r, c, _) in ops.sh_raw.iter() {
        let (i, j) = (r as usize, s + c as usize);
        let v = (inv_sqrt[i] * inv_sqrt[j]) as f32;
        triplets.push((i as u32, j as u32, v));
        triplets.push((j as u32, i as u32, v));
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

struct NgcfLayer {
    w1: ParamId,
    w2: ParamId,
}

/// The NGCF embedding layer.
pub struct Ngcf {
    /// Joint embedding table (`(S + H) x d`).
    e_joint: ParamId,
    layers: Vec<NgcfLayer>,
    laplacian: SharedCsr,
    n_symptoms: usize,
    n_herbs: usize,
    dim: usize,
}

impl Ngcf {
    /// Registers parameters: `depth` propagation layers of width `dim`
    /// (paper: 64-dim embeddings; the harness uses 2 layers).
    pub fn init(
        store: &mut ParamStore,
        ops: &GraphOperators,
        dim: usize,
        depth: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(depth >= 1, "NGCF needs at least one layer");
        let n = ops.n_symptoms + ops.n_herbs;
        let e_joint = store.add("ngcf.e", xavier_uniform(n, dim, rng));
        let layers = (0..depth)
            .map(|k| NgcfLayer {
                w1: store.add(format!("ngcf.w1.{k}"), xavier_uniform(dim, dim, rng)),
                w2: store.add(format!("ngcf.w2.{k}"), xavier_uniform(dim, dim, rng)),
            })
            .collect();
        Self {
            e_joint,
            layers,
            laplacian: SharedCsr::new(joint_normalized_adjacency(ops)),
            n_symptoms: ops.n_symptoms,
            n_herbs: ops.n_herbs,
            dim,
        }
    }

    /// Number of propagation layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl EmbeddingLayer for Ngcf {
    fn name(&self) -> &'static str {
        "NGCF"
    }

    fn output_dim(&self) -> usize {
        self.dim * (self.layers.len() + 1)
    }

    fn embed(&self, tape: &mut Tape<'_>, ctx: &mut ForwardCtx<'_>) -> (Var, Var) {
        let mut e = tape.param(self.e_joint);
        let mut all_layers = vec![e];
        for layer in &self.layers {
            let le = tape.spmm(&self.laplacian, e);
            let le = ctx.apply_dropout(tape, le);
            // (L + I) E W1 = (LE + E) W1.
            let le_plus_e = tape.add(le, e);
            let w1 = tape.param(layer.w1);
            let term1 = tape.matmul(le_plus_e, w1);
            // (LE ⊙ E) W2 — the affinity term.
            let affinity = tape.hadamard(le, e);
            let w2 = tape.param(layer.w2);
            let term2 = tape.matmul(affinity, w2);
            let summed = tape.add(term1, term2);
            e = tape.leaky_relu(summed, LEAKY_SLOPE);
            all_layers.push(e);
        }
        // Concatenate all layers, then split the joint table by node type.
        let mut concat = all_layers[0];
        for &layer_e in &all_layers[1..] {
            concat = tape.concat_cols(concat, layer_e);
        }
        let sym_idx: std::sync::Arc<Vec<u32>> =
            std::sync::Arc::new((0..self.n_symptoms as u32).collect());
        let herb_idx: std::sync::Arc<Vec<u32>> = std::sync::Arc::new(
            (self.n_symptoms as u32..(self.n_symptoms + self.n_herbs) as u32).collect(),
        );
        let e_s = tape.gather_rows(concat, sym_idx);
        let e_h = tape.gather_rows(concat, herb_idx);
        (e_s, e_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::toy_ops;
    use smgcn_tensor::init::seeded_rng;

    #[test]
    fn laplacian_is_symmetric_and_normalised() {
        let ops = toy_ops();
        let lap = joint_normalized_adjacency(&ops);
        assert!(lap.is_symmetric());
        assert_eq!(
            lap.shape(),
            (ops.n_symptoms + ops.n_herbs, ops.n_symptoms + ops.n_herbs)
        );
        // Entries are 1/sqrt(d_i d_j) <= 1.
        for (_, _, v) in lap.iter() {
            assert!(v > 0.0 && v <= 1.0);
        }
        // Check one known value against degrees computed from the raw block:
        // symptom 0 and herb 1 are linked, so the entry is 1/sqrt(d_s0 d_h1).
        let d_s0 = ops.sh_raw.row_nnz(0) as f32;
        let d_h1 = ops.sh_raw.transpose().row_nnz(1) as f32;
        let expected = 1.0 / (d_s0.sqrt() * d_h1.sqrt());
        assert!((lap.get(0, ops.n_symptoms + 1) - expected).abs() < 1e-6);
    }

    #[test]
    fn concat_output_dim() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = Ngcf::init(&mut store, &ops, 8, 2, &mut seeded_rng(1));
        assert_eq!(model.output_dim(), 24, "d * (layers + 1)");
        let mut tape = Tape::new(&store);
        let mut rng = seeded_rng(2);
        let mut ctx = ForwardCtx::inference(&mut rng);
        let (s, h) = model.embed(&mut tape, &mut ctx);
        assert_eq!(tape.value(s).shape(), (ops.n_symptoms, 24));
        assert_eq!(tape.value(h).shape(), (ops.n_herbs, 24));
    }

    #[test]
    fn gradients_flow_everywhere() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = Ngcf::init(&mut store, &ops, 8, 2, &mut seeded_rng(1));
        let mut tape = Tape::new(&store);
        let mut rng = seeded_rng(3);
        let mut ctx = ForwardCtx::training(0.0, &mut rng);
        let (s, h) = model.embed(&mut tape, &mut ctx);
        let hg = tape.gather_rows(h, std::sync::Arc::new(vec![0, 1, 2]));
        let sum = tape.add(s, hg);
        let loss = tape.sum_squares(sum);
        let grads = tape.backward(loss);
        assert_eq!(grads.present_count(), store.len());
    }
}
