//! PinSage baseline (Ying et al., KDD 2018), applied per §V-C to the
//! symptom–herb interaction graph with **two** convolution layers and
//! hidden dimension equal to the embedding size.
//!
//! Each layer is the GraphSAGE concat aggregator with weights **shared**
//! between symptom and herb nodes (PinSage is a homogeneous-graph model —
//! sharing is exactly what Bipar-GCN's type-specific weights improve on):
//!
//! ```text
//! n_v = ReLU( mean_{u∈N(v)} h_u Q )
//! h_v' = ReLU( (h_v || n_v) W )
//! ```

use rand::rngs::StdRng;
use smgcn_graph::GraphOperators;
use smgcn_tensor::init::xavier_uniform;
use smgcn_tensor::{ParamId, ParamStore, SharedCsr, Tape, Var};

use crate::embedding::{EmbeddingLayer, ForwardCtx};

struct PinSageLayer {
    /// Shared neighbor transform `Q` (`d x d`).
    q: ParamId,
    /// Shared concat aggregation `W` (`2d x d`).
    w: ParamId,
}

/// The PinSage embedding layer.
pub struct PinSage {
    e_s: ParamId,
    e_h: ParamId,
    layers: Vec<PinSageLayer>,
    sh_mean: SharedCsr,
    hs_mean: SharedCsr,
    dim: usize,
}

impl PinSage {
    /// Registers parameters: `depth` convolution layers of width `dim`
    /// (paper: depth 2, dim 64).
    pub fn init(
        store: &mut ParamStore,
        ops: &GraphOperators,
        dim: usize,
        depth: usize,
        rng: &mut StdRng,
    ) -> Self {
        assert!(depth >= 1, "PinSage needs at least one layer");
        let e_s = store.add("pinsage.e_s", xavier_uniform(ops.n_symptoms, dim, rng));
        let e_h = store.add("pinsage.e_h", xavier_uniform(ops.n_herbs, dim, rng));
        let layers = (0..depth)
            .map(|k| PinSageLayer {
                q: store.add(format!("pinsage.q.{k}"), xavier_uniform(dim, dim, rng)),
                w: store.add(format!("pinsage.w.{k}"), xavier_uniform(2 * dim, dim, rng)),
            })
            .collect();
        Self {
            e_s,
            e_h,
            layers,
            sh_mean: ops.sh_mean.clone(),
            hs_mean: ops.hs_mean.clone(),
            dim,
        }
    }
}

impl EmbeddingLayer for PinSage {
    fn name(&self) -> &'static str {
        "PinSage"
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, tape: &mut Tape<'_>, ctx: &mut ForwardCtx<'_>) -> (Var, Var) {
        let mut h_s = tape.param(self.e_s);
        let mut h_h = tape.param(self.e_h);
        for layer in &self.layers {
            let q = tape.param(layer.q);
            let herb_msgs = tape.matmul(h_h, q);
            let sym_msgs = tape.matmul(h_s, q);
            let n_s = tape.spmm(&self.sh_mean, herb_msgs);
            let n_s = tape.relu(n_s);
            let n_s = ctx.apply_dropout(tape, n_s);
            let n_h = tape.spmm(&self.hs_mean, sym_msgs);
            let n_h = tape.relu(n_h);
            let n_h = ctx.apply_dropout(tape, n_h);
            let w = tape.param(layer.w);
            let cat_s = tape.concat_cols(h_s, n_s);
            let lin_s = tape.matmul(cat_s, w);
            h_s = tape.relu(lin_s);
            let cat_h = tape.concat_cols(h_h, n_h);
            let lin_h = tape.matmul(cat_h, w);
            h_h = tape.relu(lin_h);
        }
        (h_s, h_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::toy_ops;
    use smgcn_tensor::init::seeded_rng;

    #[test]
    fn two_layer_default_shapes() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = PinSage::init(&mut store, &ops, 8, 2, &mut seeded_rng(1));
        // e_s + e_h + 2 * (q, w).
        assert_eq!(store.len(), 6);
        let mut tape = Tape::new(&store);
        let mut rng = seeded_rng(2);
        let mut ctx = ForwardCtx::inference(&mut rng);
        let (s, h) = model.embed(&mut tape, &mut ctx);
        assert_eq!(tape.value(s).shape(), (ops.n_symptoms, 8));
        assert_eq!(tape.value(h).shape(), (ops.n_herbs, 8));
        assert_eq!(model.output_dim(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_depth_rejected() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let _ = PinSage::init(&mut store, &ops, 8, 0, &mut seeded_rng(1));
    }

    #[test]
    fn gradients_flow_everywhere() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = PinSage::init(&mut store, &ops, 8, 2, &mut seeded_rng(1));
        let mut tape = Tape::new(&store);
        let mut rng = seeded_rng(3);
        let mut ctx = ForwardCtx::training(0.0, &mut rng);
        let (s, h) = model.embed(&mut tape, &mut ctx);
        let hg = tape.gather_rows(h, std::sync::Arc::new(vec![0, 1, 2]));
        let sum = tape.add(s, hg);
        let loss = tape.sum_squares(sum);
        let grads = tape.backward(loss);
        assert_eq!(grads.present_count(), store.len());
    }
}
