//! GNN baselines aligned with the paper's protocol (§V-C): each provides an
//! embedding layer; Table IV attaches the same Syndrome Induction head and
//! multi-label loss to all of them.

pub mod gcmc;
pub mod hetegcn;
pub mod ngcf;
pub mod pinsage;

pub use gcmc::GcMc;
pub use hetegcn::HeteGcn;
pub use ngcf::Ngcf;
pub use pinsage::PinSage;

#[cfg(test)]
pub(crate) mod test_support {
    use smgcn_graph::{GraphOperators, SynergyThresholds};

    /// A small shared fixture: 3 symptoms, 4 herbs, overlapping records.
    pub fn toy_ops() -> GraphOperators {
        let records: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![0, 1], vec![0, 1]),
            (vec![1, 2], vec![1, 2]),
            (vec![0, 2], vec![0, 3]),
            (vec![0, 1], vec![0, 1]),
        ];
        GraphOperators::from_records(
            records.iter().map(|(s, h)| (s.as_slice(), h.as_slice())),
            3,
            4,
            SynergyThresholds { x_s: 0, x_h: 0 },
        )
    }
}
