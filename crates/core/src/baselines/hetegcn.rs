//! HeteGCN — the paper's own heterogeneous-graph baseline (§V-C).
//!
//! The symptom–herb, symptom–symptom and herb–herb graphs are integrated
//! into one heterogeneous graph. Every node has two neighbor **types**
//! (symptom neighbors and herb neighbors) and messages are combined with
//! type attention (Eqs. 19–20):
//!
//! ```text
//! b_N = tanh( Σ_t α_t · mean_{n∈N_t} m_n ),    m_n = e_n · T
//! α_t = softmax_t( zᵀ ReLU( W_att (e || mean_t) ) )
//! ```
//!
//! followed by the Eq. 4 concat aggregation. Per the paper, symptom and
//! herb nodes **share** network parameters (one `T`, `W_att`, `z`, `W`),
//! the depth is 1 and the hidden dimension 128.

use rand::rngs::StdRng;
use smgcn_graph::GraphOperators;
use smgcn_tensor::init::xavier_uniform;
use smgcn_tensor::{ParamId, ParamStore, SharedCsr, Tape, Var};

use crate::embedding::{EmbeddingLayer, ForwardCtx};

/// The HeteGCN embedding layer.
pub struct HeteGcn {
    e_s: ParamId,
    e_h: ParamId,
    /// Shared message transform `T` (`d x d`).
    t: ParamId,
    /// Attention projection `W_att` (`2d x d`).
    w_att: ParamId,
    /// Attention vector `z` (`d x 1`).
    z: ParamId,
    /// Shared concat aggregation `W` (`2d x hidden`).
    w: ParamId,
    sh_mean: SharedCsr,
    hs_mean: SharedCsr,
    /// Mean-normalised synergy operators (HeteGCN treats same-type edges as
    /// one neighbor type, aggregated by mean like the others).
    ss_mean: SharedCsr,
    hh_mean: SharedCsr,
    hidden: usize,
}

impl HeteGcn {
    /// Registers parameters; `dim` is the embedding size (64) and `hidden`
    /// the single layer's output width (paper: 128).
    pub fn init(
        store: &mut ParamStore,
        ops: &GraphOperators,
        dim: usize,
        hidden: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            e_s: store.add("hetegcn.e_s", xavier_uniform(ops.n_symptoms, dim, rng)),
            e_h: store.add("hetegcn.e_h", xavier_uniform(ops.n_herbs, dim, rng)),
            t: store.add("hetegcn.t", xavier_uniform(dim, dim, rng)),
            w_att: store.add("hetegcn.w_att", xavier_uniform(2 * dim, dim, rng)),
            z: store.add("hetegcn.z", xavier_uniform(dim, 1, rng)),
            w: store.add("hetegcn.w", xavier_uniform(2 * dim, hidden, rng)),
            sh_mean: ops.sh_mean.clone(),
            hs_mean: ops.hs_mean.clone(),
            ss_mean: SharedCsr::new(ops.ss_sum.forward().row_normalized()),
            hh_mean: SharedCsr::new(ops.hh_sum.forward().row_normalized()),
            hidden,
        }
    }

    /// Attention logit for one neighbor type: `zᵀ ReLU(W_att (e || mean_t))`
    /// as an `n x 1` column.
    fn attention_logit(&self, tape: &mut Tape<'_>, e: Var, type_mean: Var) -> Var {
        let cat = tape.concat_cols(e, type_mean);
        let w_att = tape.param(self.w_att);
        let lin = tape.matmul(cat, w_att);
        let act = tape.relu(lin);
        let z = tape.param(self.z);
        tape.matmul(act, z)
    }

    /// One node-type's propagation: mean messages per neighbor type,
    /// two-way type softmax, weighted sum, tanh, concat-aggregate.
    #[allow(clippy::too_many_arguments)]
    fn propagate(
        &self,
        tape: &mut Tape<'_>,
        ctx: &mut ForwardCtx<'_>,
        e_self: Var,
        same_msgs: Var,
        cross_msgs: Var,
        same_op: &SharedCsr,
        cross_op: &SharedCsr,
    ) -> Var {
        let mean_same = tape.spmm(same_op, same_msgs);
        let mean_cross = tape.spmm(cross_op, cross_msgs);
        // Two-type softmax: α_same = σ(a_same − a_cross), α_cross = 1 − α_same.
        let a_same = self.attention_logit(tape, e_self, mean_same);
        let a_cross = self.attention_logit(tape, e_self, mean_cross);
        let diff = tape.sub(a_same, a_cross);
        let alpha_same = tape.sigmoid(diff);
        let alpha_cross = tape.affine(alpha_same, -1.0, 1.0);
        let weighted_same = tape.scale_rows(mean_same, alpha_same);
        let weighted_cross = tape.scale_rows(mean_cross, alpha_cross);
        let mixed = tape.add(weighted_same, weighted_cross);
        let b_n = tape.tanh(mixed);
        let b_n = ctx.apply_dropout(tape, b_n);
        let cat = tape.concat_cols(e_self, b_n);
        let w = tape.param(self.w);
        let lin = tape.matmul(cat, w);
        tape.tanh(lin)
    }
}

impl EmbeddingLayer for HeteGcn {
    fn name(&self) -> &'static str {
        "HeteGCN"
    }

    fn output_dim(&self) -> usize {
        self.hidden
    }

    fn embed(&self, tape: &mut Tape<'_>, ctx: &mut ForwardCtx<'_>) -> (Var, Var) {
        let e_s = tape.param(self.e_s);
        let e_h = tape.param(self.e_h);
        let t = tape.param(self.t);
        let msg_s = tape.matmul(e_s, t);
        let msg_h = tape.matmul(e_h, t);
        let out_s = self.propagate(tape, ctx, e_s, msg_s, msg_h, &self.ss_mean, &self.sh_mean);
        let out_h = self.propagate(tape, ctx, e_h, msg_h, msg_s, &self.hh_mean, &self.hs_mean);
        (out_s, out_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::toy_ops;
    use smgcn_tensor::init::seeded_rng;

    #[test]
    fn parameter_sharing_across_types() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = HeteGcn::init(&mut store, &ops, 8, 12, &mut seeded_rng(1));
        // e_s, e_h, T, W_att, z, W — six tensors, all network weights shared.
        assert_eq!(store.len(), 6);
        assert_eq!(model.output_dim(), 12);
    }

    #[test]
    fn forward_shapes() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = HeteGcn::init(&mut store, &ops, 8, 12, &mut seeded_rng(1));
        let mut tape = Tape::new(&store);
        let mut rng = seeded_rng(2);
        let mut ctx = ForwardCtx::inference(&mut rng);
        let (s, h) = model.embed(&mut tape, &mut ctx);
        assert_eq!(tape.value(s).shape(), (ops.n_symptoms, 12));
        assert_eq!(tape.value(h).shape(), (ops.n_herbs, 12));
        assert!(tape.value(s).all_finite());
    }

    #[test]
    fn attention_weights_sum_to_one() {
        // Indirect check: α_cross = 1 − α_same by construction (affine).
        // Verify by zeroing one message side: with both logits equal, each
        // type contributes exactly half.
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = HeteGcn::init(&mut store, &ops, 4, 4, &mut seeded_rng(3));
        // Zero W_att makes both logits 0 ⇒ α_same = σ(0) = 0.5.
        let w_att = store
            .iter()
            .find(|(_, n, _)| *n == "hetegcn.w_att")
            .unwrap()
            .0;
        *store.get_mut(w_att) = smgcn_tensor::Matrix::zeros(8, 4);
        let mut tape = Tape::new(&store);
        let mut rng = seeded_rng(4);
        let mut ctx = ForwardCtx::inference(&mut rng);
        let (s, _) = model.embed(&mut tape, &mut ctx);
        assert!(tape.value(s).all_finite());
    }

    #[test]
    fn gradients_flow_everywhere() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = HeteGcn::init(&mut store, &ops, 8, 12, &mut seeded_rng(1));
        let mut tape = Tape::new(&store);
        let mut rng = seeded_rng(5);
        let mut ctx = ForwardCtx::training(0.0, &mut rng);
        let (s, h) = model.embed(&mut tape, &mut ctx);
        let hg = tape.gather_rows(h, std::sync::Arc::new(vec![0, 1, 2]));
        let sum = tape.add(s, hg);
        let loss = tape.sum_squares(sum);
        let grads = tape.backward(loss);
        assert_eq!(grads.present_count(), store.len());
    }
}
