//! GC-MC baseline (Berg et al., *Graph Convolutional Matrix Completion*).
//!
//! Per the paper's setup (§V-C): **one** graph-convolution layer on the
//! symptom–herb interaction graph, hidden dimension equal to the embedding
//! size, and — unlike Bipar-GCN — weights **shared** across node types.
//! Messages are summed (mean-normalised here, matching GC-MC's degree
//! normalisation) then passed through an accumulation nonlinearity and a
//! dense output layer:
//!
//! ```text
//! h_s = ReLU( mean_{h∈N_s} e_h W_conv ),   u_s = ReLU( h_s W_dense )
//! ```

use rand::rngs::StdRng;
use smgcn_graph::GraphOperators;
use smgcn_tensor::init::xavier_uniform;
use smgcn_tensor::{ParamId, ParamStore, SharedCsr, Tape, Var};

use crate::embedding::{EmbeddingLayer, ForwardCtx};

/// The GC-MC embedding layer.
pub struct GcMc {
    e_s: ParamId,
    e_h: ParamId,
    /// Shared convolution weight (`d x d`).
    w_conv: ParamId,
    /// Shared dense output weight (`d x d`).
    w_dense: ParamId,
    sh_mean: SharedCsr,
    hs_mean: SharedCsr,
    dim: usize,
}

impl GcMc {
    /// Registers parameters; `dim` is both embedding and hidden size
    /// (the paper sets hidden = embedding size = 64).
    pub fn init(
        store: &mut ParamStore,
        ops: &GraphOperators,
        dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            e_s: store.add("gcmc.e_s", xavier_uniform(ops.n_symptoms, dim, rng)),
            e_h: store.add("gcmc.e_h", xavier_uniform(ops.n_herbs, dim, rng)),
            w_conv: store.add("gcmc.w_conv", xavier_uniform(dim, dim, rng)),
            w_dense: store.add("gcmc.w_dense", xavier_uniform(dim, dim, rng)),
            sh_mean: ops.sh_mean.clone(),
            hs_mean: ops.hs_mean.clone(),
            dim,
        }
    }
}

impl EmbeddingLayer for GcMc {
    fn name(&self) -> &'static str {
        "GC-MC"
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, tape: &mut Tape<'_>, ctx: &mut ForwardCtx<'_>) -> (Var, Var) {
        let e_s = tape.param(self.e_s);
        let e_h = tape.param(self.e_h);
        let w_conv = tape.param(self.w_conv);
        // Shared-weight messages in both directions.
        let herb_msgs = tape.matmul(e_h, w_conv);
        let sym_msgs = tape.matmul(e_s, w_conv);
        let h_s = tape.spmm(&self.sh_mean, herb_msgs);
        let h_s = tape.relu(h_s);
        let h_s = ctx.apply_dropout(tape, h_s);
        let h_h = tape.spmm(&self.hs_mean, sym_msgs);
        let h_h = tape.relu(h_h);
        let h_h = ctx.apply_dropout(tape, h_h);
        // Dense output layer, also shared.
        let w_dense = tape.param(self.w_dense);
        let u_s = tape.matmul(h_s, w_dense);
        let u_s = tape.relu(u_s);
        let u_h = tape.matmul(h_h, w_dense);
        let u_h = tape.relu(u_h);
        (u_s, u_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::toy_ops;
    use smgcn_tensor::init::seeded_rng;

    #[test]
    fn shapes_and_shared_weights() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = GcMc::init(&mut store, &ops, 8, &mut seeded_rng(1));
        // e_s, e_h, w_conv, w_dense — exactly 4 parameter tensors.
        assert_eq!(store.len(), 4);
        let mut tape = Tape::new(&store);
        let mut rng = seeded_rng(2);
        let mut ctx = ForwardCtx::inference(&mut rng);
        let (s, h) = model.embed(&mut tape, &mut ctx);
        assert_eq!(tape.value(s).shape(), (ops.n_symptoms, 8));
        assert_eq!(tape.value(h).shape(), (ops.n_herbs, 8));
    }

    #[test]
    fn gradients_flow_everywhere() {
        let ops = toy_ops();
        let mut store = ParamStore::new();
        let model = GcMc::init(&mut store, &ops, 8, &mut seeded_rng(1));
        let mut tape = Tape::new(&store);
        let mut rng = seeded_rng(2);
        let mut ctx = ForwardCtx::training(0.0, &mut rng);
        let (s, h) = model.embed(&mut tape, &mut ctx);
        let sg = tape.gather_rows(h, std::sync::Arc::new(vec![0, 1, 2]));
        let sum = tape.add(s, sg);
        let loss = tape.sum_squares(sum);
        let grads = tape.backward(loss);
        assert_eq!(grads.present_count(), 4);
    }
}
