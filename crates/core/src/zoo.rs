//! The model zoo: one constructor per Table IV / Table V row.
//!
//! Alignment follows the paper's protocol exactly (§V-E-1): GC-MC, PinSage
//! and NGCF are "modified by adding the SI part and employing multi-label
//! loss"; HeteGCN "utilizes multi-label loss but without SI" (it mean-pools
//! the symptom set); SMGCN and its ablations come from
//! [`crate::config::ModelConfig`] toggles.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smgcn_graph::GraphOperators;
use smgcn_tensor::ParamStore;

use crate::baselines::{GcMc, HeteGcn, Ngcf, PinSage};
use crate::config::ModelConfig;
use crate::model::Recommender;

/// Every neural model evaluated in the paper's Tables IV and V.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Full SMGCN (Bipar-GCN + SGE + SI).
    Smgcn,
    /// Ablation: Bipar-GCN only (mean-pool syndrome induction).
    BiparGcn,
    /// Ablation: Bipar-GCN + SGE.
    BiparGcnSge,
    /// Ablation: Bipar-GCN + SI.
    BiparGcnSi,
    /// GC-MC baseline (+SI, multi-label).
    GcMc,
    /// PinSage baseline (+SI, multi-label).
    PinSage,
    /// NGCF baseline (+SI, multi-label).
    Ngcf,
    /// HeteGCN baseline (multi-label, mean-pool SI).
    HeteGcn,
}

impl ModelKind {
    /// The Table IV comparison set (neural models; HC-KGETM lives in
    /// `smgcn-topics`).
    pub fn table_iv() -> [ModelKind; 5] {
        [
            Self::GcMc,
            Self::PinSage,
            Self::Ngcf,
            Self::HeteGcn,
            Self::Smgcn,
        ]
    }

    /// The Table V ablation set.
    pub fn table_v() -> [ModelKind; 5] {
        [
            Self::PinSage,
            Self::BiparGcn,
            Self::BiparGcnSge,
            Self::BiparGcnSi,
            Self::Smgcn,
        ]
    }

    /// Paper row label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Smgcn => "SMGCN",
            Self::BiparGcn => "Bipar-GCN",
            Self::BiparGcnSge => "Bipar-GCN w/ SGE",
            Self::BiparGcnSi => "Bipar-GCN w/ SI",
            Self::GcMc => "GC-MC",
            Self::PinSage => "PinSage",
            Self::Ngcf => "NGCF",
            Self::HeteGcn => "HeteGCN",
        }
    }
}

/// Builds a ready-to-train recommender of the requested kind.
///
/// `base` supplies the dimension scheme: SMGCN variants use it verbatim;
/// GC-MC/PinSage/NGCF use `base.embedding_dim` as both embedding and hidden
/// size (§V-D: "the embedding size and the latent dimension are both set to
/// 64"); HeteGCN uses `base.layer_dims[0]` as its hidden width (paper: 128).
pub fn build_model(
    kind: ModelKind,
    ops: &GraphOperators,
    base: &ModelConfig,
    seed: u64,
) -> Recommender {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        ModelKind::Smgcn => Recommender::smgcn(ops, base, seed),
        ModelKind::BiparGcn => {
            let cfg = ModelConfig {
                use_sge: false,
                use_si_mlp: false,
                ..base.clone()
            };
            Recommender::smgcn(ops, &cfg, seed)
        }
        ModelKind::BiparGcnSge => {
            let cfg = ModelConfig {
                use_sge: true,
                use_si_mlp: false,
                ..base.clone()
            };
            Recommender::smgcn(ops, &cfg, seed)
        }
        ModelKind::BiparGcnSi => {
            let cfg = ModelConfig {
                use_sge: false,
                use_si_mlp: true,
                ..base.clone()
            };
            Recommender::smgcn(ops, &cfg, seed)
        }
        ModelKind::GcMc => {
            let mut store = ParamStore::new();
            let emb = GcMc::init(&mut store, ops, base.embedding_dim, &mut rng);
            Recommender::assemble(
                store,
                Box::new(emb),
                ops,
                true,
                base.dropout,
                "GC-MC",
                &mut rng,
            )
        }
        ModelKind::PinSage => {
            let mut store = ParamStore::new();
            let emb = PinSage::init(&mut store, ops, base.embedding_dim, 2, &mut rng);
            Recommender::assemble(
                store,
                Box::new(emb),
                ops,
                true,
                base.dropout,
                "PinSage",
                &mut rng,
            )
        }
        ModelKind::Ngcf => {
            let mut store = ParamStore::new();
            let emb = Ngcf::init(&mut store, ops, base.embedding_dim, 2, &mut rng);
            Recommender::assemble(
                store,
                Box::new(emb),
                ops,
                true,
                base.dropout,
                "NGCF",
                &mut rng,
            )
        }
        ModelKind::HeteGcn => {
            let mut store = ParamStore::new();
            let hidden = base.layer_dims.first().copied().unwrap_or(128);
            let emb = HeteGcn::init(&mut store, ops, base.embedding_dim, hidden, &mut rng);
            // Paper: HeteGCN mean-pools the symptom set (no SI MLP).
            Recommender::assemble(
                store,
                Box::new(emb),
                ops,
                false,
                base.dropout,
                "HeteGCN",
                &mut rng,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::toy_ops;

    fn base() -> ModelConfig {
        ModelConfig {
            embedding_dim: 8,
            layer_dims: vec![8, 12],
            dropout: 0.0,
            use_sge: true,
            use_si_mlp: true,
        }
    }

    #[test]
    fn every_kind_builds_and_predicts() {
        let ops = toy_ops();
        for kind in [
            ModelKind::Smgcn,
            ModelKind::BiparGcn,
            ModelKind::BiparGcnSge,
            ModelKind::BiparGcnSi,
            ModelKind::GcMc,
            ModelKind::PinSage,
            ModelKind::Ngcf,
            ModelKind::HeteGcn,
        ] {
            let model = build_model(kind, &ops, &base(), 5);
            assert_eq!(model.name(), kind.label(), "{kind:?}");
            let scores = model.predict(&[&[0, 1]]);
            assert_eq!(scores.shape(), (1, 4), "{kind:?}");
            assert!(scores.all_finite(), "{kind:?}");
        }
    }

    #[test]
    fn table_sets_match_paper_rows() {
        let labels: Vec<&str> = ModelKind::table_iv().iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["GC-MC", "PinSage", "NGCF", "HeteGCN", "SMGCN"]);
        let ablation: Vec<&str> = ModelKind::table_v().iter().map(|k| k.label()).collect();
        assert_eq!(
            ablation,
            vec![
                "PinSage",
                "Bipar-GCN",
                "Bipar-GCN w/ SGE",
                "Bipar-GCN w/ SI",
                "SMGCN"
            ]
        );
    }

    #[test]
    fn same_seed_same_model() {
        let ops = toy_ops();
        let a = build_model(ModelKind::Smgcn, &ops, &base(), 9);
        let b = build_model(ModelKind::Smgcn, &ops, &base(), 9);
        let sets: Vec<&[u32]> = vec![&[0, 2]];
        assert!(a.predict(&sets).approx_eq(&b.predict(&sets), 0.0));
    }
}
