//! The full recommender: embedding layer + syndrome-aware prediction layer.
//!
//! [`SmgcnEmbedding`] composes Bipar-GCN with the optional Synergy Graph
//! Encoding and the Eq. 11 additive fusion. [`Recommender`] wraps *any*
//! [`EmbeddingLayer`] with the shared Syndrome Induction head and the Eq. 13
//! prediction `g(sc, H) = e_syndrome(sc) · e_H^T`, which is exactly how the
//! paper aligns its baselines for Table IV.

use rand::rngs::StdRng;
use rand::SeedableRng;
use smgcn_graph::GraphOperators;
use smgcn_tensor::{BufferPool, Matrix, ParamStore, SharedCsr, Tape, Var};

use crate::batch::set_pool_matrix;
use crate::bipar_gcn::BiparGcn;
use crate::config::ModelConfig;
use crate::embedding::{EmbeddingLayer, ForwardCtx};
use crate::sge::SynergyGraphEncoding;
use crate::syndrome::SyndromeInduction;

/// SMGCN's multi-graph embedding layer: Bipar-GCN ⊕ SGE (Eq. 11).
pub struct SmgcnEmbedding {
    bipar: BiparGcn,
    sge: Option<SynergyGraphEncoding>,
}

impl SmgcnEmbedding {
    /// Registers all parameters. With `config.use_sge == false` this is the
    /// plain Bipar-GCN embedding of the Table V ablation.
    pub fn init(
        store: &mut ParamStore,
        ops: &GraphOperators,
        config: &ModelConfig,
        rng: &mut StdRng,
    ) -> Self {
        let bipar = BiparGcn::init(store, ops, config, rng);
        let sge = config.use_sge.then(|| {
            SynergyGraphEncoding::init(
                store,
                ops,
                bipar.initial_symptom_embeddings(),
                bipar.initial_herb_embeddings(),
                config.embedding_dim,
                config.final_dim(),
                rng,
            )
        });
        Self { bipar, sge }
    }

    /// Whether the synergy component is active.
    pub fn has_sge(&self) -> bool {
        self.sge.is_some()
    }
}

impl EmbeddingLayer for SmgcnEmbedding {
    fn name(&self) -> &'static str {
        if self.sge.is_some() {
            "SMGCN-embedding"
        } else {
            "Bipar-GCN"
        }
    }

    fn output_dim(&self) -> usize {
        self.bipar.output_dim()
    }

    fn embed(&self, tape: &mut Tape<'_>, ctx: &mut ForwardCtx<'_>) -> (Var, Var) {
        let (b_s, b_h) = self.bipar.embed(tape, ctx);
        match &self.sge {
            Some(sge) => {
                let (r_s, r_h) = sge.encode(tape);
                // Eq. 11: e* = b + r.
                (tape.add(b_s, r_s), tape.add(b_h, r_h))
            }
            None => (b_s, b_h),
        }
    }
}

/// A complete herb recommender with the paper's prediction layer.
pub struct Recommender {
    store: ParamStore,
    embedding: Box<dyn EmbeddingLayer>,
    si: SyndromeInduction,
    n_symptoms: usize,
    n_herbs: usize,
    dropout: f32,
    name: String,
}

impl Recommender {
    /// Assembles a recommender from a pre-initialised embedding layer and
    /// the store holding its parameters. The SI head is registered here.
    pub fn assemble(
        mut store: ParamStore,
        embedding: Box<dyn EmbeddingLayer>,
        ops: &GraphOperators,
        use_si_mlp: bool,
        dropout: f32,
        name: impl Into<String>,
        rng: &mut StdRng,
    ) -> Self {
        let si = SyndromeInduction::init(&mut store, embedding.output_dim(), use_si_mlp, rng);
        Self {
            store,
            embedding,
            si,
            n_symptoms: ops.n_symptoms,
            n_herbs: ops.n_herbs,
            dropout,
            name: name.into(),
        }
    }

    /// Builds the paper's full SMGCN (or an ablation, per `config`).
    pub fn smgcn(ops: &GraphOperators, config: &ModelConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let embedding = SmgcnEmbedding::init(&mut store, ops, config, &mut rng);
        let name = match (config.use_sge, config.use_si_mlp) {
            (true, true) => "SMGCN",
            (true, false) => "Bipar-GCN w/ SGE",
            (false, true) => "Bipar-GCN w/ SI",
            (false, false) => "Bipar-GCN",
        };
        Self::assemble(
            store,
            Box::new(embedding),
            ops,
            config.use_si_mlp,
            config.dropout,
            name,
            &mut rng,
        )
    }

    /// Rebuilds the paper's SMGCN over (possibly grown) graph operators
    /// and warm-starts it from an already-trained parameter store.
    ///
    /// The architecture (`config`) must match the one `trained` came from;
    /// embedding tables may have grown rows (appended symptoms/herbs),
    /// whose tail keeps the fresh seed-`seed` initialisation while every
    /// previously-trained row resumes verbatim. This is the online
    /// refresh path: delta the graphs, warm-start, fine-tune a few epochs
    /// instead of retraining cold.
    pub fn warm_start_smgcn(
        ops: &GraphOperators,
        config: &ModelConfig,
        seed: u64,
        trained: &ParamStore,
    ) -> Result<Self, smgcn_tensor::checkpoint::CheckpointError> {
        let mut model = Self::smgcn(ops, config, seed);
        smgcn_tensor::checkpoint::restore_into_grown(&mut model.store, trained)?;
        Ok(model)
    }

    /// Model display name (Table IV / V row label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Symptom vocabulary size.
    pub fn n_symptoms(&self) -> usize {
        self.n_symptoms
    }

    /// Herb vocabulary size.
    pub fn n_herbs(&self) -> usize {
        self.n_herbs
    }

    /// The parameter store (for optimizers and diagnostics).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable access to parameters (optimizer updates).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Message-dropout rate used in training forward passes.
    pub fn dropout(&self) -> f32 {
        self.dropout
    }

    /// Records the full forward pass on `tape`, returning the `B x H` score
    /// node for the batch described by `set_pool`.
    pub fn forward_scores(
        &self,
        tape: &mut Tape<'_>,
        set_pool: &SharedCsr,
        ctx: &mut ForwardCtx<'_>,
    ) -> Var {
        let (e_s, e_h) = self.embedding.embed(tape, ctx);
        let syndrome = self.si.induce(tape, e_s, set_pool);
        tape.matmul_transb(syndrome, e_h)
    }

    /// Inference: herb probability scores for each symptom set
    /// (`B x H`, higher = more recommended). Deterministic.
    ///
    /// # Panics
    /// Panics on empty input, empty sets or out-of-range symptom ids.
    pub fn predict(&self, symptom_sets: &[&[u32]]) -> Matrix {
        self.predict_impl(symptom_sets, None)
    }

    /// [`predict`](Self::predict) drawing all forward buffers from `pool`
    /// — bit-identical results. Callers scoring many batches (the eval
    /// harness, batch experiments) keep one pool across calls so repeated
    /// forward passes stop allocating.
    pub fn predict_with_pool(&self, symptom_sets: &[&[u32]], pool: &BufferPool) -> Matrix {
        self.predict_impl(symptom_sets, Some(pool))
    }

    fn predict_impl(&self, symptom_sets: &[&[u32]], buffers: Option<&BufferPool>) -> Matrix {
        assert!(!symptom_sets.is_empty(), "predict: no symptom sets given");
        let pool = SharedCsr::new(set_pool_matrix(symptom_sets, self.n_symptoms));
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ForwardCtx::inference(&mut rng);
        let mut tape = match buffers {
            Some(b) => Tape::with_pool(&self.store, b),
            None => Tape::new(&self.store),
        };
        let scores = self.forward_scores(&mut tape, &pool, &mut ctx);
        let out = tape.value(scores).clone();
        tape.recycle();
        out
    }

    /// Top-`k` herb ids for one symptom set, by descending score (the
    /// paper's greedy inference, §IV-E).
    pub fn recommend(&self, symptom_set: &[u32], k: usize) -> Vec<u32> {
        let scores = self.predict(&[symptom_set]);
        top_k_indices(scores.row(0), k)
    }

    /// Materializes the final (post-convolution) embedding matrices:
    /// `(symptoms [S x d], herbs [H x d])`. The embedding layer only
    /// depends on the static graphs, never on a query, so these are
    /// query-independent and can be computed once after training — the
    /// basis of the `smgcn-serve` frozen inference path.
    pub fn final_embeddings(&self) -> (Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = ForwardCtx::inference(&mut rng);
        let mut tape = Tape::new(&self.store);
        let (e_s, e_h) = self.embedding.embed(&mut tape, &mut ctx);
        (tape.value(e_s).clone(), tape.value(e_h).clone())
    }

    /// Clones the syndrome-induction MLP weights `(W_mlp, b_mlp)`, or
    /// `None` when the head is plain average pooling.
    pub fn syndrome_head(&self) -> Option<(Matrix, Matrix)> {
        self.si.export_weights(&self.store)
    }

    /// Saves the trained parameters to a checkpoint file.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), smgcn_tensor::checkpoint::CheckpointError> {
        smgcn_tensor::checkpoint::save_store(&self.store, path)
    }

    /// Restores parameters from a checkpoint into this model. The model
    /// must have been built with the same architecture (names and shapes
    /// are checked).
    pub fn load(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), smgcn_tensor::checkpoint::CheckpointError> {
        let loaded = smgcn_tensor::checkpoint::load_store(path)?;
        smgcn_tensor::checkpoint::restore_into(&mut self.store, &loaded)
    }
}

/// Indices of the `k` largest values, descending (ties by lower index).
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use smgcn_graph::SynergyThresholds;

    fn toy_ops() -> GraphOperators {
        let records: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![0, 1], vec![0, 1]),
            (vec![1, 2], vec![1, 2]),
            (vec![0, 2], vec![0, 3]),
            (vec![0, 1], vec![0, 1]),
        ];
        GraphOperators::from_records(
            records.iter().map(|(s, h)| (s.as_slice(), h.as_slice())),
            3,
            4,
            SynergyThresholds { x_s: 0, x_h: 0 },
        )
    }

    fn small_config() -> ModelConfig {
        ModelConfig {
            embedding_dim: 8,
            layer_dims: vec![8, 12],
            dropout: 0.0,
            use_sge: true,
            use_si_mlp: true,
        }
    }

    #[test]
    fn smgcn_names_follow_ablation() {
        let ops = toy_ops();
        assert_eq!(Recommender::smgcn(&ops, &small_config(), 1).name(), "SMGCN");
        let mut cfg = small_config();
        cfg.use_sge = false;
        assert_eq!(Recommender::smgcn(&ops, &cfg, 1).name(), "Bipar-GCN w/ SI");
        cfg.use_si_mlp = false;
        assert_eq!(Recommender::smgcn(&ops, &cfg, 1).name(), "Bipar-GCN");
    }

    #[test]
    fn predict_shapes_and_determinism() {
        let ops = toy_ops();
        let model = Recommender::smgcn(&ops, &small_config(), 7);
        let sets: Vec<&[u32]> = vec![&[0, 1], &[2]];
        let a = model.predict(&sets);
        let b = model.predict(&sets);
        assert_eq!(a.shape(), (2, 4));
        assert!(a.approx_eq(&b, 0.0));
        assert!(a.all_finite());
    }

    #[test]
    fn recommend_returns_k_distinct() {
        let ops = toy_ops();
        let model = Recommender::smgcn(&ops, &small_config(), 7);
        let rec = model.recommend(&[0, 1], 3);
        assert_eq!(rec.len(), 3);
        let mut dedup = rec.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn top_k_indices_orders_desc() {
        assert_eq!(top_k_indices(&[0.1, 0.9, 0.5], 2), vec![1, 2]);
        assert_eq!(
            top_k_indices(&[1.0, 1.0], 2),
            vec![0, 1],
            "ties break by index"
        );
        assert_eq!(
            top_k_indices(&[0.3], 5),
            vec![0],
            "k beyond length truncates"
        );
    }

    #[test]
    fn gradients_cover_all_params_in_training_graph() {
        let ops = toy_ops();
        let model = Recommender::smgcn(&ops, &small_config(), 3);
        let sets: Vec<&[u32]> = vec![&[0, 1], &[2]];
        let pool = SharedCsr::new(set_pool_matrix(&sets, 3));
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx = ForwardCtx::training(0.0, &mut rng);
        let mut tape = Tape::new(model.store());
        let scores = model.forward_scores(&mut tape, &pool, &mut ctx);
        let target = std::sync::Arc::new(Matrix::from_fn(2, 4, |r, c| ((r + c) % 2) as f32));
        let weights = std::sync::Arc::new(vec![1.0f32; 4]);
        let loss = tape.weighted_mse(scores, target, weights);
        let grads = tape.backward(loss);
        assert_eq!(
            grads.present_count(),
            model.store().len(),
            "every parameter should be in the training graph"
        );
    }

    #[test]
    fn sge_toggle_changes_scores() {
        let ops = toy_ops();
        let with = Recommender::smgcn(&ops, &small_config(), 11);
        let mut cfg = small_config();
        cfg.use_sge = false;
        let without = Recommender::smgcn(&ops, &cfg, 11);
        let sets: Vec<&[u32]> = vec![&[0]];
        assert!(!with.predict(&sets).approx_eq(&without.predict(&sets), 1e-9));
    }

    #[test]
    #[should_panic(expected = "no symptom sets")]
    fn predict_rejects_empty_batch() {
        let ops = toy_ops();
        let model = Recommender::smgcn(&ops, &small_config(), 1);
        let _ = model.predict(&[]);
    }
}
