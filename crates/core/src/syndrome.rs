//! Syndrome Induction (§IV-D, Eq. 12, Fig. 4).
//!
//! Given the fused symptom embeddings and a batch of symptom sets, the SI
//! component mean-pools each set's embeddings and (in the full model)
//! transforms the pooled vector with a single-layer MLP:
//!
//! ```text
//! e_syndrome(sc) = ReLU( W_mlp · Mean(e_sc) + b_mlp )
//! ```
//!
//! With the MLP disabled the component reduces to plain average pooling —
//! the "Bipar-GCN" ablation rows of Table V.

use rand::rngs::StdRng;
use smgcn_tensor::init::xavier_uniform;
use smgcn_tensor::{Matrix, ParamId, ParamStore, SharedCsr, Tape, Var};

/// The syndrome-induction head.
pub struct SyndromeInduction {
    /// `W_mlp` and `b_mlp`; `None` = average pooling only.
    mlp: Option<(ParamId, ParamId)>,
    dim: usize,
}

impl SyndromeInduction {
    /// Registers MLP parameters when `use_mlp` is set. `dim` is the fused
    /// embedding dimension (the MLP is square, `d -> d`, per Fig. 4).
    pub fn init(store: &mut ParamStore, dim: usize, use_mlp: bool, rng: &mut StdRng) -> Self {
        let mlp = use_mlp.then(|| {
            let w = store.add("si.w_mlp", xavier_uniform(dim, dim, rng));
            let b = store.add("si.b_mlp", Matrix::zeros(1, dim));
            (w, b)
        });
        Self { mlp, dim }
    }

    /// Syndrome embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True when the nonlinear MLP transform is active.
    pub fn has_mlp(&self) -> bool {
        self.mlp.is_some()
    }

    /// Clones the MLP weights `(W_mlp [d x d], b_mlp [1 x d])` out of
    /// `store`, for freezing the head into a serving-side model.
    pub fn export_weights(&self, store: &ParamStore) -> Option<(Matrix, Matrix)> {
        self.mlp
            .map(|(w, b)| (store.get(w).clone(), store.get(b).clone()))
    }

    /// Induces the batch's syndrome representations: `set_pool` is the
    /// `B x S` row-normalised incidence operator (mean pooling), and
    /// `fused_symptoms` the `S x d` fused embedding matrix `e*_s`.
    pub fn induce(&self, tape: &mut Tape<'_>, fused_symptoms: Var, set_pool: &SharedCsr) -> Var {
        let pooled = tape.spmm(set_pool, fused_symptoms);
        match self.mlp {
            Some((w, b)) => {
                let wv = tape.param(w);
                let lin = tape.matmul(pooled, wv);
                let bv = tape.param(b);
                let lin = tape.add_bias(lin, bv);
                tape.relu(lin)
            }
            None => pooled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smgcn_tensor::init::seeded_rng;
    use smgcn_tensor::CsrMatrix;

    fn pool() -> SharedCsr {
        // Two sets over 3 symptoms: {0, 1} and {2}.
        SharedCsr::new(CsrMatrix::from_triplets(
            2,
            3,
            &[(0, 0, 0.5), (0, 1, 0.5), (1, 2, 1.0)],
        ))
    }

    #[test]
    fn mean_pooling_without_mlp() {
        let mut store = ParamStore::new();
        let si = SyndromeInduction::init(&mut store, 2, false, &mut seeded_rng(1));
        assert!(!si.has_mlp());
        let e = store.add(
            "e",
            Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        );
        let mut tape = Tape::new(&store);
        let ev = tape.param(e);
        let syndrome = si.induce(&mut tape, ev, &pool());
        // Set {0,1}: mean of [1,2] and [3,4] = [2,3]; set {2}: [5,6].
        assert_eq!(tape.value(syndrome).row(0), &[2.0, 3.0]);
        assert_eq!(tape.value(syndrome).row(1), &[5.0, 6.0]);
    }

    #[test]
    fn mlp_applies_relu_nonlinearity() {
        let mut store = ParamStore::new();
        let si = SyndromeInduction::init(&mut store, 2, true, &mut seeded_rng(1));
        assert!(si.has_mlp());
        // Force W = -I so positive pooled values go negative and ReLU clamps.
        let w_id = store.iter().find(|(_, n, _)| *n == "si.w_mlp").unwrap().0;
        *store.get_mut(w_id) = Matrix::identity(2).scale(-1.0);
        let e = store.add("e", Matrix::filled(3, 2, 1.0));
        let mut tape = Tape::new(&store);
        let ev = tape.param(e);
        let syndrome = si.induce(&mut tape, ev, &pool());
        assert!(tape.value(syndrome).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradients_flow_through_mlp() {
        let mut store = ParamStore::new();
        let si = SyndromeInduction::init(&mut store, 2, true, &mut seeded_rng(2));
        let e = store.add("e", Matrix::filled(3, 2, 0.5));
        let mut tape = Tape::new(&store);
        let ev = tape.param(e);
        let syndrome = si.induce(&mut tape, ev, &pool());
        let loss = tape.sum_squares(syndrome);
        let grads = tape.backward(loss);
        assert!(
            grads.get(e).is_some(),
            "pooled embeddings must receive gradient"
        );
        assert_eq!(grads.present_count(), 3, "W_mlp, b_mlp and e all train");
    }

    #[test]
    fn mlp_bias_starts_at_zero() {
        let mut store = ParamStore::new();
        let _ = SyndromeInduction::init(&mut store, 4, true, &mut seeded_rng(3));
        let b = store.iter().find(|(_, n, _)| *n == "si.b_mlp").unwrap().2;
        assert_eq!(b.sum(), 0.0);
        assert_eq!(b.shape(), (1, 4));
    }
}
