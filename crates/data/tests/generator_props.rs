//! Property-based tests for the corpus model and generator invariants.

use proptest::prelude::*;
use smgcn_data::generator::{GeneratorConfig, SyndromeModel};
use smgcn_data::{corpus_stats, herb_loss_weights, train_test_split, Prescription};

fn small_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        20usize..40,
        30usize..60,
        3usize..8,
        100usize..250,
        1u64..500,
    )
        .prop_map(|(n_s, n_h, k, n_rx, seed)| GeneratorConfig {
            n_symptoms: n_s,
            n_herbs: n_h,
            n_syndromes: k,
            n_prescriptions: n_rx,
            symptoms_per_rx: (2, 4),
            herbs_per_rx: (3, 6),
            symptom_support: 8.min(n_s),
            herb_support: 12.min(n_h),
            second_syndrome_prob: 0.3,
            popularity_mix: 0.2,
            zipf_exponent: 1.0,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_corpus_is_well_formed(cfg in small_config()) {
        let corpus = SyndromeModel::new(cfg.clone()).generate();
        prop_assert_eq!(corpus.len(), cfg.n_prescriptions);
        for p in corpus.prescriptions() {
            prop_assert!(!p.symptoms().is_empty());
            prop_assert!(!p.herbs().is_empty());
            // Sets are sorted + deduplicated.
            let mut s = p.symptoms().to_vec();
            s.dedup();
            prop_assert_eq!(s.as_slice(), p.symptoms());
            prop_assert!(p.symptoms().windows(2).all(|w| w[0] < w[1]));
            prop_assert!(p.herbs().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn full_vocabulary_coverage(cfg in small_config()) {
        let corpus = SyndromeModel::new(cfg.clone()).generate();
        let stats = corpus_stats(&corpus);
        prop_assert_eq!(stats.n_symptoms_used, cfg.n_symptoms);
        prop_assert_eq!(stats.n_herbs_used, cfg.n_herbs);
    }

    #[test]
    fn split_partitions_exactly(cfg in small_config(), test_size in 1usize..50, seed in 0u64..100) {
        let corpus = SyndromeModel::new(cfg).generate();
        let test_size = test_size.min(corpus.len() - 1);
        let split = train_test_split(&corpus, test_size, seed);
        prop_assert_eq!(split.test.len(), test_size);
        prop_assert_eq!(split.train.len() + split.test.len(), corpus.len());
    }

    #[test]
    fn loss_weights_inverse_order(freqs in proptest::collection::vec(0u32..500, 2..40)) {
        let w = herb_loss_weights(&freqs);
        prop_assert_eq!(w.len(), freqs.len());
        // More frequent herbs never get a larger weight.
        for i in 0..freqs.len() {
            for j in 0..freqs.len() {
                if freqs[i] >= freqs[j].max(1) {
                    prop_assert!(w[i] <= w[j] + 1e-6);
                }
            }
        }
        // Weights are at least 1 (the most frequent herb has weight 1).
        if freqs.iter().any(|&f| f > 0) {
            prop_assert!(w.iter().all(|&x| x >= 1.0 - 1e-6));
        }
    }

    #[test]
    fn prescription_canonical_equality(
        s in proptest::collection::vec(0u32..30, 1..6),
        h in proptest::collection::vec(0u32..30, 1..6),
    ) {
        let a = Prescription::new(s.clone(), h.clone());
        let mut s2 = s.clone();
        s2.reverse();
        let mut h2 = h.clone();
        h2.reverse();
        let b = Prescription::new(s2, h2);
        prop_assert_eq!(a, b);
    }
}
