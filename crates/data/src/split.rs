//! Train/test splitting.
//!
//! The paper uses a fixed 22,917 / 3,443 split of the 26,360 prescriptions
//! (Table II). We reproduce it with a seeded shuffle so the same corpus and
//! seed always give the same partition.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::corpus::Corpus;

/// A train/test partition of a corpus (vocabularies shared).
#[derive(Clone, Debug)]
pub struct Split {
    /// Training prescriptions.
    pub train: Corpus,
    /// Held-out test prescriptions.
    pub test: Corpus,
}

/// Splits off exactly `test_size` prescriptions after a seeded shuffle.
///
/// # Panics
/// Panics if `test_size >= corpus.len()`.
pub fn train_test_split(corpus: &Corpus, test_size: usize, seed: u64) -> Split {
    assert!(
        test_size < corpus.len(),
        "train_test_split: test size {} must leave at least one training prescription of {}",
        test_size,
        corpus.len()
    );
    let mut indices: Vec<usize> = (0..corpus.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let (test_idx, train_idx) = indices.split_at(test_size);
    Split {
        train: corpus.subset(train_idx),
        test: corpus.subset(test_idx),
    }
}

/// Splits off a fraction (rounded down) as the test set.
///
/// # Panics
/// Panics unless `0 < fraction < 1`.
pub fn train_test_split_fraction(corpus: &Corpus, fraction: f64, seed: u64) -> Split {
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "train_test_split_fraction: fraction must be in (0, 1), got {fraction}"
    );
    let test_size = ((corpus.len() as f64) * fraction) as usize;
    train_test_split(corpus, test_size.max(1), seed)
}

/// The paper's test-set proportion: 3,443 of 26,360 prescriptions.
pub const PAPER_TEST_FRACTION: f64 = 3_443.0 / 26_360.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, SyndromeModel};

    fn corpus() -> Corpus {
        SyndromeModel::new(GeneratorConfig::tiny_scale()).generate()
    }

    #[test]
    fn sizes_add_up() {
        let c = corpus();
        let split = train_test_split(&c, 50, 1);
        assert_eq!(split.test.len(), 50);
        assert_eq!(split.train.len(), c.len() - 50);
    }

    #[test]
    fn split_is_deterministic() {
        let c = corpus();
        let a = train_test_split(&c, 40, 9);
        let b = train_test_split(&c, 40, 9);
        assert_eq!(a.test.prescriptions(), b.test.prescriptions());
        let other = train_test_split(&c, 40, 10);
        assert_ne!(a.test.prescriptions(), other.test.prescriptions());
    }

    #[test]
    fn partitions_are_disjoint_and_exhaustive() {
        let c = corpus();
        let split = train_test_split(&c, 60, 3);
        let mut all: Vec<_> = split.train.prescriptions().to_vec();
        all.extend_from_slice(split.test.prescriptions());
        let mut original = c.prescriptions().to_vec();
        all.sort_by(|a, b| (a.symptoms(), a.herbs()).cmp(&(b.symptoms(), b.herbs())));
        original.sort_by(|a, b| (a.symptoms(), a.herbs()).cmp(&(b.symptoms(), b.herbs())));
        assert_eq!(all, original);
    }

    #[test]
    fn fraction_split_matches_paper_ratio() {
        let c = corpus();
        let split = train_test_split_fraction(&c, PAPER_TEST_FRACTION, 7);
        let frac = split.test.len() as f64 / c.len() as f64;
        assert!((frac - PAPER_TEST_FRACTION).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "must leave at least one")]
    fn rejects_oversized_test() {
        let c = corpus();
        let _ = train_test_split(&c, c.len(), 1);
    }
}
