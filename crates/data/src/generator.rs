//! Latent-syndrome synthetic corpus generator.
//!
//! The paper evaluates on a public TCM corpus (ref. \[5\]) that is not redistributable
//! here, so this module generates a corpus with the *same statistical
//! structure* (DESIGN.md §2 documents the substitution):
//!
//! 1. **Latent syndrome layer.** `K` latent syndromes each own a weighted
//!    symptom distribution and a weighted herb distribution over modest
//!    supports. A prescription samples one syndrome (sometimes two — the
//!    paper's Fig. 1 shows exactly this main + optional syndrome ambiguity),
//!    draws its symptom set from the syndrome(s), and its herb set from the
//!    syndrome(s) as well. Symptoms are therefore only predictive of herbs
//!    *through* the syndrome — the structure Syndrome Induction exploits.
//! 2. **Shared symptoms.** Syndrome supports overlap, so a single symptom
//!    appears under several syndromes (the ambiguity §I stresses).
//! 3. **Heavy-tailed herb popularity.** A global Zipf-weighted "common herb"
//!    component (licorice-like ubiquitous herbs) is mixed into every herb
//!    draw, reproducing Fig. 5's imbalanced frequency distribution that
//!    motivates the weighted loss of Eq. 15.
//! 4. **Herb compatibility.** Herbs drawn from the same syndrome support
//!    systematically co-occur, giving the `HH` synergy graph real signal.
//!
//! Generation is fully deterministic from `GeneratorConfig::seed`.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::corpus::Corpus;
use crate::prescription::Prescription;
use crate::vocab::{herb_vocabulary, symptom_vocabulary};

/// Configuration of the synthetic corpus.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Symptom vocabulary size `|S|`.
    pub n_symptoms: usize,
    /// Herb vocabulary size `|H|`.
    pub n_herbs: usize,
    /// Number of latent syndromes `K`.
    pub n_syndromes: usize,
    /// Number of prescriptions to generate.
    pub n_prescriptions: usize,
    /// Inclusive range of symptom-set sizes.
    pub symptoms_per_rx: (usize, usize),
    /// Inclusive range of herb-set sizes.
    pub herbs_per_rx: (usize, usize),
    /// Symptoms in each syndrome's support.
    pub symptom_support: usize,
    /// Herbs in each syndrome's support.
    pub herb_support: usize,
    /// Probability a prescription reflects a second syndrome.
    pub second_syndrome_prob: f64,
    /// Probability each herb draw comes from the global popularity
    /// component instead of the syndrome-specific distribution.
    pub popularity_mix: f64,
    /// Zipf exponent of the global herb-popularity component.
    pub zipf_exponent: f64,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Full paper scale: Table II's 26,360 prescriptions over 360 symptoms
    /// and 753 herbs.
    pub fn paper_scale() -> Self {
        Self {
            n_symptoms: 360,
            n_herbs: 753,
            // Enough distinct syndromes that the corpus does not saturate
            // every support×support pair (real TCM nosology distinguishes
            // hundreds of zheng patterns).
            n_syndromes: 96,
            n_prescriptions: 26_360,
            symptoms_per_rx: (3, 9),
            herbs_per_rx: (6, 14),
            symptom_support: 20,
            herb_support: 32,
            second_syndrome_prob: 0.30,
            popularity_mix: 0.15,
            zipf_exponent: 1.05,
            seed: 20200220, // the paper's arXiv date
        }
    }

    /// Reduced scale for tests and smoke experiments: same structure,
    /// minutes-not-hours training.
    pub fn smoke_scale() -> Self {
        Self {
            n_symptoms: 120,
            n_herbs: 260,
            n_syndromes: 28,
            n_prescriptions: 3_000,
            symptoms_per_rx: (3, 6),
            herbs_per_rx: (4, 10),
            symptom_support: 12,
            herb_support: 20,
            second_syndrome_prob: 0.30,
            popularity_mix: 0.15,
            zipf_exponent: 1.05,
            seed: 20200220,
        }
    }

    /// Tiny scale for unit tests.
    pub fn tiny_scale() -> Self {
        Self {
            n_symptoms: 30,
            n_herbs: 50,
            n_syndromes: 5,
            n_prescriptions: 300,
            symptoms_per_rx: (2, 5),
            herbs_per_rx: (3, 7),
            symptom_support: 9,
            herb_support: 14,
            second_syndrome_prob: 0.3,
            popularity_mix: 0.25,
            zipf_exponent: 1.0,
            seed: 7,
        }
    }

    /// Returns a copy with a different seed (for multi-run robustness
    /// experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) {
        assert!(
            self.n_symptoms > 0 && self.n_herbs > 0,
            "vocabulary sizes must be positive"
        );
        assert!(self.n_syndromes > 0, "need at least one syndrome");
        assert!(
            self.symptom_support <= self.n_symptoms && self.herb_support <= self.n_herbs,
            "support sizes exceed vocabulary"
        );
        assert!(
            self.symptoms_per_rx.0 >= 1
                && self.symptoms_per_rx.0 <= self.symptoms_per_rx.1
                && self.symptoms_per_rx.1 <= self.symptom_support,
            "symptom set size range {:?} incompatible with support {}",
            self.symptoms_per_rx,
            self.symptom_support
        );
        assert!(
            self.herbs_per_rx.0 >= 1
                && self.herbs_per_rx.0 <= self.herbs_per_rx.1
                && self.herbs_per_rx.1 <= self.herb_support,
            "herb set size range {:?} incompatible with support {}",
            self.herbs_per_rx,
            self.herb_support
        );
        assert!((0.0..=1.0).contains(&self.second_syndrome_prob));
        assert!((0.0..=1.0).contains(&self.popularity_mix));
    }
}

/// One latent syndrome: weighted supports over symptoms and herbs.
#[derive(Clone, Debug)]
pub struct Syndrome {
    /// Ids of symptoms this syndrome can manifest.
    pub symptoms: Vec<u32>,
    /// Sampling weights aligned with `symptoms` (geometric decay: every
    /// syndrome has a few cardinal symptoms and a tail of incidental ones).
    pub symptom_weights: Vec<f64>,
    /// Ids of herbs used against this syndrome.
    pub herbs: Vec<u32>,
    /// Sampling weights aligned with `herbs`.
    pub herb_weights: Vec<f64>,
}

/// The generator: latent syndromes plus global popularity components.
pub struct SyndromeModel {
    config: GeneratorConfig,
    syndromes: Vec<Syndrome>,
    /// Prevalence weights over syndromes.
    prevalence: Vec<f64>,
    /// Global Zipf popularity over all herbs (ubiquitous-herb component).
    herb_popularity: Vec<f64>,
}

fn geometric_weights(n: usize, ratio: f64) -> Vec<f64> {
    (0..n).map(|i| ratio.powi(i as i32)).collect()
}

impl SyndromeModel {
    /// Draws the latent structure from the config's seed.
    pub fn new(config: GeneratorConfig) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut all_symptoms: Vec<u32> = (0..config.n_symptoms as u32).collect();
        let mut all_herbs: Vec<u32> = (0..config.n_herbs as u32).collect();

        let mut syndromes = Vec::with_capacity(config.n_syndromes);
        for k in 0..config.n_syndromes {
            // Rotate + shuffle so supports overlap but every id lands in at
            // least one support across syndromes (coverage then guarantees
            // every entity can appear in the corpus).
            let rot_s = ((k * config.n_symptoms) / config.n_syndromes)
                .min(all_symptoms.len().saturating_sub(1));
            all_symptoms.rotate_left(rot_s);
            let mut symptoms: Vec<u32> = all_symptoms
                .iter()
                .copied()
                .take(config.symptom_support)
                .collect();
            symptoms.extend(
                all_symptoms[config.symptom_support..]
                    .choose_multiple(&mut rng, config.symptom_support / 4)
                    .copied(),
            );
            symptoms.truncate(config.symptom_support);
            symptoms.shuffle(&mut rng);

            let rot_h =
                ((k * config.n_herbs) / config.n_syndromes).min(all_herbs.len().saturating_sub(1));
            all_herbs.rotate_left(rot_h);
            let mut herbs: Vec<u32> = all_herbs
                .iter()
                .copied()
                .take(config.herb_support)
                .collect();
            herbs.extend(
                all_herbs[config.herb_support..]
                    .choose_multiple(&mut rng, config.herb_support / 4)
                    .copied(),
            );
            herbs.truncate(config.herb_support);
            herbs.shuffle(&mut rng);

            syndromes.push(Syndrome {
                symptom_weights: geometric_weights(symptoms.len(), 0.82),
                symptoms,
                herb_weights: geometric_weights(herbs.len(), 0.86),
                herbs,
            });
        }

        // Syndrome prevalence: mildly skewed so common conditions dominate
        // like in a real clinic corpus.
        let prevalence: Vec<f64> = (0..config.n_syndromes)
            .map(|k| 1.0 / (1.0 + k as f64).sqrt())
            .collect();
        // Global herb popularity: Zipf over a seed-shuffled herb order.
        let mut order: Vec<u32> = (0..config.n_herbs as u32).collect();
        order.shuffle(&mut rng);
        let mut herb_popularity = vec![0.0f64; config.n_herbs];
        for (rank, &h) in order.iter().enumerate() {
            herb_popularity[h as usize] = 1.0 / ((rank + 1) as f64).powf(config.zipf_exponent);
        }

        Self {
            config,
            syndromes,
            prevalence,
            herb_popularity,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// The latent syndromes (exposed for diagnostics and tests).
    pub fn syndromes(&self) -> &[Syndrome] {
        &self.syndromes
    }

    /// Samples one prescription and returns it with the syndrome ids that
    /// produced it (the "ground truth" the corpus withholds from models).
    pub fn sample_with_syndromes(&self, rng: &mut StdRng) -> (Prescription, Vec<usize>) {
        let prevalence = WeightedIndex::new(&self.prevalence).expect("non-empty prevalence");
        let primary = prevalence.sample(rng);
        let mut active = vec![primary];
        if rng.gen_bool(self.config.second_syndrome_prob) {
            let secondary = prevalence.sample(rng);
            if secondary != primary {
                active.push(secondary);
            }
        }

        let n_sym = rng.gen_range(self.config.symptoms_per_rx.0..=self.config.symptoms_per_rx.1);
        let n_herb = rng.gen_range(self.config.herbs_per_rx.0..=self.config.herbs_per_rx.1);

        let symptoms = self.sample_set(rng, &active, n_sym, SetKind::Symptoms);
        let herbs = self.sample_set(rng, &active, n_herb, SetKind::Herbs);
        (Prescription::new(symptoms, herbs), active)
    }

    fn sample_set(
        &self,
        rng: &mut StdRng,
        active: &[usize],
        target: usize,
        kind: SetKind,
    ) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::with_capacity(target);
        let mut guard = 0;
        while out.len() < target && guard < target * 40 {
            guard += 1;
            let syndrome = &self.syndromes[active[rng.gen_range(0..active.len())]];
            let id = match kind {
                SetKind::Symptoms => {
                    let idx = WeightedIndex::new(&syndrome.symptom_weights)
                        .expect("weights")
                        .sample(rng);
                    syndrome.symptoms[idx]
                }
                SetKind::Herbs => {
                    if rng.gen_bool(self.config.popularity_mix) {
                        // Ubiquitous-herb component (licorice effect).
                        let idx = WeightedIndex::new(&self.herb_popularity)
                            .expect("weights")
                            .sample(rng);
                        idx as u32
                    } else {
                        let idx = WeightedIndex::new(&syndrome.herb_weights)
                            .expect("weights")
                            .sample(rng);
                        syndrome.herbs[idx]
                    }
                }
            };
            if !out.contains(&id) {
                out.push(id);
            }
        }
        out
    }

    /// Generates the full corpus: prescriptions plus named vocabularies.
    ///
    /// A final coverage pass guarantees every symptom and herb id occurs at
    /// least once (Table II counts the whole vocabulary as present in the
    /// corpus), by swapping unseen ids into randomly chosen prescriptions.
    pub fn generate(&self) -> Corpus {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut prescriptions = Vec::with_capacity(self.config.n_prescriptions);
        for _ in 0..self.config.n_prescriptions {
            prescriptions.push(self.sample_with_syndromes(&mut rng).0);
        }
        self.ensure_coverage(&mut prescriptions, &mut rng);
        Corpus::new(
            symptom_vocabulary(self.config.n_symptoms),
            herb_vocabulary(self.config.n_herbs),
            prescriptions,
        )
    }

    fn ensure_coverage(&self, prescriptions: &mut [Prescription], rng: &mut StdRng) {
        let mut seen_s = vec![false; self.config.n_symptoms];
        let mut seen_h = vec![false; self.config.n_herbs];
        for p in prescriptions.iter() {
            for &s in p.symptoms() {
                seen_s[s as usize] = true;
            }
            for &h in p.herbs() {
                seen_h[h as usize] = true;
            }
        }
        let missing_s: Vec<u32> = (0..self.config.n_symptoms as u32)
            .filter(|&s| !seen_s[s as usize])
            .collect();
        let missing_h: Vec<u32> = (0..self.config.n_herbs as u32)
            .filter(|&h| !seen_h[h as usize])
            .collect();
        for s in missing_s {
            let idx = rng.gen_range(0..prescriptions.len());
            let p = &prescriptions[idx];
            let mut symptoms = p.symptoms().to_vec();
            symptoms.push(s);
            prescriptions[idx] = Prescription::new(symptoms, p.herbs().to_vec());
        }
        for h in missing_h {
            let idx = rng.gen_range(0..prescriptions.len());
            let p = &prescriptions[idx];
            let mut herbs = p.herbs().to_vec();
            herbs.push(h);
            prescriptions[idx] = Prescription::new(p.symptoms().to_vec(), herbs);
        }
    }
}

#[derive(Clone, Copy)]
enum SetKind {
    Symptoms,
    Herbs,
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyndromeModel::new(GeneratorConfig::tiny_scale()).generate();
        let b = SyndromeModel::new(GeneratorConfig::tiny_scale()).generate();
        assert_eq!(a.prescriptions(), b.prescriptions());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyndromeModel::new(GeneratorConfig::tiny_scale()).generate();
        let b = SyndromeModel::new(GeneratorConfig::tiny_scale().with_seed(99)).generate();
        assert_ne!(a.prescriptions(), b.prescriptions());
    }

    #[test]
    fn corpus_has_requested_size_and_coverage() {
        let cfg = GeneratorConfig::tiny_scale();
        let corpus = SyndromeModel::new(cfg.clone()).generate();
        assert_eq!(corpus.len(), cfg.n_prescriptions);
        // Coverage pass guarantees every id appears.
        let mut seen_s = vec![false; cfg.n_symptoms];
        let mut seen_h = vec![false; cfg.n_herbs];
        for p in corpus.prescriptions() {
            for &s in p.symptoms() {
                seen_s[s as usize] = true;
            }
            for &h in p.herbs() {
                seen_h[h as usize] = true;
            }
        }
        assert!(seen_s.iter().all(|&b| b), "all symptoms must appear");
        assert!(seen_h.iter().all(|&b| b), "all herbs must appear");
    }

    #[test]
    fn set_sizes_respect_ranges() {
        let cfg = GeneratorConfig::tiny_scale();
        let corpus = SyndromeModel::new(cfg.clone()).generate();
        for p in corpus.prescriptions() {
            // Coverage repair can push a set one past the configured max.
            assert!(p.symptoms().len() >= cfg.symptoms_per_rx.0.min(1));
            assert!(p.symptoms().len() <= cfg.symptoms_per_rx.1 + 1);
            assert!(p.herbs().len() <= cfg.herbs_per_rx.1 + 1);
            assert!(!p.herbs().is_empty());
        }
    }

    #[test]
    fn herb_frequencies_are_heavy_tailed() {
        let cfg = GeneratorConfig::tiny_scale();
        let corpus = SyndromeModel::new(cfg.clone()).generate();
        let mut freq = vec![0u32; cfg.n_herbs];
        for p in corpus.prescriptions() {
            for &h in p.herbs() {
                freq[h as usize] += 1;
            }
        }
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // The head herb must be much more frequent than the median herb —
        // the Fig. 5 imbalance the weighted loss corrects for.
        let head = freq[0] as f64;
        let median = freq[cfg.n_herbs / 2].max(1) as f64;
        assert!(head / median > 3.0, "head {head} median {median}");
    }

    #[test]
    fn symptoms_shared_across_syndromes() {
        let model = SyndromeModel::new(GeneratorConfig::tiny_scale());
        let mut membership = vec![0usize; model.config().n_symptoms];
        for syn in model.syndromes() {
            for &s in &syn.symptoms {
                membership[s as usize] += 1;
            }
        }
        let shared = membership.iter().filter(|&&m| m >= 2).count();
        assert!(
            shared * 2 >= model.config().n_symptoms / 2,
            "too few ambiguous symptoms: {shared}"
        );
    }

    #[test]
    fn sample_reports_active_syndromes() {
        let model = SyndromeModel::new(GeneratorConfig::tiny_scale());
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_two = false;
        for _ in 0..50 {
            let (p, active) = model.sample_with_syndromes(&mut rng);
            assert!(!active.is_empty() && active.len() <= 2);
            assert!(!p.symptoms().is_empty());
            saw_two |= active.len() == 2;
        }
        assert!(saw_two, "second-syndrome path never exercised");
    }

    #[test]
    #[should_panic(expected = "incompatible with support")]
    fn validate_rejects_bad_ranges() {
        let mut cfg = GeneratorConfig::tiny_scale();
        cfg.symptoms_per_rx = (2, 100);
        let _ = SyndromeModel::new(cfg);
    }

    #[test]
    fn paper_scale_matches_table_ii() {
        let cfg = GeneratorConfig::paper_scale();
        assert_eq!(cfg.n_prescriptions, 26_360);
        assert_eq!(cfg.n_symptoms, 360);
        assert_eq!(cfg.n_herbs, 753);
    }
}
