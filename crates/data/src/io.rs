//! Plain-text corpus serialisation.
//!
//! The format mirrors the paper's Fig. 6 prescription records: one
//! prescription per line, symptom ids space-separated, a tab, then herb ids
//! space-separated. Two header lines carry the vocabularies (name per id,
//! tab-separated) so a file round-trips the whole corpus:
//!
//! ```text
//! #symptoms<TAB>name0<TAB>name1<TAB>...
//! #herbs<TAB>name0<TAB>name1<TAB>...
//! 0 4 17<TAB>3 9 12 40
//! ...
//! ```

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use crate::corpus::Corpus;
use crate::prescription::Prescription;
use crate::vocab::Vocabulary;

/// Errors from corpus IO.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Structural problem in the file, with a line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a corpus to a writer in the Fig. 6-style text format.
pub fn write_corpus(corpus: &Corpus, w: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    write!(w, "#symptoms")?;
    for (_, name) in corpus.symptom_vocab().iter() {
        write!(w, "\t{name}")?;
    }
    writeln!(w)?;
    write!(w, "#herbs")?;
    for (_, name) in corpus.herb_vocab().iter() {
        write!(w, "\t{name}")?;
    }
    writeln!(w)?;
    for p in corpus.prescriptions() {
        let symptoms: Vec<String> = p.symptoms().iter().map(u32::to_string).collect();
        let herbs: Vec<String> = p.herbs().iter().map(u32::to_string).collect();
        writeln!(w, "{}\t{}", symptoms.join(" "), herbs.join(" "))?;
    }
    w.flush()?;
    Ok(())
}

/// Saves a corpus to a file path.
pub fn save_corpus(corpus: &Corpus, path: impl AsRef<Path>) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    write_corpus(corpus, file)
}

fn parse_vocab_line(line: &str, tag: &str, line_no: usize) -> Result<Vocabulary, IoError> {
    let mut parts = line.split('\t');
    let head = parts.next().unwrap_or_default();
    if head != tag {
        return Err(IoError::Parse {
            line: line_no,
            message: format!("expected header {tag:?}, found {head:?}"),
        });
    }
    let mut vocab = Vocabulary::new();
    for name in parts {
        vocab.add(name);
    }
    vocab.rebuild_index();
    Ok(vocab)
}

fn parse_id_list(text: &str, line_no: usize) -> Result<Vec<u32>, IoError> {
    text.split_whitespace()
        .map(|tok| {
            tok.parse::<u32>().map_err(|e| IoError::Parse {
                line: line_no,
                message: format!("bad id {tok:?}: {e}"),
            })
        })
        .collect()
}

/// Reads a corpus from a reader.
pub fn read_corpus(r: impl BufRead) -> Result<Corpus, IoError> {
    let mut lines = r.lines().enumerate();
    let (n0, first) = lines.next().ok_or(IoError::Parse {
        line: 1,
        message: "missing symptom header".into(),
    })?;
    let symptom_vocab = parse_vocab_line(&first?, "#symptoms", n0 + 1)?;
    let (n1, second) = lines.next().ok_or(IoError::Parse {
        line: 2,
        message: "missing herb header".into(),
    })?;
    let herb_vocab = parse_vocab_line(&second?, "#herbs", n1 + 1)?;

    let mut prescriptions = Vec::new();
    for (i, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let line_no = i + 1;
        let (sym_text, herb_text) = line.split_once('\t').ok_or_else(|| IoError::Parse {
            line: line_no,
            message: "missing tab between symptom and herb ids".into(),
        })?;
        let symptoms = parse_id_list(sym_text, line_no)?;
        let herbs = parse_id_list(herb_text, line_no)?;
        if symptoms.is_empty() || herbs.is_empty() {
            return Err(IoError::Parse {
                line: line_no,
                message: "prescription must have both symptoms and herbs".into(),
            });
        }
        for &s in &symptoms {
            if s as usize >= symptom_vocab.len() {
                return Err(IoError::Parse {
                    line: line_no,
                    message: format!("symptom id {s} outside vocabulary"),
                });
            }
        }
        for &h in &herbs {
            if h as usize >= herb_vocab.len() {
                return Err(IoError::Parse {
                    line: line_no,
                    message: format!("herb id {h} outside vocabulary"),
                });
            }
        }
        prescriptions.push(Prescription::new(symptoms, herbs));
    }
    Ok(Corpus::new(symptom_vocab, herb_vocab, prescriptions))
}

/// Loads a corpus from a file path.
pub fn load_corpus(path: impl AsRef<Path>) -> Result<Corpus, IoError> {
    let file = std::fs::File::open(path)?;
    read_corpus(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, SyndromeModel};

    #[test]
    fn round_trip_preserves_corpus() {
        let corpus = SyndromeModel::new(GeneratorConfig::tiny_scale()).generate();
        let mut buf = Vec::new();
        write_corpus(&corpus, &mut buf).unwrap();
        let loaded = read_corpus(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(loaded.prescriptions(), corpus.prescriptions());
        assert_eq!(loaded.n_symptoms(), corpus.n_symptoms());
        assert_eq!(loaded.herb_vocab().name(0), corpus.herb_vocab().name(0));
        assert_eq!(
            loaded.symptom_vocab().id(corpus.symptom_vocab().name(3)),
            Some(3)
        );
    }

    #[test]
    fn appended_vocab_entries_round_trip_with_stable_ids() {
        // Grow both vocabularies mid-stream (the ingestion path) and check
        // the text format preserves the appended entries and their ids.
        let mut corpus = SyndromeModel::new(GeneratorConfig::tiny_scale()).generate();
        let s_before = corpus.n_symptoms();
        let h_before = corpus.n_herbs();
        let new_s = corpus.symptom_vocab_mut().get_or_add("late-symptom");
        let new_h = corpus.herb_vocab_mut().get_or_add("late-herb");
        assert_eq!(new_s as usize, s_before);
        assert_eq!(new_h as usize, h_before);
        corpus.push(crate::prescription::Prescription::new(
            vec![0, new_s],
            vec![new_h],
        ));
        let mut buf = Vec::new();
        write_corpus(&corpus, &mut buf).unwrap();
        let loaded = read_corpus(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(loaded.n_symptoms(), s_before + 1);
        assert_eq!(loaded.n_herbs(), h_before + 1);
        assert_eq!(loaded.symptom_vocab().id("late-symptom"), Some(new_s));
        assert_eq!(loaded.herb_vocab().id("late-herb"), Some(new_h));
        assert_eq!(loaded.prescriptions(), corpus.prescriptions());
        // Pre-existing ids must not have moved.
        assert_eq!(
            loaded.symptom_vocab().name(0),
            corpus.symptom_vocab().name(0)
        );
    }

    #[test]
    fn rejects_missing_tab() {
        let text = "#symptoms\ta\tb\n#herbs\tx\ty\n0 1 0 1\n";
        let err = read_corpus(std::io::BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_header() {
        let text = "#wrong\ta\n#herbs\tx\n";
        let err = read_corpus(std::io::BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("expected header"));
    }

    #[test]
    fn rejects_out_of_vocab_id() {
        let text = "#symptoms\ta\n#herbs\tx\n5\t0\n";
        let err = read_corpus(std::io::BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("outside vocabulary"));
    }

    #[test]
    fn skips_blank_lines() {
        let text = "#symptoms\ta\tb\n#herbs\tx\ty\n0\t1\n\n1\t0\n";
        let corpus = read_corpus(std::io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(corpus.len(), 2);
    }

    #[test]
    fn file_round_trip() {
        let corpus = SyndromeModel::new(GeneratorConfig::tiny_scale()).generate();
        let dir = std::env::temp_dir().join("smgcn_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.tsv");
        save_corpus(&corpus, &path).unwrap();
        let loaded = load_corpus(&path).unwrap();
        assert_eq!(loaded.prescriptions(), corpus.prescriptions());
        std::fs::remove_file(&path).ok();
    }
}
