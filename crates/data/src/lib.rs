//! # smgcn-data — TCM prescription corpus for the SMGCN reproduction
//!
//! The paper evaluates on a public TCM prescription corpus (Yao et al., ref. \[5\],
//! 26,360 prescriptions over 360 symptoms and 753 herbs) that cannot be
//! redistributed here. This crate supplies a faithful substitute plus all
//! corpus plumbing:
//!
//! - [`prescription`] / [`corpus`] — the `⟨sc, hc⟩` record model and corpus
//!   container;
//! - [`vocab`] — id ↔ name mapping seeded with real pinyin TCM entities so
//!   the Fig. 10 case study stays readable;
//! - [`generator`] — the latent-syndrome synthetic generator (the dataset
//!   substitution; see DESIGN.md §2 for the fidelity argument);
//! - [`split`] — seeded train/test partitioning matching Table II's ratio;
//! - [`stats`] — Table II statistics, Fig. 5 frequency series, and the
//!   Eq. 15 loss weights;
//! - [`io`] — Fig. 6-style text serialisation.

#![warn(missing_docs)]

pub mod corpus;
pub mod generator;
pub mod io;
pub mod prescription;
pub mod split;
pub mod stats;
pub mod vocab;

pub use corpus::Corpus;
pub use generator::{GeneratorConfig, SyndromeModel};
pub use prescription::Prescription;
pub use split::{train_test_split, train_test_split_fraction, Split, PAPER_TEST_FRACTION};
pub use stats::{corpus_stats, herb_frequencies, herb_loss_weights, top_herbs, CorpusStats};
pub use vocab::Vocabulary;
