//! A prescription corpus: the named vocabularies plus every prescription.

use serde::{Deserialize, Serialize};

use crate::prescription::Prescription;
use crate::vocab::Vocabulary;

/// A full corpus: symptom/herb vocabularies and prescriptions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Corpus {
    symptom_vocab: Vocabulary,
    herb_vocab: Vocabulary,
    prescriptions: Vec<Prescription>,
}

impl Corpus {
    /// Assembles a corpus.
    ///
    /// # Panics
    /// Panics if any prescription references ids outside the vocabularies.
    pub fn new(
        symptom_vocab: Vocabulary,
        herb_vocab: Vocabulary,
        prescriptions: Vec<Prescription>,
    ) -> Self {
        for (i, p) in prescriptions.iter().enumerate() {
            if let Some(&s) = p.symptoms().last() {
                assert!(
                    (s as usize) < symptom_vocab.len(),
                    "Corpus: prescription {i} references symptom {s} outside vocabulary of {}",
                    symptom_vocab.len()
                );
            }
            if let Some(&h) = p.herbs().last() {
                assert!(
                    (h as usize) < herb_vocab.len(),
                    "Corpus: prescription {i} references herb {h} outside vocabulary of {}",
                    herb_vocab.len()
                );
            }
        }
        Self {
            symptom_vocab,
            herb_vocab,
            prescriptions,
        }
    }

    /// Number of prescriptions.
    pub fn len(&self) -> usize {
        self.prescriptions.len()
    }

    /// True when the corpus holds no prescriptions.
    pub fn is_empty(&self) -> bool {
        self.prescriptions.is_empty()
    }

    /// Symptom vocabulary size `|S|`.
    pub fn n_symptoms(&self) -> usize {
        self.symptom_vocab.len()
    }

    /// Herb vocabulary size `|H|`.
    pub fn n_herbs(&self) -> usize {
        self.herb_vocab.len()
    }

    /// The symptom vocabulary.
    pub fn symptom_vocab(&self) -> &Vocabulary {
        &self.symptom_vocab
    }

    /// The herb vocabulary.
    pub fn herb_vocab(&self) -> &Vocabulary {
        &self.herb_vocab
    }

    /// All prescriptions.
    pub fn prescriptions(&self) -> &[Prescription] {
        &self.prescriptions
    }

    /// `(sc, hc)` record views, the shape `smgcn-graph` builders accept.
    pub fn records(&self) -> impl Iterator<Item = (&[u32], &[u32])> + Clone {
        self.prescriptions.iter().map(Prescription::as_record)
    }

    /// Mutable symptom vocabulary, for streaming ingestion: appending new
    /// entries keeps every existing id stable, so prescriptions already in
    /// the corpus stay valid.
    pub fn symptom_vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.symptom_vocab
    }

    /// Mutable herb vocabulary (see [`Corpus::symptom_vocab_mut`]).
    pub fn herb_vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.herb_vocab
    }

    /// Appends one prescription.
    ///
    /// # Panics
    /// Panics if the prescription references ids outside the vocabularies.
    pub fn push(&mut self, p: Prescription) {
        if let Some(&s) = p.symptoms().last() {
            assert!(
                (s as usize) < self.symptom_vocab.len(),
                "Corpus: appended prescription references symptom {s} outside vocabulary of {}",
                self.symptom_vocab.len()
            );
        }
        if let Some(&h) = p.herbs().last() {
            assert!(
                (h as usize) < self.herb_vocab.len(),
                "Corpus: appended prescription references herb {h} outside vocabulary of {}",
                self.herb_vocab.len()
            );
        }
        self.prescriptions.push(p);
    }

    /// Builds a sub-corpus from a subset of prescription indices (shares
    /// the vocabularies).
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn subset(&self, indices: &[usize]) -> Corpus {
        let prescriptions = indices
            .iter()
            .map(|&i| self.prescriptions[i].clone())
            .collect();
        Corpus {
            symptom_vocab: self.symptom_vocab.clone(),
            herb_vocab: self.herb_vocab.clone(),
            prescriptions,
        }
    }

    /// Renders a prescription with names, for case studies (Fig. 10).
    pub fn describe(&self, p: &Prescription) -> String {
        let symptoms: Vec<&str> = p
            .symptoms()
            .iter()
            .map(|&s| self.symptom_vocab.name(s))
            .collect();
        let herbs: Vec<&str> = p.herbs().iter().map(|&h| self.herb_vocab.name(h)).collect();
        format!(
            "symptoms: {} | herbs: {}",
            symptoms.join(", "),
            herbs.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    fn small_corpus() -> Corpus {
        Corpus::new(
            Vocabulary::from_names(["s0", "s1", "s2"]),
            Vocabulary::from_names(["h0", "h1"]),
            vec![
                Prescription::new(vec![0, 1], vec![0]),
                Prescription::new(vec![2], vec![0, 1]),
            ],
        )
    }

    #[test]
    fn accessors() {
        let c = small_corpus();
        assert_eq!(c.len(), 2);
        assert_eq!(c.n_symptoms(), 3);
        assert_eq!(c.n_herbs(), 2);
        let records: Vec<_> = c.records().collect();
        assert_eq!(records[0].0, &[0, 1]);
        assert_eq!(records[1].1, &[0, 1]);
    }

    #[test]
    fn subset_selects() {
        let c = small_corpus();
        let sub = c.subset(&[1]);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.prescriptions()[0].symptoms(), &[2]);
        assert_eq!(sub.n_symptoms(), 3, "vocabulary is shared");
    }

    #[test]
    fn describe_uses_names() {
        let c = small_corpus();
        let d = c.describe(&c.prescriptions()[0]);
        assert_eq!(d, "symptoms: s0, s1 | herbs: h0");
    }

    #[test]
    fn push_appends_and_vocab_growth_keeps_ids() {
        let mut c = small_corpus();
        let new_herb = c.herb_vocab_mut().get_or_add("h2");
        assert_eq!(new_herb, 2);
        c.push(Prescription::new(vec![0], vec![new_herb]));
        assert_eq!(c.len(), 3);
        assert_eq!(c.n_herbs(), 3);
        assert_eq!(c.herb_vocab().id("h0"), Some(0), "old ids untouched");
        assert_eq!(c.prescriptions()[2].herbs(), &[2]);
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn push_rejects_out_of_vocab() {
        let mut c = small_corpus();
        c.push(Prescription::new(vec![0], vec![9]));
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn rejects_out_of_vocab() {
        let _ = Corpus::new(
            Vocabulary::from_names(["s0"]),
            Vocabulary::from_names(["h0"]),
            vec![Prescription::new(vec![3], vec![0])],
        );
    }
}
