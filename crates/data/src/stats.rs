//! Corpus statistics: Table II, Fig. 5, and the Eq. 15 loss weights.

use serde::{Deserialize, Serialize};

use crate::corpus::Corpus;

/// Table II-style corpus statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Number of prescriptions.
    pub n_prescriptions: usize,
    /// Distinct symptoms actually appearing.
    pub n_symptoms_used: usize,
    /// Distinct herbs actually appearing.
    pub n_herbs_used: usize,
    /// Mean symptom-set size.
    pub mean_symptoms_per_rx: f64,
    /// Mean herb-set size.
    pub mean_herbs_per_rx: f64,
}

/// Computes Table II-style statistics for a corpus (or a split of one).
pub fn corpus_stats(corpus: &Corpus) -> CorpusStats {
    let mut seen_s = vec![false; corpus.n_symptoms()];
    let mut seen_h = vec![false; corpus.n_herbs()];
    let mut sym_total = 0usize;
    let mut herb_total = 0usize;
    for p in corpus.prescriptions() {
        sym_total += p.symptoms().len();
        herb_total += p.herbs().len();
        for &s in p.symptoms() {
            seen_s[s as usize] = true;
        }
        for &h in p.herbs() {
            seen_h[h as usize] = true;
        }
    }
    let n = corpus.len().max(1) as f64;
    CorpusStats {
        n_prescriptions: corpus.len(),
        n_symptoms_used: seen_s.iter().filter(|&&b| b).count(),
        n_herbs_used: seen_h.iter().filter(|&&b| b).count(),
        mean_symptoms_per_rx: sym_total as f64 / n,
        mean_herbs_per_rx: herb_total as f64 / n,
    }
}

/// Per-herb occurrence counts (`freq(i)` in Eq. 15).
pub fn herb_frequencies(corpus: &Corpus) -> Vec<u32> {
    let mut freq = vec![0u32; corpus.n_herbs()];
    for p in corpus.prescriptions() {
        for &h in p.herbs() {
            freq[h as usize] += 1;
        }
    }
    freq
}

/// Per-symptom occurrence counts.
pub fn symptom_frequencies(corpus: &Corpus) -> Vec<u32> {
    let mut freq = vec![0u32; corpus.n_symptoms()];
    for p in corpus.prescriptions() {
        for &s in p.symptoms() {
            freq[s as usize] += 1;
        }
    }
    freq
}

/// `(herb_id, count)` for the `k` most frequent herbs, descending —
/// the series plotted in Fig. 5.
pub fn top_herbs(corpus: &Corpus, k: usize) -> Vec<(u32, u32)> {
    let freq = herb_frequencies(corpus);
    let mut pairs: Vec<(u32, u32)> = freq
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as u32, c))
        .collect();
    pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

/// The Eq. 15 label weights: `w_i = max_k freq(k) / freq(i)`.
///
/// Herbs that never occur in the training corpus are given the maximum
/// weight (they behave like frequency-1 herbs); if the corpus is empty all
/// weights are 1.
pub fn herb_loss_weights(frequencies: &[u32]) -> Vec<f32> {
    let max = frequencies.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return vec![1.0; frequencies.len()];
    }
    frequencies
        .iter()
        .map(|&f| max as f32 / f.max(1) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prescription::Prescription;
    use crate::vocab::Vocabulary;

    fn corpus() -> Corpus {
        Corpus::new(
            Vocabulary::from_names(["s0", "s1", "s2"]),
            Vocabulary::from_names(["h0", "h1", "h2", "h3"]),
            vec![
                Prescription::new(vec![0, 1], vec![0, 1]),
                Prescription::new(vec![0], vec![0, 2]),
                Prescription::new(vec![1], vec![0]),
            ],
        )
    }

    #[test]
    fn stats_match_hand_count() {
        let s = corpus_stats(&corpus());
        assert_eq!(s.n_prescriptions, 3);
        assert_eq!(s.n_symptoms_used, 2); // s2 never appears
        assert_eq!(s.n_herbs_used, 3); // h3 never appears
        assert!((s.mean_symptoms_per_rx - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_herbs_per_rx - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn frequencies_and_top() {
        let c = corpus();
        assert_eq!(herb_frequencies(&c), vec![3, 1, 1, 0]);
        assert_eq!(symptom_frequencies(&c), vec![2, 2, 0]);
        let top = top_herbs(&c, 2);
        assert_eq!(top, vec![(0, 3), (1, 1)]);
    }

    #[test]
    fn loss_weights_follow_eq_15() {
        let w = herb_loss_weights(&[3, 1, 1, 0]);
        assert_eq!(w, vec![1.0, 3.0, 3.0, 3.0]);
        // More frequent ⇒ lower weight, exactly inverse-proportional.
        assert!(w[0] < w[1]);
    }

    #[test]
    fn loss_weights_degenerate_cases() {
        assert_eq!(herb_loss_weights(&[]), Vec::<f32>::new());
        assert_eq!(herb_loss_weights(&[0, 0]), vec![1.0, 1.0]);
    }
}
