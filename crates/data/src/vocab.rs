//! Vocabularies mapping entity ids to human-readable names.
//!
//! The benchmark corpus is synthetic (see `generator`), but the case-study
//! reproduction (Fig. 10) needs recognisable entities, so the default
//! vocabularies seed real pinyin TCM names — symptoms like `daohan` (night
//! sweat) and herbs like `renshen` (ginseng) from the paper's Guipi
//! Decoction example — before falling back to systematic synthetic names.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// A bidirectional id ↔ name mapping.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a name list.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn from_names(names: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let mut v = Self::new();
        for n in names {
            v.add(n);
        }
        v
    }

    /// Adds a name, returning its id.
    ///
    /// # Panics
    /// Panics if the name already exists.
    pub fn add(&mut self, name: impl Into<String>) -> u32 {
        let name = name.into();
        let id = self.names.len() as u32;
        let prev = self.index.insert(name.clone(), id);
        assert!(prev.is_none(), "Vocabulary: duplicate name {name:?}");
        self.names.push(name);
        id
    }

    /// Name for an id.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Id for a name, if present.
    pub fn id(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// Id for a name, appending it when absent. Existing ids are never
    /// reassigned — a vocabulary only grows, so every id handed out stays
    /// stable for the lifetime of the corpus (the property streaming
    /// ingestion depends on: graphs, checkpoints and caches all key on
    /// these ids).
    pub fn get_or_add(&mut self, name: impl Into<String>) -> u32 {
        let name = name.into();
        match self.index.get(&name) {
            Some(&id) => id,
            None => self.add(name),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Rebuilds the reverse index (needed after deserialisation, which
    /// skips the map).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

/// Common TCM symptom names (pinyin), used to seed readable vocabularies.
/// Starts with the four symptoms of the paper's Fig. 1 Guipi example.
pub const SYMPTOM_SEED_NAMES: &[&str] = &[
    "daohan (night sweat)",
    "shedan (pale tongue)",
    "maixiruo (small weak pulse)",
    "jianwang (amnesia)",
    "touteng (headache)",
    "fare (fever)",
    "wuhan (aversion to cold)",
    "kesou (cough)",
    "exin (nausea)",
    "outu (vomiting)",
    "fuzhang (abdominal distension)",
    "xiexie (diarrhea)",
    "bianmi (constipation)",
    "xinji (palpitation)",
    "shimian (insomnia)",
    "duomeng (dream-disturbed sleep)",
    "touyun (dizziness)",
    "erming (tinnitus)",
    "yaosuan (aching loins)",
    "xifa (weak knees)",
    "naluan (restlessness)",
    "kouke (thirst)",
    "kougan (dry mouth)",
    "yanhong (red eyes)",
    "shetai-huang (yellow coating)",
    "shetai-bai (white coating)",
    "maihong (surging pulse)",
    "maichen (deep pulse)",
    "maishu (rapid pulse)",
    "maichi (slow pulse)",
    "zihan (spontaneous sweating)",
    "qiduan (shortness of breath)",
    "fali (fatigue)",
    "shiyu-busi (poor appetite)",
    "weihan (stomach cold)",
    "xiongmen (chest oppression)",
    "xieteng (hypochondriac pain)",
    "shoufa-re (feverish palms)",
    "mianse-cangbai (pale complexion)",
    "shuizhong (edema)",
];

/// Common TCM herb names (pinyin), seeded with the Guipi Decoction herbs of
/// the paper's Fig. 1 and other frequent materia medica.
pub const HERB_SEED_NAMES: &[&str] = &[
    "renshen (ginseng)",
    "longyanrou (longan aril)",
    "danggui (angelica sinensis)",
    "fuling (tuckahoe)",
    "gancao (licorice)",
    "baizhu (atractylodes)",
    "huangqi (astragalus)",
    "chenpi (tangerine peel)",
    "banxia (pinellia)",
    "shengjiang (fresh ginger)",
    "dazao (jujube)",
    "guizhi (cinnamon twig)",
    "baishao (white peony)",
    "chaihu (bupleurum)",
    "huanglian (coptis)",
    "huangqin (scutellaria)",
    "zhizi (gardenia)",
    "shudihuang (rehmannia)",
    "shanyao (chinese yam)",
    "shanzhuyu (cornus)",
    "mudanpi (moutan bark)",
    "zexie (alisma)",
    "chuanxiong (ligusticum)",
    "honghua (safflower)",
    "taoren (peach kernel)",
    "xingren (apricot kernel)",
    "jiegeng (platycodon)",
    "zhimu (anemarrhena)",
    "shigao (gypsum)",
    "mahuang (ephedra)",
    "guiban (tortoise shell)",
    "suanzaoren (sour jujube seed)",
    "yuanzhi (polygala)",
    "muxiang (costus)",
    "sharen (amomum)",
    "houpo (magnolia bark)",
    "zhishi (immature bitter orange)",
    "dahuang (rhubarb)",
    "mangxiao (mirabilite)",
    "fuzi (aconite)",
    "rougui (cinnamon bark)",
    "ganjiang (dried ginger)",
    "wuweizi (schisandra)",
    "maidong (ophiopogon)",
    "tianma (gastrodia)",
    "gouteng (uncaria)",
    "juhua (chrysanthemum)",
    "jinyinhua (honeysuckle)",
    "lianqiao (forsythia)",
    "bohe (mint)",
    "jingjie (schizonepeta)",
    "fangfeng (saposhnikovia)",
    "qianghuo (notopterygium)",
    "duhuo (angelica pubescens)",
    "niuxi (achyranthes)",
    "duzhong (eucommia)",
    "sangjisheng (taxillus)",
    "gouqizi (goji berry)",
    "heshouwu (polygonum)",
    "ejiao (donkey-hide gelatin)",
];

/// Builds a vocabulary of `n` entries: seed names first, then systematic
/// `"{prefix}-{i}"` fillers.
pub fn seeded_vocabulary(n: usize, seeds: &[&str], prefix: &str) -> Vocabulary {
    let mut v = Vocabulary::new();
    for (i, name) in seeds.iter().take(n).enumerate() {
        debug_assert!(i < n);
        v.add(*name);
    }
    for i in v.len()..n {
        v.add(format!("{prefix}-{i:03}"));
    }
    v
}

/// Default symptom vocabulary of size `n`.
pub fn symptom_vocabulary(n: usize) -> Vocabulary {
    seeded_vocabulary(n, SYMPTOM_SEED_NAMES, "symptom")
}

/// Default herb vocabulary of size `n`.
pub fn herb_vocabulary(n: usize) -> Vocabulary {
    seeded_vocabulary(n, HERB_SEED_NAMES, "herb")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut v = Vocabulary::new();
        let a = v.add("renshen");
        let b = v.add("gancao");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(v.name(1), "gancao");
        assert_eq!(v.id("renshen"), Some(0));
        assert_eq!(v.id("missing"), None);
        assert_eq!(v.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate name")]
    fn rejects_duplicates() {
        let mut v = Vocabulary::new();
        v.add("renshen");
        v.add("renshen");
    }

    #[test]
    fn seeded_vocab_sizes() {
        let v = symptom_vocabulary(360);
        assert_eq!(v.len(), 360);
        assert_eq!(v.name(0), "daohan (night sweat)");
        assert!(v.name(359).starts_with("symptom-"));
        // A smaller-than-seed vocabulary truncates the seed list.
        let small = herb_vocabulary(5);
        assert_eq!(small.len(), 5);
        assert_eq!(small.name(0), "renshen (ginseng)");
    }

    #[test]
    fn seed_names_are_unique() {
        let mut all = SYMPTOM_SEED_NAMES.to_vec();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), SYMPTOM_SEED_NAMES.len());
        let mut herbs = HERB_SEED_NAMES.to_vec();
        herbs.sort_unstable();
        herbs.dedup();
        assert_eq!(herbs.len(), HERB_SEED_NAMES.len());
    }

    #[test]
    fn get_or_add_keeps_ids_stable() {
        let mut v = Vocabulary::from_names(["a", "b"]);
        assert_eq!(v.get_or_add("a"), 0, "existing names keep their id");
        assert_eq!(v.get_or_add("c"), 2, "new names append at the end");
        assert_eq!(v.get_or_add("c"), 2, "appended names are stable too");
        assert_eq!(v.len(), 3);
        assert_eq!(v.name(2), "c");
        // Growth never disturbs earlier entries.
        assert_eq!(v.id("b"), Some(1));
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut v = Vocabulary::from_names(["a", "b", "c"]);
        v.index.clear();
        assert_eq!(v.id("b"), None);
        v.rebuild_index();
        assert_eq!(v.id("b"), Some(1));
    }
}
