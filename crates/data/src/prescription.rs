//! The prescription record `p = ⟨sc, hc⟩` (§II).
//!
//! A prescription pairs a *symptom set* with the *herb set* that treated it.
//! Both sides are sets: ids are stored sorted and deduplicated, which also
//! gives cheap canonical equality.

use serde::{Deserialize, Serialize};

/// One prescription: a symptom set and the herb set prescribed for it.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prescription {
    symptoms: Vec<u32>,
    herbs: Vec<u32>,
}

impl Prescription {
    /// Builds a prescription, canonicalising both sides into sorted,
    /// deduplicated sets.
    ///
    /// # Panics
    /// Panics if either side is empty — the task is undefined without both
    /// a symptom set and a herb set.
    pub fn new(mut symptoms: Vec<u32>, mut herbs: Vec<u32>) -> Self {
        symptoms.sort_unstable();
        symptoms.dedup();
        herbs.sort_unstable();
        herbs.dedup();
        assert!(!symptoms.is_empty(), "Prescription: empty symptom set");
        assert!(!herbs.is_empty(), "Prescription: empty herb set");
        Self { symptoms, herbs }
    }

    /// The symptom set `sc`, sorted ascending.
    pub fn symptoms(&self) -> &[u32] {
        &self.symptoms
    }

    /// The herb set `hc`, sorted ascending.
    pub fn herbs(&self) -> &[u32] {
        &self.herbs
    }

    /// `(sc, hc)` view, the shape graph builders consume.
    pub fn as_record(&self) -> (&[u32], &[u32]) {
        (&self.symptoms, &self.herbs)
    }

    /// True when the herb set contains `h`.
    pub fn contains_herb(&self, h: u32) -> bool {
        self.herbs.binary_search(&h).is_ok()
    }

    /// True when the symptom set contains `s`.
    pub fn contains_symptom(&self, s: u32) -> bool {
        self.symptoms.binary_search(&s).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalises_sets() {
        let p = Prescription::new(vec![3, 1, 3, 2], vec![5, 5, 4]);
        assert_eq!(p.symptoms(), &[1, 2, 3]);
        assert_eq!(p.herbs(), &[4, 5]);
    }

    #[test]
    fn membership_queries() {
        let p = Prescription::new(vec![1, 2], vec![7]);
        assert!(p.contains_symptom(2));
        assert!(!p.contains_symptom(3));
        assert!(p.contains_herb(7));
        assert!(!p.contains_herb(1));
    }

    #[test]
    fn equality_is_set_based() {
        let a = Prescription::new(vec![2, 1], vec![3, 4]);
        let b = Prescription::new(vec![1, 2, 2], vec![4, 3]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty symptom set")]
    fn rejects_empty_symptoms() {
        let _ = Prescription::new(vec![], vec![1]);
    }

    #[test]
    #[should_panic(expected = "empty herb set")]
    fn rejects_empty_herbs() {
        let _ = Prescription::new(vec![1], vec![]);
    }
}
